//! Mine inspection: two battery-limited robots in a network of corridors
//! must meet to exchange inspection data.
//!
//! The intro of the paper motivates rendezvous with exactly this scenario:
//! "mobile robots navigating in a network of corridors in a mine". The
//! corridors form a grid; intersections are unmarked (anonymous), but each
//! intersection has one marked corridor (port 0) with the rest numbered
//! clockwise — the paper's port-numbering story. Batteries make **cost**
//! the scarce resource, so the robots run Algorithm `Cheap` (cost ≤ 3E).
//!
//! ```text
//! cargo run --example mine_inspection
//! ```

use rendezvous_core::{Cheap, Label, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::{DfsMapExplorer, Explorer};
use rendezvous_graph::{generators, NodeId};
use rendezvous_sim::{AgentSpec, Simulation};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The mine: a 6x4 grid of corridors (24 intersections).
    let mine = Arc::new(generators::grid(6, 4)?);
    println!(
        "mine: {} intersections, {} corridors",
        mine.node_count(),
        mine.edge_count()
    );

    // Both robots carry the mine map with their own position marked, so
    // they explore by DFS; E is the exact worst DFS walk length.
    let explore = Arc::new(DfsMapExplorer::new(mine.clone()));
    println!("exploration bound E = {} moves", explore.bound());

    // Serial numbers are the labels; say the fleet has 64 robots.
    let space = LabelSpace::new(64)?;
    let algorithm = Cheap::new(mine.clone(), explore, space);
    println!(
        "Cheap guarantees: cost <= {} (battery), time <= {} rounds\n",
        algorithm.cost_bound(),
        algorithm.time_bound()
    );

    // Robot 12 starts at the north-west shaft, robot 45 at the south-east
    // shaft, woken 30 minutes (rounds) apart by their charging docks.
    let r12 = algorithm.agent(Label::new(12).expect("positive"), NodeId::new(0))?;
    let r45 = algorithm.agent(Label::new(45).expect("positive"), NodeId::new(23))?;

    let outcome = Simulation::new(&mine)
        .agent(Box::new(r12), AgentSpec::immediate(NodeId::new(0)))
        .agent(Box::new(r45), AgentSpec::delayed(NodeId::new(23), 30))
        .max_rounds(2 * algorithm.time_bound())
        .record_trace(true)
        .run()?;

    let meeting = outcome.meeting().expect("Cheap always meets");
    println!("robots met at intersection {}", meeting.node);
    println!("  after {} rounds", outcome.time().expect("met"));
    println!("  total battery spent: {} corridor moves", outcome.cost());
    println!("  robot 12 moved {} times", outcome.per_agent_cost()[0]);
    println!("  robot 45 moved {} times", outcome.per_agent_cost()[1]);
    println!("  edge crossings en route: {}", outcome.crossings());

    // Battery guarantee: never more than 3E combined.
    assert!(outcome.cost() <= algorithm.cost_bound());
    Ok(())
}
