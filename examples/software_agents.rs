//! Software agents in a data-center overlay network: same instance, three
//! algorithms, three points on the time/cost tradeoff.
//!
//! The agents hold a port-labelled map of the overlay but do **not** know
//! where they were injected (nodes hide their identity from mobile code
//! for privacy — the paper's §1.2 motivation), so exploration is the
//! trial-DFS procedure with its measured bound `E ≤ n(2n−2)`.
//!
//! ```text
//! cargo run --example software_agents
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rendezvous_core::{Cheap, Fast, FastWithRelabeling, Label, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::{Explorer, TrialDfsExplorer};
use rendezvous_graph::{generators, NodeId};
use rendezvous_sim::{AgentSpec, Simulation};
use std::sync::Arc;

fn run_one(
    name: &str,
    algorithm: &dyn RendezvousAlgorithm,
    starts: (usize, usize),
    delay: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    let (pa, pb) = starts;
    let a = algorithm.agent(Label::new(6).expect("positive"), NodeId::new(pa))?;
    let b = algorithm.agent(Label::new(27).expect("positive"), NodeId::new(pb))?;
    let out = Simulation::new(algorithm.graph())
        .agent(Box::new(a), AgentSpec::immediate(NodeId::new(pa)))
        .agent(Box::new(b), AgentSpec::delayed(NodeId::new(pb), delay))
        .max_rounds(4 * algorithm.time_bound())
        .run()?;
    println!(
        "{name:<22} time {:>6} (bound {:>6})   cost {:>5} (bound {:>5})",
        out.time().expect("met"),
        algorithm.time_bound(),
        out.cost(),
        algorithm.cost_bound(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2026);
    // The overlay: a connected sparse random graph on 10 hosts.
    let overlay = Arc::new(generators::erdos_renyi_connected(10, 0.25, &mut rng)?);
    let explore = Arc::new(TrialDfsExplorer::new(overlay.clone())?);
    println!(
        "overlay: {} hosts, {} links; trial-DFS bound E = {} (paper's safe bound {})\n",
        overlay.node_count(),
        overlay.edge_count(),
        explore.bound(),
        TrialDfsExplorer::paper_bound(overlay.node_count()),
    );

    let space = LabelSpace::new(32)?;
    let starts = (0, 7);
    let delay = 11;

    let cheap = Cheap::new(overlay.clone(), explore.clone(), space);
    run_one("Cheap", &cheap, starts, delay)?;
    for w in [2, 3] {
        let fwr = FastWithRelabeling::new(overlay.clone(), explore.clone(), space, w)?;
        run_one(&format!("FastWithRelabeling({w})"), &fwr, starts, delay)?;
    }
    let fast = Fast::new(overlay.clone(), explore.clone(), space);
    run_one("Fast", &fast, starts, delay)?;

    println!("\nCheap minimizes traffic; Fast minimizes latency; the");
    println!("relabeled variants buy latency with bounded extra traffic.");
    Ok(())
}
