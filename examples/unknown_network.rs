//! Rendezvous with **zero** knowledge of the network size (paper,
//! Conclusion): iterate the algorithm over a doubling family of
//! exploration procedures until the level is large enough.
//!
//! The agents below run the same iterated program on rings of different
//! sizes — no reconfiguration, no size input — and the telescoping keeps
//! the overhead a constant factor.
//!
//! ```text
//! cargo run --example unknown_network
//! ```

use rendezvous_core::{BaseAlgorithm, Iterated, Label, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::{ExplorationFamily, RingDoublingFamily};
use rendezvous_graph::{generators, NodeId};
use rendezvous_sim::{AgentSpec, Simulation};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = LabelSpace::new(16)?;
    let family = Arc::new(RingDoublingFamily::new());
    println!("doubling family: E_i = 2^i - 1 (covers rings up to 2^i nodes)\n");
    println!(
        "{:>6} | {:>9} | {:>10} | {:>6} | {:>6}",
        "ring n", "level i*", "guaranteed", "time", "cost"
    );
    println!("{}", "-".repeat(50));

    for n in [5usize, 9, 17, 33] {
        let graph = Arc::new(generators::oriented_ring(n)?);
        let top = family.level_for(n) + 1;
        let algorithm = Iterated::new(
            graph.clone(),
            family.clone(),
            space,
            BaseAlgorithm::Fast,
            1..=top,
        )?;
        let a = algorithm.agent(Label::new(5).expect("positive"), NodeId::new(0))?;
        let b = algorithm.agent(Label::new(11).expect("positive"), NodeId::new(n / 2))?;
        let out = Simulation::new(&graph)
            .agent(Box::new(a), AgentSpec::immediate(NodeId::new(0)))
            .agent(Box::new(b), AgentSpec::immediate(NodeId::new(n / 2)))
            .max_rounds(4 * algorithm.time_bound())
            .run()?;
        let decisive = algorithm.decisive_level(n);
        println!(
            "{n:>6} | {decisive:>9} | {:>10} | {:>6} | {:>6}",
            algorithm.guaranteed_round(decisive),
            out.time().expect("met"),
            out.cost(),
        );
    }
    println!("\nthe same program meets on every ring: iteration i* with");
    println!("2^(i*) >= n is the first whose exploration really covers the ring.");
    Ok(())
}
