//! Prints the paper's central picture: the time/cost tradeoff frontier on
//! one instance, from `Cheap` (minimal cost) through `FastWithRelabeling`
//! (interior) to `Fast` (minimal time), with a crude ASCII scatter.
//!
//! ```text
//! cargo run --release --example tradeoff_curve
//! ```

use rendezvous_bench::x4_tradeoff;
use rendezvous_runner::Runner;

fn main() {
    let (n, l) = (12, 64);
    println!("time/cost tradeoff on the oriented {n}-ring, label space L = {l}\n");
    let points = x4_tradeoff::run(n, l, &[1, 2, 3, 4, 5], &Runner::parallel());
    print!("{}", x4_tradeoff::render(&points));

    // ASCII scatter: x = time bound, y = cost bound (log-ish bucketing).
    println!("\ncost");
    let max_cost = points.iter().map(|p| p.cost_bound).max().unwrap_or(1);
    let max_time = points.iter().map(|p| p.time_bound).max().unwrap_or(1);
    let rows = 12usize;
    let cols = 60usize;
    let mut canvas = vec![vec![' '; cols + 1]; rows + 1];
    for p in &points {
        let x = (p.time_bound * cols as u64 / max_time) as usize;
        let y = rows - (p.cost_bound * rows as u64 / max_cost) as usize;
        let tag = p.algorithm.chars().next().unwrap_or('?');
        canvas[y][x.min(cols)] = tag;
    }
    for row in canvas {
        println!("  |{}", row.iter().collect::<String>());
    }
    println!("  +{}\u{2192} time", "-".repeat(cols));
    println!("\n  c = cheap variants, f = fast / fwr(w)");
    println!("  lower-left is impossible: Thm 3.1 and Thm 3.2 pin both ends.");
}
