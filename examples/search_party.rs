//! Search party: five agents gather at one node by merge-and-restart —
//! the k-agent extension of the paper's two-agent algorithms.
//!
//! Whenever agents stand on the same node they have met (and, per the
//! paper's motivation, exchange data — here: their labels); the merged
//! group restarts the two-agent algorithm under its minimum label and
//! travels in lockstep from then on. Clusters keep merging until the whole
//! party is assembled.
//!
//! ```text
//! cargo run --example search_party
//! ```

use rendezvous_core::{gathering_fleet, Fast, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::OrientedRingExplorer;
use rendezvous_graph::{generators, NodeId};
use rendezvous_sim::gathering::run_gathering;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = Arc::new(generators::oriented_ring(18)?);
    let explore = Arc::new(OrientedRingExplorer::new(graph.clone())?);
    let algorithm: Arc<dyn RendezvousAlgorithm> =
        Arc::new(Fast::new(graph.clone(), explore, LabelSpace::new(32)?));

    // (label, start node, wake-up delay) — scattered and staggered.
    let placements = [
        (4u64, NodeId::new(0), 0u64),
        (9, NodeId::new(4), 12),
        (13, NodeId::new(7), 0),
        (21, NodeId::new(11), 30),
        (30, NodeId::new(15), 5),
    ];
    println!("five agents on an 18-ring, staggered wake-ups:\n");
    for (l, p, d) in &placements {
        println!("  agent ℓ{l:<3} at {p}, wakes after {d} rounds");
    }

    let fleet = gathering_fleet(&algorithm, &placements)?;
    let out = run_gathering(&graph, fleet, 1_000_000)?;

    let m = out.gathered.expect("merge-and-restart always gathers");
    println!("\ngathered at {} in round {}", m.node, m.round);
    println!("total cost: {} edge traversals", out.cost());
    println!("per agent : {:?}", out.per_agent_cost);

    // Show how the cluster count shrank over time.
    let mut last = usize::MAX;
    println!("\ncluster-count timeline:");
    for (round, &c) in out.cluster_history.iter().enumerate() {
        if c < last {
            println!("  round {:>5}: {} cluster(s)", round + 1, c);
            last = c;
        }
    }
    Ok(())
}
