//! Quickstart: two labelled agents meet on an anonymous ring using
//! Algorithm `Fast`.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rendezvous_core::{Fast, Label, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::OrientedRingExplorer;
use rendezvous_graph::{generators, NodeId};
use rendezvous_sim::{AgentSpec, Simulation};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The network: an oriented ring of 20 anonymous nodes. Agents see
    //    only local port numbers (0 = clockwise at every node).
    let graph = Arc::new(generators::oriented_ring(20)?);

    // 2. The exploration procedure both agents know: walk n-1 = 19 steps
    //    clockwise. Its bound E is the benchmark for time and cost.
    let explore = Arc::new(OrientedRingExplorer::new(graph.clone())?);

    // 3. The algorithm: Fast, with labels drawn from {1, ..., 128}.
    let space = LabelSpace::new(128)?;
    let algorithm = Fast::new(graph.clone(), explore, space);
    println!("algorithm      : {}", algorithm.name());
    println!("exploration E  : {}", algorithm.exploration_bound());
    println!("time bound     : {} rounds", algorithm.time_bound());
    println!(
        "cost bound     : {} edge traversals",
        algorithm.cost_bound()
    );

    // 4. Two agents with distinct labels at distinct nodes; the second
    //    one is woken 7 rounds late by the adversary.
    let alice = algorithm.agent(Label::new(93).expect("positive"), NodeId::new(2))?;
    let bob = algorithm.agent(Label::new(17).expect("positive"), NodeId::new(13))?;

    let outcome = Simulation::new(&graph)
        .agent(Box::new(alice), AgentSpec::immediate(NodeId::new(2)))
        .agent(Box::new(bob), AgentSpec::delayed(NodeId::new(13), 7))
        .max_rounds(algorithm.time_bound() + 7)
        .record_trace(true)
        .run()?;

    let meeting = outcome.meeting().expect("Fast always meets in time");
    println!("\nrendezvous at  : {}", meeting.node);
    println!("time           : {} rounds", outcome.time().expect("met"));
    println!("cost           : {} edge traversals", outcome.cost());
    println!("per agent      : {:?} traversals", outcome.per_agent_cost());
    assert!(outcome.time().expect("met") <= algorithm.time_bound() + 7);
    assert!(outcome.cost() <= algorithm.cost_bound());

    // 5. Space-time diagram of the execution (A = Alice, B = Bob, * = meeting).
    println!(
        "\n{}",
        rendezvous_sim::render::space_time(outcome.trace().expect("recorded"), 20, 24)
    );
    Ok(())
}
