//! The adversary at work: how wake-up delays affect each algorithm.
//!
//! Sweeps the delay of the second agent and reports meeting time and cost
//! for `Cheap` and `Fast` (robust to delays by design) and for the
//! simultaneous-start variant of `Cheap` (whose time bound `(L−1)E` is
//! only valid without delays — watch it blow past the bound).
//!
//! ```text
//! cargo run --example delay_adversary
//! ```

use rendezvous_core::{Cheap, CheapSimultaneous, Fast, Label, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::OrientedRingExplorer;
use rendezvous_graph::{generators, NodeId};
use rendezvous_sim::{AgentSpec, Simulation};
use std::sync::Arc;

fn measure(
    algorithm: &dyn RendezvousAlgorithm,
    la: u64,
    lb: u64,
    delay: u64,
) -> Result<(u64, u64), Box<dyn std::error::Error>> {
    let a = algorithm.agent(Label::new(la).expect("positive"), NodeId::new(0))?;
    let b = algorithm.agent(Label::new(lb).expect("positive"), NodeId::new(9))?;
    let out = Simulation::new(algorithm.graph())
        .agent(Box::new(a), AgentSpec::immediate(NodeId::new(0)))
        .agent(Box::new(b), AgentSpec::delayed(NodeId::new(9), delay))
        .max_rounds(20 * algorithm.time_bound() + 4 * delay)
        .run()?;
    Ok((out.time().expect("met"), out.cost()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = Arc::new(generators::oriented_ring(16)?);
    let explore = Arc::new(OrientedRingExplorer::new(graph.clone())?);
    let space = LabelSpace::new(8)?;
    let e = explore_bound(&graph);

    let cheap = Cheap::new(graph.clone(), explore.clone(), space);
    let fast = Fast::new(graph.clone(), explore.clone(), space);
    let naive = CheapSimultaneous::new(graph.clone(), explore.clone(), space);

    println!("oriented 16-ring, E = {e}, labels (8, 3), agent B delayed\n");
    println!(
        "{:>6} | {:>12} | {:>12} | {:>22}",
        "delay", "Cheap (t,c)", "Fast (t,c)", "CheapSimultaneous (t,c)"
    );
    println!("{}", "-".repeat(64));
    for delay in [0, 1, e / 2, e, 2 * e, 10 * e] {
        let (tc, cc) = measure(&cheap, 8, 3, delay)?;
        let (tf, cf) = measure(&fast, 8, 3, delay)?;
        let (tn, cn) = measure(&naive, 8, 3, delay)?;
        let warn = if tn > naive.time_bound() {
            "  <-- past its bound!"
        } else {
            ""
        };
        println!(
            "{delay:>6} | {:>6},{:>4} | {:>6},{:>4} | {:>10},{:>4}{warn}",
            tc, cc, tf, cf, tn, cn
        );
    }
    println!(
        "\nbounds: Cheap time {} cost {}, Fast time {} cost {}, naive time {} (delay 0 only)",
        cheap.time_bound(),
        cheap.cost_bound(),
        fast.time_bound(),
        fast.cost_bound(),
        naive.time_bound(),
    );
    Ok(())
}

fn explore_bound(graph: &Arc<rendezvous_graph::PortLabeledGraph>) -> u64 {
    (graph.node_count() - 1) as u64
}
