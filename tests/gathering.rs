//! Integration tests for the k-agent gathering extension across the full
//! stack (core strategy + sim engine + graph families).

use rendezvous_core::{
    gathering_fleet, Cheap, Fast, FastWithRelabeling, LabelSpace, RendezvousAlgorithm,
};
use rendezvous_explore::{DfsMapExplorer, OrientedRingExplorer};
use rendezvous_graph::{generators, NodeId};
use rendezvous_sim::gathering::run_gathering;
use std::sync::Arc;

fn gather_with(
    alg: Arc<dyn RendezvousAlgorithm>,
    placements: &[(u64, usize, u64)],
    horizon: u64,
) -> rendezvous_sim::gathering::GatheringOutcome {
    let placements: Vec<(u64, NodeId, u64)> = placements
        .iter()
        .map(|&(l, p, d)| (l, NodeId::new(p), d))
        .collect();
    let fleet = gathering_fleet(&alg, &placements).unwrap();
    run_gathering(alg.graph(), fleet, horizon).unwrap()
}

#[test]
fn gathering_works_with_every_base_algorithm() {
    let g = Arc::new(generators::oriented_ring(10).unwrap());
    let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let space = LabelSpace::new(16).unwrap();
    let algorithms: Vec<Arc<dyn RendezvousAlgorithm>> = vec![
        Arc::new(Cheap::new(g.clone(), ex.clone(), space)),
        Arc::new(Fast::new(g.clone(), ex.clone(), space)),
        Arc::new(FastWithRelabeling::new(g.clone(), ex.clone(), space, 2).unwrap()),
    ];
    for alg in algorithms {
        let name = alg.name();
        let out = gather_with(
            alg,
            &[(2, 0, 0), (7, 3, 4), (11, 6, 0), (16, 8, 9)],
            2_000_000,
        );
        assert!(out.gathered_all(), "{name}: gathering must complete");
    }
}

#[test]
fn gathering_on_a_grid_with_dfs_exploration() {
    let g = Arc::new(generators::grid(4, 3).unwrap());
    let ex = Arc::new(DfsMapExplorer::new(g.clone()));
    let alg: Arc<dyn RendezvousAlgorithm> =
        Arc::new(Fast::new(g.clone(), ex, LabelSpace::new(8).unwrap()));
    let out = gather_with(alg, &[(1, 0, 0), (4, 5, 2), (8, 11, 0)], 2_000_000);
    assert!(out.gathered_all());
}

#[test]
fn merged_clusters_travel_in_lockstep() {
    // After gathering completes, re-running with a longer horizon must
    // keep all agents together: the merged cluster acts as one agent and
    // the engine would report gathered at the same round. Verify by
    // checking the cluster history is 1 from the gathering round onwards
    // (the engine stops there, so check the final entry) and that per-agent
    // costs of agents merged early are close.
    let g = Arc::new(generators::oriented_ring(12).unwrap());
    let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let alg: Arc<dyn RendezvousAlgorithm> =
        Arc::new(Fast::new(g.clone(), ex, LabelSpace::new(8).unwrap()));
    let out = gather_with(alg, &[(3, 0, 0), (5, 4, 0), (8, 8, 0)], 1_000_000);
    assert!(out.gathered_all());
    assert_eq!(*out.cluster_history.last().unwrap(), 1);
}

#[test]
fn two_agent_gathering_time_matches_rendezvous_bound() {
    let g = Arc::new(generators::oriented_ring(9).unwrap());
    let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let alg: Arc<dyn RendezvousAlgorithm> =
        Arc::new(Cheap::new(g.clone(), ex, LabelSpace::new(4).unwrap()));
    let bound = alg.time_bound();
    let out = gather_with(alg, &[(1, 0, 0), (4, 4, 0)], 10 * bound);
    assert!(out.gathered_all());
    assert!(out.rounds_executed <= bound + 2);
}

#[test]
fn fleet_rejects_labels_outside_the_space() {
    let g = Arc::new(generators::oriented_ring(6).unwrap());
    let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let alg: Arc<dyn RendezvousAlgorithm> = Arc::new(Fast::new(g, ex, LabelSpace::new(4).unwrap()));
    let placements = vec![(1u64, NodeId::new(0), 0u64), (9, NodeId::new(2), 0)];
    assert!(gathering_fleet(&alg, &placements).is_err());
}
