//! Integration of the §3 lower-bound machinery with the real algorithms:
//! the audits must certify the theorems on the algorithms that satisfy the
//! premises, and report premise violations on those that do not.

use rendezvous_core::{Cheap, CheapSimultaneous, Fast, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::OrientedRingExplorer;
use rendezvous_graph::generators;
use rendezvous_lower_bounds::{eager_chain_audit, progress_audit, trim, LowerBoundError};
use std::sync::Arc;

fn ring(
    n: usize,
) -> (
    Arc<rendezvous_graph::PortLabeledGraph>,
    Arc<OrientedRingExplorer>,
) {
    let g = Arc::new(generators::oriented_ring(n).unwrap());
    let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    (g, ex)
}

#[test]
fn theorem_3_1_certifies_cheap_simultaneous_across_sizes() {
    for (n, l) in [(6, 4), (12, 6), (18, 8)] {
        let (g, ex) = ring(n);
        let alg = CheapSimultaneous::new(g, ex, LabelSpace::new(l).unwrap());
        let report = eager_chain_audit(&alg, 20 * alg.time_bound()).unwrap();
        assert_eq!(report.phi, 0, "n={n}: the simultaneous variant costs <= E");
        assert!(report.strictly_increasing, "n={n}: Fact 3.7");
        assert!(report.witness_holds(), "n={n}: Fact 3.8 witness");
        // The chain witness is Θ(E·L): check it reaches a constant
        // fraction of E·L/8.
        let el = (n as u64 - 1) * l;
        assert!(
            report.chain_final_time() * 8 >= el,
            "n={n}, L={l}: chain {} too short for EL={el}",
            report.chain_final_time()
        );
    }
}

#[test]
fn theorem_3_1_premise_fails_for_fast() {
    // Fast costs Θ(E log L), not E + o(E): its slack φ is a constant
    // fraction of E, so the Ω(EL) bound does not constrain it — measured
    // here as a large φ (the audit itself may or may not fail, but the
    // premise is visibly violated).
    let (g, ex) = ring(12);
    let alg = Fast::new(g, ex, LabelSpace::new(6).unwrap());
    let trimmed = trim(&alg, 10 * alg.time_bound()).unwrap();
    let e = alg.exploration_bound();
    assert!(
        trimmed.phi(e) >= e,
        "Fast's cost slack {} should be at least E = {e}",
        trimmed.phi(e)
    );
}

#[test]
fn theorem_3_2_certifies_fast_and_shows_log_growth() {
    let mut witnesses = Vec::new();
    for l in [4u64, 16] {
        let (g, ex) = ring(12);
        let alg = Fast::new(g, ex, LabelSpace::new(l).unwrap());
        let report = progress_audit(&alg, 4 * alg.time_bound()).unwrap();
        assert!(report.witnesses_hold, "L={l}: Fact 3.17");
        witnesses.push(report.trimmed.max_cost);
    }
    // Fast's measured worst cost grows with log L (from L=4 to L=16 the
    // schedule gains ~2 blocks per label-bit).
    assert!(witnesses[1] > witnesses[0]);
}

#[test]
fn trim_is_consistent_with_the_time_bound() {
    let (g, ex) = ring(9);
    let alg = Cheap::new(g, ex, LabelSpace::new(4).unwrap());
    let trimmed = trim(&alg, 10 * alg.time_bound()).unwrap();
    // Worst meeting round over all simultaneous executions is within the
    // algorithm's bound, and every m_x is at most that maximum.
    assert!(trimmed.max_time <= alg.time_bound());
    for h in &trimmed.horizons {
        assert!(*h <= trimmed.max_time);
    }
    // Cost within the Prop 2.1 bound too.
    assert!(trimmed.max_cost <= alg.cost_bound());
}

#[test]
fn audits_reject_wrong_substrates() {
    // The lower bounds are proven on oriented rings; a star is rejected.
    let star = Arc::new(generators::star(5).unwrap());
    let (_, ex) = ring(6);
    let alg = CheapSimultaneous::new(star, ex, LabelSpace::new(4).unwrap());
    assert!(matches!(
        eager_chain_audit(&alg, 1_000),
        Err(LowerBoundError::NotAnOrientedRing { .. })
    ));
}
