//! Pinning the model semantics of §1.2 across the crate boundaries —
//! the subtle rules a reimplementation is most likely to get wrong.

use rendezvous_core::{Cheap, Fast, Label, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::OrientedRingExplorer;
use rendezvous_graph::{generators, NodeId, Port};
use rendezvous_sim::{Action, AgentSpec, ScriptedAgent, Simulation};
use std::sync::Arc;

#[test]
fn crossing_inside_an_edge_is_invisible_to_real_algorithms() {
    // Construct a Fast execution in which the agents provably cross at
    // least once before meeting, and verify the engine counted a crossing
    // while the meeting still happened at a node.
    let g = Arc::new(generators::oriented_ring(6).unwrap());
    let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let alg = Fast::new(g.clone(), ex, LabelSpace::new(8).unwrap());
    let mut saw_crossing = false;
    'outer: for la in 1..=8u64 {
        for lb in 1..=8u64 {
            if la == lb {
                continue;
            }
            for pb in 1..6 {
                let a = alg.agent(Label::new(la).unwrap(), NodeId::new(0)).unwrap();
                let b = alg.agent(Label::new(lb).unwrap(), NodeId::new(pb)).unwrap();
                let out = Simulation::new(&g)
                    .agent(Box::new(a), AgentSpec::immediate(NodeId::new(0)))
                    .agent(Box::new(b), AgentSpec::immediate(NodeId::new(pb)))
                    .max_rounds(4 * alg.time_bound())
                    .run()
                    .unwrap();
                assert!(out.met());
                if out.crossings() > 0 {
                    saw_crossing = true;
                    break 'outer;
                }
            }
        }
    }
    // On a ring with both agents walking clockwise in different phases,
    // crossings cannot happen; but Fast's waiting blocks make opposite...
    // actually both only walk clockwise here. Crossings require opposite
    // directions, so Fast on an oriented ring never crosses — assert that
    // instead: the flag must be false.
    assert!(
        !saw_crossing,
        "Fast only moves clockwise on oriented rings: no crossings possible"
    );
}

#[test]
fn scripted_opposite_walkers_do_cross() {
    let g = Arc::new(generators::oriented_ring(6).unwrap());
    let cw = ScriptedAgent::new(vec![Action::Move(Port::new(0)); 12]);
    let ccw = ScriptedAgent::new(vec![Action::Move(Port::new(1)); 12]);
    let out = Simulation::new(&g)
        .agent(Box::new(cw), AgentSpec::immediate(NodeId::new(0)))
        .agent(Box::new(ccw), AgentSpec::immediate(NodeId::new(1)))
        .max_rounds(12)
        .run()
        .unwrap();
    assert!(out.crossings() > 0, "head-on walkers must cross");
}

#[test]
fn cost_counts_both_agents_until_the_meeting_round_inclusive() {
    let g = Arc::new(generators::oriented_ring(8).unwrap());
    // Both walk clockwise, 3 apart: never meet within 16 rounds; then one
    // stops: meeting 3 rounds later. Use scripted agents for exactness.
    let front = ScriptedAgent::new(vec![Action::Move(Port::new(0)); 5]);
    let back = ScriptedAgent::new(vec![Action::Move(Port::new(0)); 64]);
    let out = Simulation::new(&g)
        .agent(Box::new(front), AgentSpec::immediate(NodeId::new(3)))
        .agent(Box::new(back), AgentSpec::immediate(NodeId::new(0)))
        .max_rounds(64)
        .run()
        .unwrap();
    // front moves 5 then parks at node 8 mod 8 = 0; back started at 0 and
    // is at node r after round r; they coincide when back reaches front:
    // front at node (3 + min(r,5)) mod 8; back at r mod 8.
    // r=8: front parked at 0, back at 0 -> meeting round 8.
    let m = out.meeting().unwrap();
    assert_eq!(m.round, 8);
    assert_eq!(out.per_agent_cost(), &[5, 8]);
    assert_eq!(out.cost(), 13);
}

#[test]
fn time_is_counted_from_the_earlier_agent_both_orders() {
    let g = Arc::new(generators::oriented_ring(10).unwrap());
    let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let alg = Cheap::new(g.clone(), ex, LabelSpace::new(4).unwrap());
    // Same instance, delay on either side: time is measured from round 1
    // (the earlier agent) in both cases.
    for (da, db) in [(0u64, 6u64), (6, 0)] {
        let a = alg.agent(Label::new(1).unwrap(), NodeId::new(0)).unwrap();
        let b = alg.agent(Label::new(3).unwrap(), NodeId::new(5)).unwrap();
        let out = Simulation::new(&g)
            .agent(Box::new(a), AgentSpec::delayed(NodeId::new(0), da))
            .agent(Box::new(b), AgentSpec::delayed(NodeId::new(5), db))
            .max_rounds(10 * alg.time_bound())
            .run()
            .unwrap();
        let t = out.time().unwrap();
        let tl = out.time_from_later().unwrap();
        assert!(t >= tl, "earlier-start accounting dominates");
        assert_eq!(
            t,
            out.meeting().unwrap().round - da.min(db),
            "time counted from the earlier wake-up"
        );
    }
}

#[test]
fn agents_cannot_rely_on_node_identities() {
    // The ScheduleBehavior of the same label and algorithm, started at two
    // different nodes of the oriented ring, produces the *same* action
    // sequence (the ring looks identical from everywhere) — anonymity in
    // action.
    let g = Arc::new(generators::oriented_ring(9).unwrap());
    let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let alg = Fast::new(g.clone(), ex, LabelSpace::new(8).unwrap());
    let horizon = alg.time_bound();
    let mut traces = Vec::new();
    for start in [0usize, 4] {
        let mut agent = alg
            .agent(Label::new(5).unwrap(), NodeId::new(start))
            .unwrap();
        let t = rendezvous_sim::run_solo(&g, &mut agent, NodeId::new(start), horizon).unwrap();
        traces.push(t.actions);
    }
    assert_eq!(
        traces[0], traces[1],
        "behaviour vectors are start-independent on the oriented ring"
    );
}
