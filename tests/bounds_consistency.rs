//! Consistency of the closed-form bounds across the algorithm family —
//! the arithmetic backbone of the tradeoff story, checked over a parameter
//! sweep (no simulation; this is the "analytic figure" of the paper).

use rendezvous_core::{
    binomial, smallest_t, Cheap, CheapSimultaneous, Fast, FastWithRelabeling, LabelSpace,
    RendezvousAlgorithm,
};
use rendezvous_explore::OrientedRingExplorer;
use rendezvous_graph::generators;
use std::sync::Arc;

fn on_ring(
    n: usize,
) -> (
    Arc<rendezvous_graph::PortLabeledGraph>,
    Arc<OrientedRingExplorer>,
) {
    let g = Arc::new(generators::oriented_ring(n).unwrap());
    let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    (g, ex)
}

#[test]
fn bounds_are_monotone_in_l() {
    let (g, ex) = on_ring(10);
    let mut prev_cheap = 0;
    let mut prev_fast = 0;
    for l in [2u64, 4, 8, 16, 64, 512, 4096] {
        let space = LabelSpace::new(l).unwrap();
        let cheap = Cheap::new(g.clone(), ex.clone(), space);
        let fast = Fast::new(g.clone(), ex.clone(), space);
        assert!(cheap.time_bound() > prev_cheap);
        assert!(fast.time_bound() >= prev_fast);
        // Cost bounds: Cheap's is L-independent, Fast's grows with log L.
        assert_eq!(cheap.cost_bound(), 3 * cheap.exploration_bound());
        prev_cheap = cheap.time_bound();
        prev_fast = fast.time_bound();
    }
}

#[test]
fn bounds_scale_linearly_in_e() {
    // Every bound is a multiple of E: doubling the ring (roughly) doubles
    // each bound.
    let space = LabelSpace::new(32).unwrap();
    let (g1, ex1) = on_ring(7);
    let (g2, ex2) = on_ring(13); // E: 6 -> 12
    let c1 = Cheap::new(g1.clone(), ex1.clone(), space);
    let c2 = Cheap::new(g2.clone(), ex2.clone(), space);
    assert_eq!(c2.time_bound(), 2 * c1.time_bound());
    assert_eq!(c2.cost_bound(), 2 * c1.cost_bound());
    let f1 = Fast::new(g1, ex1, space);
    let f2 = Fast::new(g2, ex2, space);
    assert_eq!(f2.time_bound(), 2 * f1.time_bound());
}

#[test]
fn crossover_where_fast_overtakes_cheap() {
    // For tiny L, Cheap's time bound can compete with Fast's; for large L,
    // Fast wins by an unbounded factor. Find the crossover and check it is
    // where the formulas say: (2L+1) vs (4 floor(log(L-1)) + 9).
    let (g, ex) = on_ring(10);
    let mut crossed = false;
    for l in 2u64..=64 {
        let space = LabelSpace::new(l).unwrap();
        let cheap = Cheap::new(g.clone(), ex.clone(), space);
        let fast = Fast::new(g.clone(), ex.clone(), space);
        let formula_says_fast = 4 * space.floor_log2_l_minus_1() + 9 < 2 * l + 1;
        assert_eq!(
            fast.time_bound() < cheap.time_bound(),
            formula_says_fast,
            "mismatch at L={l}"
        );
        if formula_says_fast {
            crossed = true;
        }
    }
    assert!(crossed, "the crossover must occur within L <= 64");
}

#[test]
fn fwr_interpolates_between_the_extremes() {
    // As w grows from 1 to ~log L, FastWithRelabeling's time bound falls
    // from Cheap-like to Fast-like while its cost bound rises.
    let (g, ex) = on_ring(10);
    let space = LabelSpace::new(1024).unwrap();
    let mut prev_time = u64::MAX;
    let mut prev_cost = 0;
    for w in 1..=8u64 {
        let alg = FastWithRelabeling::new(g.clone(), ex.clone(), space, w).unwrap();
        assert!(
            alg.time_bound() <= prev_time,
            "time bound must be non-increasing in w up to log L (w={w})"
        );
        assert!(alg.cost_bound() > prev_cost);
        prev_time = alg.time_bound();
        prev_cost = alg.cost_bound();
    }
}

#[test]
fn smallest_t_inverts_binomial() {
    for w in 1..=6u64 {
        for l in 2..=2_000u64 {
            let t = smallest_t(w, l);
            assert!(binomial(t, w) >= u128::from(l));
            if t > w {
                assert!(binomial(t - 1, w) < u128::from(l));
            }
        }
    }
}

#[test]
fn simultaneous_variant_dominates_cheap_on_both_bounds() {
    // Without delays you can always do better: the simultaneous variant's
    // bounds are at most Cheap's on both axes.
    let (g, ex) = on_ring(12);
    for l in [2u64, 8, 128] {
        let space = LabelSpace::new(l).unwrap();
        let sim = CheapSimultaneous::new(g.clone(), ex.clone(), space);
        let cheap = Cheap::new(g.clone(), ex.clone(), space);
        assert!(sim.time_bound() <= cheap.time_bound());
        assert!(sim.cost_bound() <= cheap.cost_bound());
    }
}

#[test]
fn fwr_with_w_one_is_cheap_like() {
    // w = 1: t = L, time (4L+5)E — the same Θ(LE) regime as Cheap, and the
    // cost bound (4·1+2)E = 6E is within a constant of Cheap's 3E.
    let (g, ex) = on_ring(8);
    let space = LabelSpace::new(64).unwrap();
    let alg = FastWithRelabeling::new(g, ex, space, 1).unwrap();
    assert_eq!(alg.t(), 64);
    assert_eq!(alg.cost_bound(), 6 * alg.exploration_bound());
}
