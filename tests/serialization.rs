//! Serialization round-trips: graphs (fixtures for experiments) and the
//! experiment row types (recorded in EXPERIMENTS.md / CSV output).

use rendezvous_graph::{generators, PortLabeledGraph};

#[test]
fn every_generator_round_trips_through_json() {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(1);
    let graphs = vec![
        generators::oriented_ring(7).unwrap(),
        generators::scrambled_ring(7, &mut rng).unwrap(),
        generators::path(5).unwrap(),
        generators::star(4).unwrap(),
        generators::complete(5).unwrap(),
        generators::hypercube(3).unwrap(),
        generators::grid(3, 3).unwrap(),
        generators::torus(3, 4).unwrap(),
        generators::balanced_binary_tree(3).unwrap(),
        generators::random_tree(9, &mut rng).unwrap(),
        generators::erdos_renyi_connected(9, 0.4, &mut rng).unwrap(),
        generators::random_regular_connected(8, 3, &mut rng).unwrap(),
    ];
    for g in graphs {
        let json = serde_json::to_string(&g).unwrap();
        let back: PortLabeledGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
        back.check_invariants().unwrap();
    }
}

#[test]
fn deserialized_graphs_are_revalidated() {
    // Tampered adjacency (broken symmetry) must be caught by the explicit
    // invariant check, the documented pattern for untrusted input.
    let g = generators::oriented_ring(4).unwrap();
    let mut value: serde_json::Value = serde_json::to_value(&g).unwrap();
    // break one half-edge's entry port
    value["adj"][0][0]["entry"] = serde_json::json!(0);
    let tampered: PortLabeledGraph = serde_json::from_value(value).unwrap();
    assert!(tampered.check_invariants().is_err());
}

#[test]
fn experiment_rows_serialize_for_csv_and_json_export() {
    let rows = rendezvous_bench::x3_relabel::run_bounds(&[16], &[2]);
    let json = serde_json::to_string(&rows).unwrap();
    assert!(json.contains("\"time_bound_per_e\""));
    let m = rendezvous_bench::common::Measured { time: 3, cost: 4 };
    assert_eq!(serde_json::to_string(&m).unwrap(), r#"{"time":3,"cost":4}"#);
}

/// A shard ledger — a stream of tagged [`LedgerRecord`] enum values
/// (struct variants, the derive support added for the unified ledger) —
/// must round-trip **byte-identically** through the vendored serde,
/// k-agent fleet witnesses, per-family topology groups and per-scenario
/// ratio bounds included: the property every multi-process sweep of
/// x1–x11 stands on.
#[test]
fn shard_ledgers_round_trip_tagged_records_byte_identically() {
    use rendezvous_bench::sharding::{LedgerRecord, ShardEmission};
    use rendezvous_graph::{GraphSpec, NodeId, RingSpec};
    use rendezvous_runner::{Bounds, Placement, Scenario, ScenarioOutcome, SweepReport};

    let fleet = Scenario::fleet(
        (0..4)
            .map(|i| Placement {
                label: 1 + 5 * i,
                start: NodeId::new(3 * i as usize),
                delay: (7 * i) % 13,
            })
            .collect(),
        2_048,
    );
    let mut fleet_report = SweepReport::default();
    fleet_report.absorb(
        "",
        9,
        None,
        &ScenarioOutcome {
            scenario: fleet,
            time: Some(311),
            cost: 640,
            crossings: 0,
            time_bound: Some(900),
            merges: 3,
        },
        None,
    );
    let mut topo_report = SweepReport::default();
    topo_report.absorb(
        "ring",
        4,
        Some(&GraphSpec::Ring(RingSpec { n: 7 })),
        &ScenarioOutcome::pairwise(
            Scenario::pair(1, 4, NodeId::new(0), NodeId::new(3), 2, 120),
            Some(11),
            9,
            0,
        ),
        Some(Bounds { time: 60, cost: 18 }),
    );
    let emission = ShardEmission {
        shard: 1,
        of: 3,
        records: vec![
            LedgerRecord::Grid {
                digest: 0xabad_cafe,
                full_size: 40,
                size: 12,
                report: fleet_report,
            },
            LedgerRecord::Topo {
                digest: 0x0def_aced,
                full_size: 96,
                size: 48,
                report: topo_report,
            },
        ],
    };
    let json = serde_json::to_string_pretty(&emission).unwrap();
    let back: ShardEmission = serde_json::from_str(&json).unwrap();
    assert_eq!(serde_json::to_string_pretty(&back).unwrap(), json);
    // The externally tagged encoding is visible in the text…
    assert!(json.contains("\"Grid\"") && json.contains("\"Topo\""));
    // …and the payloads come back intact.
    let stats = back.records[0].report().solo();
    let witness = stats.worst_ratio.as_ref().unwrap();
    assert_eq!(witness.scenario.k(), 4);
    assert_eq!(witness.time_bound, Some(900));
    assert_eq!(stats.merges, 3);
    let ring = back.records[1].report().group("ring").unwrap().clone();
    let witness = ring.worst_time.as_ref().unwrap();
    assert_eq!(
        witness.spec.as_ref().unwrap().build().unwrap().node_count(),
        7
    );
    assert_eq!(witness.cost_bound, Some(18));
}

/// The vendored serde's tuple impls: `(label, start, delay)` placement
/// triples and `(a, b)` pairs serialize as fixed-length arrays and come
/// back exactly.
#[test]
fn placement_tuples_round_trip_as_arrays() {
    use rendezvous_graph::NodeId;
    let triples: Vec<(u64, NodeId, u64)> = vec![(1, NodeId::new(0), 0), (9, NodeId::new(4), 7)];
    let json = serde_json::to_string(&triples).unwrap();
    assert_eq!(json, "[[1,0,0],[9,4,7]]");
    let back: Vec<(u64, NodeId, u64)> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, triples);
    let pair: (u64, u64) = serde_json::from_str("[3,5]").unwrap();
    assert_eq!(pair, (3, 5));
    // Exact arity: trailing elements must fail, not silently truncate.
    assert!(serde_json::from_str::<(u64, u64)>("[3,5,8]").is_err());
    assert!(serde_json::from_str::<(u64, NodeId, u64)>("[3,5]").is_err());
}
