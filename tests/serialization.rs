//! Serialization round-trips: graphs (fixtures for experiments) and the
//! experiment row types (recorded in EXPERIMENTS.md / CSV output).

use rendezvous_graph::{generators, PortLabeledGraph};

#[test]
fn every_generator_round_trips_through_json() {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(1);
    let graphs = vec![
        generators::oriented_ring(7).unwrap(),
        generators::scrambled_ring(7, &mut rng).unwrap(),
        generators::path(5).unwrap(),
        generators::star(4).unwrap(),
        generators::complete(5).unwrap(),
        generators::hypercube(3).unwrap(),
        generators::grid(3, 3).unwrap(),
        generators::torus(3, 4).unwrap(),
        generators::balanced_binary_tree(3).unwrap(),
        generators::random_tree(9, &mut rng).unwrap(),
        generators::erdos_renyi_connected(9, 0.4, &mut rng).unwrap(),
        generators::random_regular_connected(8, 3, &mut rng).unwrap(),
    ];
    for g in graphs {
        let json = serde_json::to_string(&g).unwrap();
        let back: PortLabeledGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
        back.check_invariants().unwrap();
    }
}

#[test]
fn deserialized_graphs_are_revalidated() {
    // Tampered adjacency (broken symmetry) must be caught by the explicit
    // invariant check, the documented pattern for untrusted input.
    let g = generators::oriented_ring(4).unwrap();
    let mut value: serde_json::Value = serde_json::to_value(&g).unwrap();
    // break one half-edge's entry port
    value["adj"][0][0]["entry"] = serde_json::json!(0);
    let tampered: PortLabeledGraph = serde_json::from_value(value).unwrap();
    assert!(tampered.check_invariants().is_err());
}

#[test]
fn experiment_rows_serialize_for_csv_and_json_export() {
    let rows = rendezvous_bench::x3_relabel::run_bounds(&[16], &[2]);
    let json = serde_json::to_string(&rows).unwrap();
    assert!(json.contains("\"time_bound_per_e\""));
    let m = rendezvous_bench::common::Measured { time: 3, cost: 4 };
    assert_eq!(serde_json::to_string(&m).unwrap(), r#"{"time":3,"cost":4}"#);
}
