//! End-to-end integration: every algorithm on every graph family meets
//! within the paper's bounds, across the full crate stack
//! (graph → explore → sim → core).

use rendezvous_core::{
    Cheap, CheapSimultaneous, Fast, FastWithRelabeling, Label, LabelSpace, RendezvousAlgorithm,
};
use rendezvous_explore::{
    DfsMapExplorer, EulerianExplorer, Explorer, HamiltonianExplorer, OrientedRingExplorer,
    TrialDfsExplorer,
};
use rendezvous_graph::{generators, HamiltonianCycle, NodeId, PortLabeledGraph};
use rendezvous_sim::{AgentSpec, Simulation};
use std::sync::Arc;

fn check_algorithm(alg: &dyn RendezvousAlgorithm, delays: &[u64]) {
    let g = alg.graph();
    let l = alg.label_space().size();
    let pairs = [(1, 2), (l - 1, l), (1, l)];
    let n = g.node_count();
    // A deterministic position sample covering near/far placements.
    let positions = [(0usize, 1usize), (0, n / 2), (n - 1, n / 3)];
    for &(la, lb) in &pairs {
        for &(pa, pb) in &positions {
            if pa == pb {
                continue;
            }
            for &d in delays {
                let a = alg.agent(Label::new(la).unwrap(), NodeId::new(pa)).unwrap();
                let b = alg.agent(Label::new(lb).unwrap(), NodeId::new(pb)).unwrap();
                let out = Simulation::new(g)
                    .agent(Box::new(a), AgentSpec::immediate(NodeId::new(pa)))
                    .agent(Box::new(b), AgentSpec::delayed(NodeId::new(pb), d))
                    .max_rounds(4 * alg.time_bound() + 4 * d)
                    .run()
                    .unwrap();
                let t = out.time().unwrap_or_else(|| {
                    panic!(
                        "{} failed to meet: labels ({la},{lb}), starts ({pa},{pb}), delay {d}",
                        alg.name()
                    )
                });
                assert!(
                    t <= alg.time_bound(),
                    "{}: time {t} > bound {} (labels ({la},{lb}), starts ({pa},{pb}), delay {d})",
                    alg.name(),
                    alg.time_bound()
                );
                assert!(
                    out.cost() <= alg.cost_bound(),
                    "{}: cost {} > bound {}",
                    alg.name(),
                    out.cost(),
                    alg.cost_bound()
                );
            }
        }
    }
}

fn graphs() -> Vec<(Arc<PortLabeledGraph>, Arc<dyn Explorer>)> {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    let mut out: Vec<(Arc<PortLabeledGraph>, Arc<dyn Explorer>)> = Vec::new();

    let ring = Arc::new(generators::oriented_ring(11).unwrap());
    out.push((
        ring.clone(),
        Arc::new(OrientedRingExplorer::new(ring.clone()).unwrap()),
    ));

    let star = Arc::new(generators::star(6).unwrap());
    out.push((star.clone(), Arc::new(DfsMapExplorer::new(star.clone()))));

    let grid = Arc::new(generators::grid(4, 3).unwrap());
    out.push((grid.clone(), Arc::new(DfsMapExplorer::new(grid.clone()))));

    let tree = Arc::new(generators::random_tree(10, &mut rng).unwrap());
    out.push((tree.clone(), Arc::new(DfsMapExplorer::new(tree.clone()))));

    let cube = Arc::new(generators::hypercube(3).unwrap());
    let cycle = HamiltonianCycle::known_hypercube(&cube).unwrap();
    out.push((
        cube.clone(),
        Arc::new(HamiltonianExplorer::new(cube.clone(), cycle).unwrap()),
    ));

    let torus = Arc::new(generators::torus(3, 3).unwrap());
    out.push((
        torus.clone(),
        Arc::new(EulerianExplorer::new(torus.clone()).unwrap()),
    ));

    let er = Arc::new(generators::erdos_renyi_connected(8, 0.35, &mut rng).unwrap());
    out.push((
        er.clone(),
        Arc::new(TrialDfsExplorer::new(er.clone()).unwrap()),
    ));

    out
}

#[test]
fn cheap_meets_on_every_family_with_delays() {
    for (g, ex) in graphs() {
        let e = ex.bound() as u64;
        let alg = Cheap::new(g, ex, LabelSpace::new(6).unwrap());
        check_algorithm(&alg, &[0, 1, e, 2 * e + 1]);
    }
}

#[test]
fn fast_meets_on_every_family_with_delays() {
    for (g, ex) in graphs() {
        let e = ex.bound() as u64;
        let alg = Fast::new(g, ex, LabelSpace::new(6).unwrap());
        check_algorithm(&alg, &[0, 1, e, 2 * e + 1]);
    }
}

#[test]
fn fwr_meets_on_every_family() {
    for (g, ex) in graphs() {
        let e = ex.bound() as u64;
        for w in [1u64, 2, 3] {
            let alg =
                FastWithRelabeling::new(g.clone(), ex.clone(), LabelSpace::new(6).unwrap(), w)
                    .unwrap();
            check_algorithm(&alg, &[0, e]);
        }
    }
}

#[test]
fn cheap_simultaneous_meets_on_every_family_without_delays() {
    for (g, ex) in graphs() {
        let alg = CheapSimultaneous::new(g, ex, LabelSpace::new(6).unwrap());
        check_algorithm(&alg, &[0]);
    }
}

#[test]
fn umbrella_crate_reexports_the_stack() {
    // The `rendezvous` facade exposes all five crates.
    let g = std::sync::Arc::new(rendezvous::graph::generators::oriented_ring(5).unwrap());
    let ex =
        std::sync::Arc::new(rendezvous::explore::OrientedRingExplorer::new(g.clone()).unwrap());
    let alg = rendezvous::core::Fast::new(g, ex, rendezvous::core::LabelSpace::new(4).unwrap());
    assert_eq!(rendezvous::core::RendezvousAlgorithm::name(&alg), "fast");
}
