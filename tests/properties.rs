//! Randomized property tests across the whole stack: for arbitrary ring
//! sizes, labels, start positions and delays, the paper's algorithms
//! always meet within their bounds, and the accounting identities hold.

use proptest::prelude::*;
use rendezvous_core::{Cheap, Fast, FastWithRelabeling, Label, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::OrientedRingExplorer;
use rendezvous_graph::{generators, NodeId};
use rendezvous_sim::{AgentSpec, Simulation};
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    l: u64,
    la: u64,
    lb: u64,
    pa: usize,
    pb: usize,
    delay: u64,
}

fn instances() -> impl Strategy<Value = Instance> {
    (4usize..20, 2u64..24).prop_flat_map(|(n, l)| {
        (
            Just(n),
            Just(l),
            1..=l,
            1..=l,
            0..n,
            0..n,
            0u64..(3 * n as u64),
        )
            .prop_map(|(n, l, la, lb, pa, pb, delay)| Instance {
                n,
                l,
                la,
                lb,
                pa,
                pb,
                delay,
            })
            .prop_filter("distinct labels and starts", |i| {
                i.la != i.lb && i.pa != i.pb
            })
    })
}

fn run_instance(alg: &dyn RendezvousAlgorithm, i: &Instance) -> (u64, u64, u64) {
    let a = alg
        .agent(Label::new(i.la).unwrap(), NodeId::new(i.pa))
        .unwrap();
    let b = alg
        .agent(Label::new(i.lb).unwrap(), NodeId::new(i.pb))
        .unwrap();
    let out = Simulation::new(alg.graph())
        .agent(Box::new(a), AgentSpec::immediate(NodeId::new(i.pa)))
        .agent(Box::new(b), AgentSpec::delayed(NodeId::new(i.pb), i.delay))
        .max_rounds(8 * alg.time_bound() + 8 * i.delay)
        .run()
        .unwrap();
    let t = out.time().expect("paper algorithms always meet");
    let per: u64 = out.per_agent_cost().iter().sum();
    assert_eq!(per, out.cost(), "cost must equal the per-agent sum");
    (t, out.cost(), out.time_from_later().expect("met"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cheap_always_meets_within_bounds(i in instances()) {
        let g = Arc::new(generators::oriented_ring(i.n).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let alg = Cheap::new(g, ex, LabelSpace::new(i.l).unwrap());
        let (t, c, t_later) = run_instance(&alg, &i);
        prop_assert!(t <= alg.time_bound());
        prop_assert!(c <= alg.cost_bound());
        prop_assert!(t_later <= t, "later-start time never exceeds earlier-start time");
        // Prop 2.1's refined claim: time <= (2*min_label + 3) * E.
        let e = alg.exploration_bound();
        prop_assert!(t <= (2 * i.la.min(i.lb) + 3) * e);
    }

    #[test]
    fn fast_always_meets_within_bounds(i in instances()) {
        let g = Arc::new(generators::oriented_ring(i.n).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let alg = Fast::new(g, ex, LabelSpace::new(i.l).unwrap());
        let (t, c, _) = run_instance(&alg, &i);
        prop_assert!(t <= alg.time_bound());
        prop_assert!(c <= alg.cost_bound());
        prop_assert!(c <= 2 * t, "cost at most twice the time (two agents, one move each per round)");
    }

    #[test]
    fn fwr_always_meets_within_bounds(i in instances(), w in 1u64..4) {
        let w = w.min(i.l);
        let g = Arc::new(generators::oriented_ring(i.n).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let alg = FastWithRelabeling::new(g, ex, LabelSpace::new(i.l).unwrap(), w).unwrap();
        let (t, c, _) = run_instance(&alg, &i);
        prop_assert!(t <= alg.time_bound());
        prop_assert!(c <= alg.cost_bound());
    }

    #[test]
    fn meetings_are_symmetric_in_roles(i in instances()) {
        // Swapping which agent is "first" in the simulation (with zero
        // delay) must not change the meeting round: the engine has no
        // hidden agent ordering.
        let g = Arc::new(generators::oriented_ring(i.n).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let alg = Fast::new(g.clone(), ex, LabelSpace::new(i.l).unwrap());
        let run = |first: (u64, usize), second: (u64, usize)| {
            let a = alg.agent(Label::new(first.0).unwrap(), NodeId::new(first.1)).unwrap();
            let b = alg.agent(Label::new(second.0).unwrap(), NodeId::new(second.1)).unwrap();
            Simulation::new(&g)
                .agent(Box::new(a), AgentSpec::immediate(NodeId::new(first.1)))
                .agent(Box::new(b), AgentSpec::immediate(NodeId::new(second.1)))
                .max_rounds(8 * alg.time_bound())
                .run()
                .unwrap()
                .meeting()
                .expect("met")
        };
        let m1 = run((i.la, i.pa), (i.lb, i.pb));
        let m2 = run((i.lb, i.pb), (i.la, i.pa));
        prop_assert_eq!(m1.round, m2.round);
        prop_assert_eq!(m1.node, m2.node);
    }

    #[test]
    fn exploration_covers_any_ring_start(n in 3usize..40, s in 0usize..40) {
        let s = s % n;
        let g = Arc::new(generators::oriented_ring(n).unwrap());
        let ex = OrientedRingExplorer::new(g.clone()).unwrap();
        let mut run = rendezvous_explore::Explorer::begin(&ex, NodeId::new(s));
        let t = rendezvous_explore::coverage_time(&g, run.as_mut(), NodeId::new(s), n);
        prop_assert_eq!(t, Some(n - 1));
    }
}
