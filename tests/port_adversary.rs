//! Robustness against the port-numbering adversary: the model lets the
//! adversary choose port assignments, so the algorithms (with the
//! map-based explorers, which see the actual assignment) must meet within
//! their bounds on *any* relabelling of the same topology.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use rendezvous_core::{Cheap, Fast, Label, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::{verify_explorer, DfsMapExplorer, TrialDfsExplorer};
use rendezvous_graph::{generators, NodeId};
use rendezvous_sim::{AgentSpec, Simulation};
use std::sync::Arc;

fn check_meets(alg: &dyn RendezvousAlgorithm, la: u64, lb: u64, pa: usize, pb: usize, d: u64) {
    let a = alg.agent(Label::new(la).unwrap(), NodeId::new(pa)).unwrap();
    let b = alg.agent(Label::new(lb).unwrap(), NodeId::new(pb)).unwrap();
    let out = Simulation::new(alg.graph())
        .agent(Box::new(a), AgentSpec::immediate(NodeId::new(pa)))
        .agent(Box::new(b), AgentSpec::delayed(NodeId::new(pb), d))
        .max_rounds(4 * alg.time_bound() + 4 * d)
        .run()
        .unwrap();
    let t = out.time().unwrap_or_else(|| {
        panic!("{} failed on permuted ports", alg.name());
    });
    assert!(t <= alg.time_bound());
    assert!(out.cost() <= alg.cost_bound());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dfs_explorer_contract_survives_port_permutation(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = generators::grid(3, 4).unwrap();
        let g = Arc::new(generators::permute_ports(&base, &mut rng).unwrap());
        let ex = DfsMapExplorer::new(g.clone());
        prop_assert!(verify_explorer(&g, &ex).is_ok());
    }

    #[test]
    fn algorithms_meet_on_permuted_graphs(seed in 0u64..10_000, delay in 0u64..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = generators::wheel(7).unwrap();
        let g = Arc::new(generators::permute_ports(&base, &mut rng).unwrap());
        let ex = Arc::new(DfsMapExplorer::new(g.clone()));
        let space = LabelSpace::new(6).unwrap();
        let cheap = Cheap::new(g.clone(), ex.clone(), space);
        check_meets(&cheap, 2, 5, 0, 4, delay);
        let fast = Fast::new(g, ex, space);
        check_meets(&fast, 2, 5, 0, 4, delay);
    }

    #[test]
    fn trial_dfs_survives_port_permutation(seed in 0u64..5_000) {
        // The map-without-start scenario: permuting ports changes which
        // candidate walks abort where, but coverage must still hold.
        let mut rng = StdRng::seed_from_u64(seed);
        let base = generators::lollipop(4, 2).unwrap();
        let g = Arc::new(generators::permute_ports(&base, &mut rng).unwrap());
        let ex = TrialDfsExplorer::new(g.clone()).unwrap();
        prop_assert!(verify_explorer(&g, &ex).is_ok());
    }
}

#[test]
fn oriented_ring_explorer_rejects_permuted_rings() {
    // Port permutation destroys orientation, and the ring explorer's
    // validation must notice (with overwhelming probability over seeds;
    // this seed is checked to produce a non-oriented labelling).
    let mut rng = StdRng::seed_from_u64(3);
    let base = generators::oriented_ring(10).unwrap();
    let g = Arc::new(generators::permute_ports(&base, &mut rng).unwrap());
    assert!(rendezvous_explore::OrientedRingExplorer::new(g).is_err());
}
