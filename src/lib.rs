//! Umbrella crate re-exporting the rendezvous reproduction workspace.
//!
//! See the individual crates for the substance:
//! - [`rendezvous_graph`] — anonymous port-labelled graphs,
//! - [`rendezvous_explore`] — exploration procedures with known bounds `E`,
//! - [`rendezvous_sim`] — the synchronous two-agent execution model,
//! - [`rendezvous_core`] — the paper's algorithms (`Cheap`, `Fast`, `FastWithRelabeling`),
//! - [`rendezvous_lower_bounds`] — the executable lower-bound machinery of §3,
//! - [`rendezvous_runner`] — the shared parallel scenario-sweep engine
//!   (`Scenario`, `Grid`, `Runner`) every experiment executes through.

pub use rendezvous_core as core;
pub use rendezvous_explore as explore;
pub use rendezvous_graph as graph;
pub use rendezvous_lower_bounds as lower_bounds;
pub use rendezvous_runner as runner;
pub use rendezvous_sim as sim;
