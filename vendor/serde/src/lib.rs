//! Minimal vendored stand-in for `serde`.
//!
//! The container building this workspace has no access to crates.io, so
//! this crate re-implements the slice of serde the workspace actually
//! uses: derive-able `Serialize`/`Deserialize` over a JSON-shaped
//! [`Value`] model. `serde_json` (also vendored) adds text parsing and
//! printing on top of the same `Value`.
//!
//! Differences from real serde, on purpose:
//! * serialization goes through [`Value`] rather than a streaming
//!   `Serializer` — fine at experiment-table scale;
//! * objects preserve insertion order (matching real `serde_json`'s
//!   struct-field ordering);
//! * only the types this workspace derives are supported (plain structs,
//!   unit/newtype/struct enum variants — externally tagged, as in real
//!   serde — and `#[serde(transparent)]` newtypes).

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped value: the serialization data model of this mini-serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(elements) => Some(elements),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        match self {
            Value::Object(entries) => {
                if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
                    &mut entries[pos].1
                } else {
                    entries.push((key.to_string(), Value::Null));
                    &mut entries.last_mut().expect("just pushed").1
                }
            }
            _ => panic!("cannot index non-object value with a string key"),
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(elements) => elements.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(elements) => &mut elements[idx],
            _ => panic!("cannot index non-array value with a number"),
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self`, validating shape (but not semantic invariants).
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---- helpers the derive macros call ----------------------------------

/// Looks up a struct field by name in an object value.
pub fn field<'v>(value: &'v Value, name: &str) -> Result<&'v Value, DeError> {
    value
        .as_object()
        .ok_or_else(|| DeError::custom(format!("expected object with field `{name}`")))?
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

/// Looks up a tuple element by position in an array value.
pub fn element(value: &Value, idx: usize) -> Result<&Value, DeError> {
    value
        .as_array()
        .ok_or_else(|| DeError::custom("expected array"))?
        .get(idx)
        .ok_or_else(|| DeError::custom(format!("missing tuple element {idx}")))
}

/// The single `(key, value)` entry of a one-entry object (enum encoding).
pub fn single_entry(value: &Value) -> Option<(&str, &Value)> {
    match value.as_object() {
        Some(entries) if entries.len() == 1 => Some((entries[0].0.as_str(), &entries[0].1)),
        _ => None,
    }
}

// ---- impls for primitives and std containers -------------------------

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom("integer out of range")),
                    _ => Err(DeError::custom(concat!(
                        "expected unsigned integer for ",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom("integer out of range")),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom("integer out of range")),
                    _ => Err(DeError::custom(concat!(
                        "expected integer for ",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

// `u128` does not fit the `Value::UInt(u64)` model: values beyond
// `u64::MAX` are carried as decimal strings (JSON numbers above 2^53
// are lossy in most consumers anyway), everything else as `UInt`.
impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(n) => Value::UInt(n),
            Err(_) => Value::String(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::UInt(n) => Ok(u128::from(*n)),
            Value::String(s) => s
                .parse()
                .map_err(|_| DeError::custom("expected decimal string for u128")),
            _ => Err(DeError::custom("expected unsigned integer for u128")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            _ => Err(DeError::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|x| x as f32)
    }
}

// Tuples serialize as fixed-length arrays — the shape the fleet APIs
// traffic in (`(label, start, delay)` placement triples, `(a, b)` label
// and start pairs).
macro_rules! serialize_tuple {
    ($(($arity:literal; $($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let elements = value
                    .as_array()
                    .ok_or_else(|| DeError::custom("expected array for tuple"))?;
                // Exact arity, as in real serde: trailing elements must
                // fail loudly, not round-trip "successfully" truncated.
                if elements.len() != $arity {
                    return Err(DeError::custom(concat!(
                        "expected array of length ",
                        stringify!($arity)
                    )));
                }
                Ok(($($name::from_value(element(value, $idx)?)?,)+))
            }
        }
    )+};
}
serialize_tuple!((2; A: 0, B: 1), (3; A: 0, B: 1, C: 2));

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

// `BTreeMap<String, V>` serializes as an object whose keys appear in
// sorted order (the map's iteration order) — the shape the telemetry
// sidecar relies on for byte-stable counter sections.
impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::custom("expected object for map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}
