//! Minimal vendored stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use (`Criterion`,
//! `bench_function`, `iter`, `iter_batched`, the `criterion_group!` /
//! `criterion_main!` macros) with a plain wall-clock measurement loop:
//! per-sample medians and min/max printed to stdout. No statistics
//! machinery, no plots — enough to compare hot paths before/after a
//! change on the same machine.

use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Every `(name, median ns/iter)` reported so far, in run order, so a
/// bench binary can persist its measurements machine-readably (an
/// extension over upstream criterion's file-based reports).
static RESULTS: Mutex<Vec<(String, u128)>> = Mutex::new(Vec::new());

/// Drains the recorded `(name, median ns/iter)` pairs, in run order.
pub fn take_results() -> Vec<(String, u128)> {
    std::mem::take(&mut *RESULTS.lock().expect("bench results poisoned"))
}

/// How `iter_batched` amortizes setup cost (accepted, not interpreted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many iterations per setup.
    SmallInput,
    /// Large inputs: fewer iterations per setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then timed samples.
        std_black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name}: no samples recorded");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = *self.samples.last().expect("non-empty");
        RESULTS
            .lock()
            .expect("bench results poisoned")
            .push((name.to_string(), median.as_nanos()));
        println!(
            "{name}: median {} (min {}, max {}, {} samples)",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("tiny/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("tiny/batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        tiny(&mut c);
        // Reported medians are recorded for machine-readable export.
        // (Other tests may interleave entries; only containment of this
        // run's names is guaranteed.)
        let names: Vec<String> = take_results().into_iter().map(|(n, _)| n).collect();
        assert!(names.iter().any(|n| n == "tiny/sum"));
        assert!(names.iter().any(|n| n == "tiny/batched"));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = tiny
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
