//! Derive macros for the vendored `serde` stand-in.
//!
//! The real `serde_derive` pulls in `syn`/`quote`; this container has no
//! network access, so the subset of the derive input grammar actually used
//! by the workspace (plain structs, C-like/newtype/struct enum variants,
//! the `#[serde(transparent)]` attribute) is parsed by hand from the token
//! stream. Generics are intentionally unsupported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the type under derive.
struct Input {
    name: String,
    /// `#[serde(transparent)]` was seen. Single-field tuple structs are
    /// serialized transparently either way, so this is informational.
    #[allow(dead_code)]
    transparent: bool,
    kind: Kind,
}

enum Kind {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// Enum: one entry per variant.
    Enum(Vec<(String, VariantShape)>),
}

/// The shape of one enum variant. Externally tagged like real serde:
/// unit variants encode as `"Name"`, newtype variants as
/// `{"Name": inner}`, struct variants as `{"Name": {field: …}}`.
enum VariantShape {
    Unit,
    Newtype,
    /// Struct-like variant with named fields in declaration order — what
    /// self-describing tagged records (e.g. the shard ledger's
    /// `LedgerRecord`) derive through.
    Struct(Vec<String>),
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut transparent = false;
    let mut i = 0;
    // Outer attributes: `#[...]`. Remember whether `#[serde(transparent)]`
    // appears; skip everything else (doc comments arrive in this form too).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let body = g.stream().to_string();
                    if body.starts_with("serde") && body.contains("transparent") {
                        transparent = true;
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }
    // Visibility: `pub` optionally followed by `(...)`.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let is_enum = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => false,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => true,
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic types are not supported");
    }
    let body = loop {
        match &tokens.get(i) {
            Some(TokenTree::Group(g))
                if matches!(g.delimiter(), Delimiter::Brace | Delimiter::Parenthesis) =>
            {
                break g.clone()
            }
            Some(_) => i += 1,
            None => panic!("serde derive: missing struct/enum body"),
        }
    };
    let kind = if is_enum {
        Kind::Enum(parse_variants(&body))
    } else if body.delimiter() == Delimiter::Parenthesis {
        Kind::Tuple(count_tuple_fields(&body))
    } else {
        Kind::Struct(parse_named_fields(&body))
    };
    Input {
        name,
        transparent,
        kind,
    }
}

/// Splits a delimited group's tokens on top-level commas. Angle
/// brackets are tracked so commas inside generic field types
/// (`BTreeMap<String, u64>`) don't split — proc-macro token trees
/// don't group `<…>`, only `(…)`/`[…]`/`{…}`.
fn split_commas(group: &proc_macro::Group) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for t in group.stream() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(Vec::new());
                continue;
            }
            _ => {}
        }
        out.last_mut().expect("non-empty").push(t);
    }
    out.retain(|part| !part.is_empty());
    out
}

/// Skips leading attributes and visibility in a field/variant token slice.
fn skip_attrs_and_vis(part: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match part.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(part.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return &part[i..],
        }
    }
}

fn parse_named_fields(body: &proc_macro::Group) -> Vec<String> {
    split_commas(body)
        .iter()
        .map(|part| {
            let part = skip_attrs_and_vis(part);
            match part.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde derive: expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn count_tuple_fields(body: &proc_macro::Group) -> usize {
    split_commas(body).len()
}

fn parse_variants(body: &proc_macro::Group) -> Vec<(String, VariantShape)> {
    split_commas(body)
        .iter()
        .map(|part| {
            let part = skip_attrs_and_vis(part);
            let name = match part.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde derive: expected variant name, found {other:?}"),
            };
            let shape = match part.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    match split_commas(g).len() {
                        1 => VariantShape::Newtype,
                        n => panic!(
                            "serde derive (vendored): tuple enum variants take exactly one \
                             field, `{name}` has {n}"
                        ),
                    }
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Struct(parse_named_fields(g))
                }
                _ => VariantShape::Unit,
            };
            (name, shape)
        })
        .collect()
}

/// Derives `serde::Serialize` (value-model flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::String(::std::string::String::from(\"{v}\")),"
                    ),
                    VariantShape::Newtype => format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(f0))]),"
                    ),
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Object(::std::vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (value-model flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::field(value, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Kind::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| {
                    format!("::serde::Deserialize::from_value(::serde::element(value, {k})?)?")
                })
                .collect();
            format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, shape)| matches!(shape, VariantShape::Unit))
                .map(|(v, _)| {
                    format!("if s == \"{v}\" {{ return ::std::result::Result::Ok({name}::{v}); }}")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, shape)| match shape {
                    VariantShape::Unit => None,
                    VariantShape::Newtype => Some(format!(
                        "if key == \"{v}\" {{ return ::std::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::from_value(inner)?)); }}"
                    )),
                    VariantShape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::field(inner, \"{f}\")?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "if key == \"{v}\" {{ return ::std::result::Result::Ok(\
                             {name}::{v} {{ {} }}); }}",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::String(s) = value {{ {unit} \
                 return ::std::result::Result::Err(::serde::DeError::custom(\
                 \"unknown unit variant\")); }}\n\
                 if let ::std::option::Option::Some((key, inner)) = \
                 ::serde::single_entry(value) {{ {tagged} }}\n\
                 ::std::result::Result::Err(::serde::DeError::custom(\
                 \"unrecognised enum encoding\"))",
                unit = unit_arms.join(" "),
                tagged = tagged_arms.join(" "),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
