//! Minimal vendored stand-in for `serde_json`, built on the vendored
//! `serde` value model: JSON text parsing/printing, `to_value`/`from_value`,
//! and the `json!` macro — exactly the surface this workspace uses.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Error type covering both parsing and conversion failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts a serializable value into the [`Value`] model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a deserializable type from a [`Value`].
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into a deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Builds a [`Value`] from a JSON-ish literal or any serializable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($element:tt),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $($crate::json!($element)),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $((::std::string::String::from($key), $crate::json!($val))),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("infallible in the vendored model")
    };
}

// ---- printing --------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(elements) => {
            if elements.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, e) in elements.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, e, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, e)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, e, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ---------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal, expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}`",
                other as char
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut elements = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(elements));
        }
        loop {
            elements.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(elements));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged; the input came from &str).
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?,
                    );
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new("invalid integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_basics() {
        let v = parse(r#"{"a": [1, -2, 3.5, "x\n", null, true]}"#).unwrap();
        let s = to_string(&v).unwrap();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = json!({ "time": 3u64, "cost": 4u64 });
        assert_eq!(to_string(&v).unwrap(), r#"{"time":3,"cost":4}"#);
    }

    #[test]
    fn pretty_has_newlines() {
        let v = json!({ "k": [1u64, 2u64] });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(parse(&s).unwrap(), v);
    }
}
