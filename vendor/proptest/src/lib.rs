//! Minimal vendored stand-in for `proptest`.
//!
//! Supports the DSL subset this workspace uses: the `proptest!` macro with
//! `#![proptest_config(...)]` and `arg in strategy` parameters, range and
//! tuple strategies, `Just`, `prop_map` / `prop_flat_map` / `prop_filter`,
//! `proptest::collection::vec`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Unlike real proptest there is no shrinking: failures report the seeded
//! case so it can be replayed (the seed schedule is fixed per test, so
//! every run explores the same cases — deterministic CI by construction).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; that is affordable for every
        // property in this workspace and keeps coverage meaningful.
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies during sampling.
pub struct TestRng(StdRng);

impl TestRng {
    fn for_case(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds produced values into a strategy-producing `f` and samples that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `f`, resampling (bounded) until one passes.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 10000 consecutive samples",
            self.reason
        );
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Rng, Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs a property over `cases` seeded samples.
///
/// Not part of the public proptest API surface; the `proptest!` macro
/// expands to calls of this function.
pub fn run_property<S, F>(name: &str, config: &ProptestConfig, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), String>,
    S::Value: std::fmt::Debug,
{
    // Fixed per-test seed schedule (FNV-1a of the test name):
    // deterministic, independent of case execution order.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..config.cases {
        let seed = h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::for_case(seed);
        let value = strategy.sample(&mut rng);
        if let Err(msg) = test(value) {
            panic!(
                "property `{name}` failed at case {case} (seed {seed:#x}): {msg}\n\
                 (vendored proptest: no shrinking; replay via the seed)"
            );
        }
    }
}

/// Declares property tests over strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config); $($rest)*);
    };
    (@cfg ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_property(
                stringify!($name),
                &config,
                ($($strategy,)+),
                |($($arg,)+)| { $body Ok(()) },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts inside a property, reporting the failing case without panicking
/// through foreign frames.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`, {}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`, {}:{}): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: `{} != {}` (both: `{:?}`, {}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
}

/// Discards the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // Vendored simplification: an assumed-away case passes rather
            // than being regenerated.
            return Ok(());
        }
    };
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(n in 3usize..20, x in 0u64..=5, f in 0.1f64..0.9) {
            prop_assert!((3..20).contains(&n));
            prop_assert!(x <= 5);
            prop_assert!((0.1..0.9).contains(&f));
        }

        #[test]
        fn combinators_compose(v in collection::vec((0usize..10, 0usize..10), 1..30)) {
            prop_assert!(!v.is_empty() && v.len() < 30);
            for (a, b) in v {
                prop_assert!(a < 10 && b < 10);
            }
        }

        #[test]
        fn map_filter_flat_map(x in (1usize..10).prop_flat_map(|n| (Just(n), 0..n))
            .prop_map(|(n, k)| (n, k))
            .prop_filter("k below n", |(n, k)| k < n))
        {
            prop_assert!(x.1 < x.0);
        }
    }

    #[test]
    #[should_panic(expected = "property `failing` failed")]
    fn failures_panic_with_case_info() {
        crate::run_property(
            "failing",
            &ProptestConfig::with_cases(4),
            0usize..10,
            |_| Err("nope".to_string()),
        );
    }
}
