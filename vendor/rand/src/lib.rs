//! Minimal vendored stand-in for `rand` 0.9.
//!
//! The workspace only needs seeded, deterministic pseudo-randomness for
//! graph generation and tests (`StdRng::seed_from_u64`, `random_range`,
//! `random_bool`, `shuffle`), so that is all this crate provides. The
//! generator is xoshiro256** seeded via SplitMix64 — not the real
//! `StdRng`'s ChaCha12, but every consumer in this workspace relies on
//! determinism, never on a specific stream.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(1u64..=5);
            assert!((1..=5).contains(&y));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
