//! The store's one inviolable property: a report that goes in comes
//! back **byte for byte** — over arbitrary group shapes, keys and
//! workload digests — and the on-disk entry's provenance header always
//! re-derives the exact file it lives in.

use proptest::collection::vec;
use proptest::prelude::*;
use rendezvous_runner::{GroupStats, SweepReport, WorkloadKind, WorkloadMeta};
use rendezvous_store::{Store, StoreKey};
use std::path::PathBuf;

fn scratch(tag: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "rendezvous-store-prop-{}-{tag}",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn report_bytes_in_equal_bytes_out(
        groups in vec((0usize..4, 0usize..500, 0u64..10_000, 0u64..64), 0..4),
        digest in 0u64..u64::MAX,
        full_size in 1usize..100_000,
        tag in 0u64..1_000_000,
    ) {
        let keys = ["", "ring", "tree", "torus"];
        let mut report = SweepReport::default();
        let mut sorted = groups.clone();
        sorted.sort_by_key(|&(k, ..)| k);
        sorted.dedup_by_key(|&mut (k, ..)| k);
        for (k, executed, max_time, merges) in sorted {
            report.groups.push(GroupStats {
                key: keys[k].to_string(),
                executed,
                meetings: executed / 2,
                max_time,
                total_time: u128::from(max_time) * executed as u128,
                merges,
                ..GroupStats::default()
            });
        }
        let meta = WorkloadMeta {
            kind: if digest % 2 == 0 { WorkloadKind::Grid } else { WorkloadKind::Topo },
            digest,
            full_size,
            size: full_size.min(500),
        };
        let context = format!("prop sweep {}", digest % 7);
        let dir = scratch(tag);
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let key = StoreKey::new(&context, &meta, "stepped");

        let before = serde_json::to_string(&report).unwrap();
        store.save(&key, &context, "stepped", &meta, &report).unwrap();
        let after = serde_json::to_string(&store.load(&key).unwrap()).unwrap();
        prop_assert_eq!(&before, &after);

        // The entry is self-describing: token lookup returns the same
        // bytes, and the fsck walk finds nothing to complain about.
        let entry = store.load_token(key.token()).unwrap();
        prop_assert_eq!(&before, &serde_json::to_string(&entry.report).unwrap());
        let fsck = store.verify().unwrap();
        prop_assert!(fsck.clean());
        prop_assert_eq!(fsck.ok, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
