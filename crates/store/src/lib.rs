//! Content-addressed on-disk store for sweep reports — the caching half
//! of the workspace's "serve millions of users" posture.
//!
//! A sweep is a pure function of its workload
//! ([`WorkloadMeta`](rendezvous_runner::WorkloadMeta) carries a content
//! digest of the enumerated space) plus the executor/engine
//! configuration, so its [`SweepReport`] can be cached and replayed
//! byte-identically. The store keeps **one file per entry** under a root
//! directory, named by a canonical [`StoreKey`] token that composes the
//! schema version, the engine, the sweep's human context and the
//! workload fingerprint — so `ls` on the root reads as a cache manifest
//! and two different sweeps can never collide on a path.
//!
//! The discipline, in three rules:
//!
//! * **Writes are atomic.** [`Store::save`] writes a hidden temp file
//!   and renames it into place; a crashed writer leaves either the old
//!   entry or the new one, never a torn file.
//! * **Reads never trust the disk.** [`Store::load`] treats *anything*
//!   unexpected — a missing file, truncated JSON, garbage bytes, a
//!   schema from a different store generation, a fingerprint that
//!   disagrees with the key — as a typed [`Miss`], so a cache consumer's
//!   only two outcomes are "the exact bytes we wrote" or "recompute".
//!   Corruption can demote a hit to a miss; it can never serve a wrong
//!   report or panic.
//! * **Entries are self-describing.** Each file carries a provenance
//!   header (schema, fingerprint, context, engine, full
//!   [`WorkloadMeta`]) next to the report, and [`Store::verify`] — the
//!   `store verify DIR` fsck — walks every entry re-deriving its
//!   fingerprint and key token from that header, flagging entries whose
//!   name, header and content no longer agree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rendezvous_runner::{Fnv1a, SweepReport, WorkloadMeta};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Version of the on-disk entry layout. Bump it when the entry format
/// (or anything that feeds report bytes, like the fold semantics)
/// changes incompatibly: every entry written under another version
/// becomes a typed [`Miss::SchemaMismatch`] instead of a wrong answer.
pub const SCHEMA_VERSION: u32 = 1;

/// The canonical content address of one cached sweep: schema version +
/// engine + sanitized context + a digest of the raw `(context, engine)`
/// pair + the workload's canonical
/// [`fingerprint`](rendezvous_runner::WorkloadMeta::fingerprint).
///
/// The sanitized context keeps the file name readable; the digest keeps
/// it collision-proof when sanitization folds two contexts together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreKey {
    token: String,
    fingerprint: String,
}

impl StoreKey {
    /// Derives the key for a sweep named `context` (the experiment's
    /// human label, e.g. `"x1 cheap n=8 l=4"`), over the workload
    /// described by `meta`, executed by `engine`.
    #[must_use]
    pub fn new(context: &str, meta: &WorkloadMeta, engine: &str) -> StoreKey {
        let fingerprint = meta.fingerprint();
        let mut h = Fnv1a::new();
        h.write_bytes(context.as_bytes());
        h.write_bytes(&[0]);
        h.write_bytes(engine.as_bytes());
        let token = format!(
            "v{SCHEMA_VERSION}-{engine}-{}-{:08x}-{fingerprint}",
            sanitize(context),
            // The low half is plenty for disambiguating same-sanitization
            // contexts; the workload digest in the fingerprint carries
            // the heavy identity.
            h.finish() & 0xffff_ffff
        );
        StoreKey { token, fingerprint }
    }

    /// The file-name token (without the `.json` extension).
    #[must_use]
    pub fn token(&self) -> &str {
        &self.token
    }

    /// The workload fingerprint component of the key.
    #[must_use]
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }
}

/// Lowercases and folds `context` into a file-name-safe slug: runs of
/// anything but ASCII alphanumerics become single dashes.
fn sanitize(context: &str) -> String {
    let mut out = String::with_capacity(context.len());
    for c in context.chars() {
        if c.is_ascii_alphanumeric() {
            out.extend(c.to_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    let trimmed = out.trim_matches('-');
    if trimmed.is_empty() {
        "sweep".to_string()
    } else {
        trimmed.to_string()
    }
}

/// One on-disk entry: the provenance header plus the cached report. The
/// header repeats everything the key token encodes (and the full
/// [`WorkloadMeta`]), which is what lets [`Store::verify`] re-derive the
/// expected file name from the content alone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Entry {
    /// Entry layout version ([`SCHEMA_VERSION`] at write time).
    pub schema: u32,
    /// The workload's canonical fingerprint at write time.
    pub fingerprint: String,
    /// The sweep's human context label.
    pub context: String,
    /// The engine that executed the sweep (`"stepped"` / `"batched"` —
    /// engines are byte-equivalent by construction, but the cache keys
    /// them apart so an engine regression can never hide behind a cache
    /// hit from the other engine).
    pub engine: String,
    /// The workload's full self-description.
    pub meta: WorkloadMeta,
    /// The cached fold.
    pub report: SweepReport,
}

/// Why a lookup did not produce a cached report. Every variant is a
/// *miss*, not an error: the consumer recomputes (and usually
/// re-populates), it never fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Miss {
    /// No entry under this key.
    Absent,
    /// The entry exists but cannot be decoded — truncation, garbage
    /// bytes, an unreadable file.
    Corrupt(String),
    /// The entry was written by a different store generation.
    SchemaMismatch {
        /// The `schema` recorded in the entry.
        found: u32,
    },
    /// The entry's recorded fingerprint disagrees with the workload
    /// being looked up (or with its own recorded meta).
    FingerprintMismatch {
        /// The fingerprint recorded in the entry.
        found: String,
        /// The fingerprint the lookup (or the entry's own meta) expects.
        expected: String,
    },
}

impl fmt::Display for Miss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Miss::Absent => write!(f, "absent"),
            Miss::Corrupt(why) => write!(f, "corrupt entry: {why}"),
            Miss::SchemaMismatch { found } => {
                write!(f, "schema v{found} entry in a v{SCHEMA_VERSION} store")
            }
            Miss::FingerprintMismatch { found, expected } => {
                write!(f, "entry fingerprint {found} does not match {expected}")
            }
        }
    }
}

/// A failure writing to the store — unlike reads, writes surface their
/// io errors (a cache that silently stops recording is a determinism
/// hazard: cold and warm runs would diverge in what they execute).
#[derive(Debug)]
pub struct StoreError(String);

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store error: {}", self.0)
    }
}

impl std::error::Error for StoreError {}

/// What `store verify` found wrong with one entry file.
#[derive(Debug, Clone)]
pub struct VerifyProblem {
    /// The entry's file name within the store root.
    pub file: String,
    /// What disagrees.
    pub problem: String,
}

/// The result of an fsck walk: how many entries decoded cleanly, and
/// every file that did not (or whose name/header/content disagree).
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Entries whose name, header and fingerprints all agree.
    pub ok: usize,
    /// Everything else, in file-name order.
    pub problems: Vec<VerifyProblem>,
}

impl VerifyReport {
    /// `true` when the walk found nothing wrong.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.problems.is_empty()
    }
}

/// A content-addressed report store rooted at one directory.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the directory cannot be created.
    pub fn open(root: &Path) -> Result<Store, StoreError> {
        std::fs::create_dir_all(root)
            .map_err(|e| StoreError(format!("cannot create {}: {e}", root.display())))?;
        Ok(Store {
            root: root.to_path_buf(),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path an entry for `key` lives at.
    #[must_use]
    pub fn path_of(&self, key: &StoreKey) -> PathBuf {
        self.root.join(format!("{}.json", key.token()))
    }

    /// Looks up the cached report for `key`.
    ///
    /// # Errors
    ///
    /// A typed [`Miss`] for everything short of a clean hit — absence,
    /// undecodable content, schema drift, fingerprint disagreement. The
    /// caller recomputes; this method never panics on disk content.
    pub fn load(&self, key: &StoreKey) -> Result<SweepReport, Miss> {
        let entry = self.load_entry_at(&self.path_of(key))?;
        if entry.fingerprint == key.fingerprint {
            Ok(entry.report)
        } else {
            Err(Miss::FingerprintMismatch {
                found: entry.fingerprint,
                expected: key.fingerprint.clone(),
            })
        }
    }

    /// Looks up an entry by its raw file token (the sweep service's
    /// query-by-token path). The entry is validated against itself: its
    /// recorded fingerprint must match its recorded meta.
    ///
    /// # Errors
    ///
    /// A typed [`Miss`], as for [`Store::load`].
    pub fn load_token(&self, token: &str) -> Result<Entry, Miss> {
        // Refuse path-shaped tokens outright: a token is a file name.
        if token.contains('/') || token.contains('\\') || token.starts_with('.') {
            return Err(Miss::Absent);
        }
        let entry = self.load_entry_at(&self.root.join(format!("{token}.json")))?;
        let expected = entry.meta.fingerprint();
        if entry.fingerprint != expected {
            return Err(Miss::FingerprintMismatch {
                found: entry.fingerprint,
                expected,
            });
        }
        Ok(entry)
    }

    fn load_entry_at(&self, path: &Path) -> Result<Entry, Miss> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(Miss::Absent),
            Err(e) => return Err(Miss::Corrupt(format!("unreadable: {e}"))),
        };
        let entry: Entry = match serde_json::from_str(&text) {
            Ok(entry) => entry,
            Err(e) => return Err(Miss::Corrupt(format!("undecodable: {e}"))),
        };
        if entry.schema != SCHEMA_VERSION {
            return Err(Miss::SchemaMismatch {
                found: entry.schema,
            });
        }
        Ok(entry)
    }

    /// Writes (or atomically replaces) the entry for `key`.
    ///
    /// The entry is written to a hidden temp file in the store root and
    /// renamed into place, so concurrent readers see either the old
    /// bytes or the new bytes, never a torn file.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the write or rename fails.
    pub fn save(
        &self,
        key: &StoreKey,
        context: &str,
        engine: &str,
        meta: &WorkloadMeta,
        report: &SweepReport,
    ) -> Result<(), StoreError> {
        let entry = Entry {
            schema: SCHEMA_VERSION,
            fingerprint: key.fingerprint.clone(),
            context: context.to_string(),
            engine: engine.to_string(),
            meta: *meta,
            report: report.clone(),
        };
        let text = serde_json::to_string_pretty(&entry).map_err(|e| StoreError(e.to_string()))?;
        let tmp = self
            .root
            .join(format!(".tmp-{}-{}", std::process::id(), key.token()));
        let dest = self.path_of(key);
        std::fs::write(&tmp, text.as_bytes())
            .map_err(|e| StoreError(format!("cannot write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &dest).map_err(|e| {
            // Leave no droppings behind a failed publish.
            let _ = std::fs::remove_file(&tmp);
            StoreError(format!("cannot publish {}: {e}", dest.display()))
        })
    }

    /// The fsck walk: every `*.json` entry under the root is decoded and
    /// cross-checked — schema current, recorded fingerprint equal to the
    /// fingerprint re-derived from the recorded meta, and file name
    /// equal to the key token re-derived from the recorded provenance.
    /// Hidden files (in-flight temp writes) are skipped.
    ///
    /// # Errors
    ///
    /// [`StoreError`] only if the root itself cannot be listed; per-entry
    /// damage lands in the report, not in an error.
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        let mut names: Vec<String> = std::fs::read_dir(&self.root)
            .map_err(|e| StoreError(format!("cannot list {}: {e}", self.root.display())))?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|name| name.ends_with(".json") && !name.starts_with('.'))
            .collect();
        // Directory iteration order is OS-dependent; the report is not.
        names.sort();
        let mut report = VerifyReport::default();
        for name in names {
            let token = name.trim_end_matches(".json").to_string();
            match self.load_token(&token) {
                Ok(entry) => {
                    let expected = StoreKey::new(&entry.context, &entry.meta, &entry.engine);
                    if expected.token() == token {
                        report.ok += 1;
                    } else {
                        report.problems.push(VerifyProblem {
                            file: name,
                            problem: format!(
                                "file name does not match its provenance (expected {}.json)",
                                expected.token()
                            ),
                        });
                    }
                }
                Err(miss) => report.problems.push(VerifyProblem {
                    file: name,
                    problem: miss.to_string(),
                }),
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_runner::{GroupStats, WorkloadKind};

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rendezvous-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn meta(digest: u64) -> WorkloadMeta {
        WorkloadMeta {
            kind: WorkloadKind::Grid,
            digest,
            full_size: 48,
            size: 17,
        }
    }

    fn report(executed: usize) -> SweepReport {
        let mut r = SweepReport::default();
        r.groups.push(GroupStats {
            executed,
            meetings: executed,
            max_time: 9,
            ..GroupStats::default()
        });
        r
    }

    #[test]
    fn key_tokens_are_readable_and_collision_resistant() {
        let key = StoreKey::new("x1 cheap n=8 l=4", &meta(0xabc), "stepped");
        assert!(key.token().starts_with("v1-stepped-x1-cheap-n-8-l-4-"));
        assert!(key.token().ends_with("-grid-0000000000000abc-f48-s17"));
        // Same sanitized slug, different raw context → different token.
        let other = StoreKey::new("x1 cheap n:8 l.4", &meta(0xabc), "stepped");
        assert_ne!(key.token(), other.token());
        // Different engine → different token.
        let batched = StoreKey::new("x1 cheap n=8 l=4", &meta(0xabc), "batched");
        assert_ne!(key.token(), batched.token());
        // Degenerate context still yields a valid file name.
        assert!(StoreKey::new("///", &meta(1), "stepped")
            .token()
            .contains("-sweep-"));
    }

    #[test]
    fn save_then_load_round_trips_the_exact_bytes() {
        let dir = scratch("roundtrip");
        let store = Store::open(&dir).unwrap();
        let m = meta(42);
        let key = StoreKey::new("x1 cheap", &m, "stepped");
        let original = report(17);
        store
            .save(&key, "x1 cheap", "stepped", &m, &original)
            .unwrap();
        let loaded = store.load(&key).unwrap();
        assert_eq!(
            serde_json::to_string(&loaded).unwrap(),
            serde_json::to_string(&original).unwrap(),
            "cached report must reproduce the original byte for byte"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_atomically_replaces_an_existing_entry() {
        let dir = scratch("replace");
        let store = Store::open(&dir).unwrap();
        let m = meta(7);
        let key = StoreKey::new("x2 fast", &m, "batched");
        store
            .save(&key, "x2 fast", "batched", &m, &report(1))
            .unwrap();
        store
            .save(&key, "x2 fast", "batched", &m, &report(5))
            .unwrap();
        assert_eq!(store.load(&key).unwrap().executed(), 5);
        // No temp droppings survive a completed save.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with('.'))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_corruption_matrix_is_typed_misses_never_panics() {
        let dir = scratch("corruption");
        let store = Store::open(&dir).unwrap();
        let m = meta(3);
        let key = StoreKey::new("x3", &m, "stepped");

        // Absent.
        assert_eq!(store.load(&key), Err(Miss::Absent));

        // Truncated entry.
        store.save(&key, "x3", "stepped", &m, &report(4)).unwrap();
        let path = store.path_of(&key);
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(store.load(&key), Err(Miss::Corrupt(_))));

        // Garbage bytes.
        std::fs::write(&path, b"\x00\xffnot json at all").unwrap();
        assert!(matches!(store.load(&key), Err(Miss::Corrupt(_))));

        // Wrong schema version.
        let bumped = full.replacen("\"schema\": 1", "\"schema\": 99", 1);
        assert_ne!(bumped, full, "fixture must actually rewrite the schema");
        std::fs::write(&path, bumped).unwrap();
        assert_eq!(store.load(&key), Err(Miss::SchemaMismatch { found: 99 }));

        // Fingerprint drift: an entry for a different workload planted
        // under this key's path.
        let alien = meta(999);
        let alien_key = StoreKey::new("x3", &alien, "stepped");
        store
            .save(&alien_key, "x3", "stepped", &alien, &report(4))
            .unwrap();
        std::fs::rename(store.path_of(&alien_key), &path).unwrap();
        assert!(matches!(
            store.load(&key),
            Err(Miss::FingerprintMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_cross_checks_name_header_and_content() {
        let dir = scratch("verify");
        let store = Store::open(&dir).unwrap();
        let m = meta(11);
        let key = StoreKey::new("x1 cheap", &m, "stepped");
        store
            .save(&key, "x1 cheap", "stepped", &m, &report(2))
            .unwrap();
        let m2 = meta(12);
        let key2 = StoreKey::new("x1 fast", &m2, "stepped");
        store
            .save(&key2, "x1 fast", "stepped", &m2, &report(3))
            .unwrap();
        assert!(store.verify().unwrap().clean());
        assert_eq!(store.verify().unwrap().ok, 2);

        // Damage one entry: now exactly one problem, named by file.
        std::fs::write(store.path_of(&key), "{torn").unwrap();
        let fsck = store.verify().unwrap();
        assert_eq!((fsck.ok, fsck.problems.len()), (1, 1));
        assert_eq!(fsck.problems[0].file, format!("{}.json", key.token()));

        // A renamed (content-vs-name mismatch) entry is flagged too.
        std::fs::rename(store.path_of(&key2), dir.join("v1-imposter.json")).unwrap();
        let fsck = store.verify().unwrap();
        assert_eq!(fsck.ok, 0);
        assert!(fsck
            .problems
            .iter()
            .any(|p| p.file == "v1-imposter.json" && p.problem.contains("does not match")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_token_refuses_path_escapes_and_validates_self_consistency() {
        let dir = scratch("token");
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.load_token("../outside").unwrap_err(), Miss::Absent);
        assert_eq!(store.load_token(".hidden").unwrap_err(), Miss::Absent);
        let m = meta(21);
        let key = StoreKey::new("x7", &m, "stepped");
        store.save(&key, "x7", "stepped", &m, &report(6)).unwrap();
        let entry = store.load_token(key.token()).unwrap();
        assert_eq!(entry.context, "x7");
        assert_eq!(entry.report.executed(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
