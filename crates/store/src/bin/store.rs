//! The store CLI: `store verify DIR` — an fsck for a sweep-report store.
//!
//! Walks every entry under `DIR`, re-deriving its fingerprint and key
//! token from its own provenance header, and reports anything whose
//! name, header and content disagree. Exit status 0 only when the store
//! is clean.

use rendezvous_store::Store;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: store verify DIR");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [cmd, dir] = args.as_slice() else {
        return usage();
    };
    if cmd != "verify" {
        return usage();
    }
    let store = match Store::open(Path::new(dir)) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("store: {e}");
            return ExitCode::FAILURE;
        }
    };
    match store.verify() {
        Ok(report) => {
            for p in &report.problems {
                println!("BAD  {}: {}", p.file, p.problem);
            }
            println!(
                "store: {} ok, {} problem(s) under {}",
                report.ok,
                report.problems.len(),
                dir
            );
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("store: {e}");
            ExitCode::FAILURE
        }
    }
}
