//! Graphviz DOT export, useful for eyeballing small port-labelled graphs.

use crate::PortLabeledGraph;
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT format, with port numbers as head and
/// tail labels.
///
/// # Examples
///
/// ```
/// use rendezvous_graph::{dot, generators};
///
/// let g = generators::path(2).unwrap();
/// let out = dot::to_dot(&g);
/// assert!(out.contains("graph"));
/// assert!(out.contains("taillabel"));
/// ```
#[must_use]
pub fn to_dot(graph: &PortLabeledGraph) -> String {
    let mut out = String::from("graph ports {\n  node [shape=circle];\n");
    for e in graph.edges() {
        writeln!(
            out,
            "  {} -- {} [taillabel=\"{}\", headlabel=\"{}\"];",
            e.u.index(),
            e.v.index(),
            e.port_at_u.index(),
            e.port_at_v.index()
        )
        .expect("writing to String cannot fail");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_lists_every_edge_once() {
        let g = generators::complete(4).unwrap();
        let out = to_dot(&g);
        assert_eq!(out.matches(" -- ").count(), 6);
    }

    #[test]
    fn dot_contains_port_labels() {
        let g = generators::oriented_ring(3).unwrap();
        let out = to_dot(&g);
        assert!(out.contains("taillabel=\"0\""));
        assert!(out.contains("headlabel=\"1\""));
    }
}
