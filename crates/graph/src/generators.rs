//! Generators for the graph families used throughout the paper and its
//! experiments.
//!
//! The lower bounds of §3 are proven on **oriented rings** (port 0 goes
//! clockwise at every node); [`oriented_ring`] builds exactly that labelling.
//! The algorithms of §2 work on arbitrary connected graphs, so we also
//! provide paths, stars, complete graphs, hypercubes, grids, tori, trees and
//! two random families. All randomized generators take an explicit RNG so
//! that every experiment in this repository is reproducible from a seed.

use crate::{GraphBuilder, GraphError, NodeId, Port, PortLabeledGraph};
use rand::seq::SliceRandom;
use rand::Rng;

fn invalid(reason: impl Into<String>) -> GraphError {
    GraphError::InvalidParameter {
        reason: reason.into(),
    }
}

/// Oriented ring on `n >= 3` nodes: at every node, port 0 leads clockwise
/// (to node `i+1 mod n`) and port 1 counter-clockwise.
///
/// This is the graph family on which the paper proves both lower bounds
/// (§3): "a ring is oriented if every edge has port labels 0 and 1 at the
/// two end-points".
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `n < 3` (a 2-ring would be a
/// multigraph, which the simple-graph model excludes).
///
/// # Examples
///
/// ```
/// use rendezvous_graph::{generators, NodeId, Port};
///
/// let g = generators::oriented_ring(4).unwrap();
/// // Following port 0 for n steps returns to the start.
/// let mut at = NodeId::new(0);
/// for _ in 0..4 {
///     at = g.neighbor(at, Port::new(0)).unwrap();
/// }
/// assert_eq!(at, NodeId::new(0));
/// ```
pub fn oriented_ring(n: usize) -> Result<PortLabeledGraph, GraphError> {
    if n < 3 {
        return Err(invalid(format!("oriented ring needs n >= 3, got {n}")));
    }
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        let j = (i + 1) % n;
        // port 0 at i (clockwise out), port 1 at j (counter-clockwise back).
        b.add_edge_with_ports(NodeId::new(i), Port::new(0), NodeId::new(j), Port::new(1))?;
    }
    b.build()
}

/// Ring on `n >= 3` nodes with uniformly random port assignments at every
/// node (an *unoriented* ring: agents cannot rely on a consistent notion of
/// clockwise).
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `n < 3`.
pub fn scrambled_ring<R: Rng + ?Sized>(
    n: usize,
    rng: &mut R,
) -> Result<PortLabeledGraph, GraphError> {
    if n < 3 {
        return Err(invalid(format!("scrambled ring needs n >= 3, got {n}")));
    }
    // For each node, decide which of its two incident ring edges gets port 0.
    let flips: Vec<bool> = (0..n).map(|_| rng.random_bool(0.5)).collect();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        let j = (i + 1) % n;
        // Port at i for its clockwise edge; port at j for its ccw edge.
        let pi = Port::new(usize::from(flips[i]));
        let pj = Port::new(usize::from(!flips[j]));
        b.add_edge_with_ports(NodeId::new(i), pi, NodeId::new(j), pj)?;
    }
    b.build()
}

/// Path on `n >= 1` nodes `0 - 1 - … - n-1`, ports assigned low-to-high.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `n == 0`.
pub fn path(n: usize) -> Result<PortLabeledGraph, GraphError> {
    if n == 0 {
        return Err(invalid("path needs n >= 1"));
    }
    let mut b = GraphBuilder::new(n);
    for i in 0..n.saturating_sub(1) {
        b.add_edge(NodeId::new(i), NodeId::new(i + 1))?;
    }
    b.build()
}

/// Star with `leaves >= 1` leaves: node 0 is the center. The star is the
/// tree of diameter 2 mentioned in §1.2, for which `E = 2n - 3` is the
/// optimal exploration time.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `leaves == 0`.
pub fn star(leaves: usize) -> Result<PortLabeledGraph, GraphError> {
    if leaves == 0 {
        return Err(invalid("star needs at least one leaf"));
    }
    let mut b = GraphBuilder::new(leaves + 1);
    for leaf in 1..=leaves {
        b.add_edge(NodeId::new(0), NodeId::new(leaf))?;
    }
    b.build()
}

/// Complete graph on `n >= 2` nodes.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `n < 2`.
pub fn complete(n: usize) -> Result<PortLabeledGraph, GraphError> {
    if n < 2 {
        return Err(invalid(format!("complete graph needs n >= 2, got {n}")));
    }
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(NodeId::new(i), NodeId::new(j))?;
        }
    }
    b.build()
}

/// Hypercube of dimension `d >= 1` (`2^d` nodes). Port `i` at every node
/// flips bit `i` of the node index — the canonical dimension-labelled
/// hypercube, which is `d`-regular and vertex-transitive.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `d == 0` or `d > 20`.
pub fn hypercube(d: usize) -> Result<PortLabeledGraph, GraphError> {
    if d == 0 || d > 20 {
        return Err(invalid(format!(
            "hypercube dimension must be 1..=20, got {d}"
        )));
    }
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if v < u {
                b.add_edge_with_ports(
                    NodeId::new(v),
                    Port::new(bit),
                    NodeId::new(u),
                    Port::new(bit),
                )?;
            }
        }
    }
    b.build()
}

/// `w × h` grid (no wrap-around), `w, h >= 1`, `w * h >= 2`.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] for degenerate dimensions.
pub fn grid(w: usize, h: usize) -> Result<PortLabeledGraph, GraphError> {
    if w == 0 || h == 0 || w * h < 2 {
        return Err(invalid(format!(
            "grid needs w,h >= 1 and w*h >= 2, got {w}x{h}"
        )));
    }
    let id = |x: usize, y: usize| NodeId::new(y * w + x);
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(id(x, y), id(x + 1, y))?;
            }
            if y + 1 < h {
                b.add_edge(id(x, y), id(x, y + 1))?;
            }
        }
    }
    b.build()
}

/// `w × h` torus (grid with wrap-around), `w, h >= 3`. 4-regular.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if either dimension is below 3 (smaller
/// tori have parallel edges).
pub fn torus(w: usize, h: usize) -> Result<PortLabeledGraph, GraphError> {
    if w < 3 || h < 3 {
        return Err(invalid(format!("torus needs w,h >= 3, got {w}x{h}")));
    }
    let id = |x: usize, y: usize| NodeId::new(y * w + x);
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            // ports: 0 = east, 1 = west, 2 = south, 3 = north
            b.add_edge_with_ports(id(x, y), Port::new(0), id((x + 1) % w, y), Port::new(1))?;
            b.add_edge_with_ports(id(x, y), Port::new(2), id(x, (y + 1) % h), Port::new(3))?;
        }
    }
    b.build()
}

/// Complete binary tree of the given `depth` (`depth = 0` is a single node;
/// the tree has `2^(depth+1) - 1` nodes).
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `depth > 20`.
pub fn balanced_binary_tree(depth: usize) -> Result<PortLabeledGraph, GraphError> {
    if depth > 20 {
        return Err(invalid(format!(
            "binary tree depth must be <= 20, got {depth}"
        )));
    }
    let n = (1usize << (depth + 1)) - 1;
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let parent = (v - 1) / 2;
        b.add_edge(NodeId::new(parent), NodeId::new(v))?;
    }
    b.build()
}

/// Uniformly random labelled tree on `n >= 1` nodes via a random Prüfer
/// sequence, with ports assigned in edge-insertion order.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `n == 0`.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Result<PortLabeledGraph, GraphError> {
    if n == 0 {
        return Err(invalid("random tree needs n >= 1"));
    }
    let mut b = GraphBuilder::new(n);
    if n >= 2 {
        if n == 2 {
            b.add_edge(NodeId::new(0), NodeId::new(1))?;
        } else {
            let prufer: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
            let mut degree = vec![1usize; n];
            for &v in &prufer {
                degree[v] += 1;
            }
            let mut edges = Vec::with_capacity(n - 1);
            // classic Prüfer decoding with a scan pointer + leaf variable
            let mut ptr = 0;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            let mut leaf = ptr;
            for &v in &prufer {
                edges.push((leaf, v));
                degree[v] -= 1;
                if degree[v] == 1 && v < ptr {
                    leaf = v;
                } else {
                    ptr += 1;
                    while degree[ptr] != 1 {
                        ptr += 1;
                    }
                    leaf = ptr;
                }
            }
            edges.push((leaf, n - 1));
            for (u, v) in edges {
                b.add_edge(NodeId::new(u), NodeId::new(v))?;
            }
        }
    }
    b.build()
}

/// Connected Erdős–Rényi graph: a uniformly random spanning tree (to force
/// connectivity) unioned with each remaining pair independently with
/// probability `p`. Ports are assigned in insertion order.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `n == 0` or `p` is not in `[0, 1]`.
pub fn erdos_renyi_connected<R: Rng + ?Sized>(
    n: usize,
    // analyze: allow(d3) — coin threshold for a seeded RNG: same seed + same p bits
    // give the same graph on every platform; no arithmetic is done on it
    p: f64,
    rng: &mut R,
) -> Result<PortLabeledGraph, GraphError> {
    if n == 0 {
        return Err(invalid("erdos_renyi_connected needs n >= 1"));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(invalid(format!(
            "edge probability must be in [0,1], got {p}"
        )));
    }
    let mut b = GraphBuilder::new(n);
    // random spanning tree: random permutation, attach each node to a
    // uniformly random earlier node.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut present = vec![vec![false; n]; n];
    for i in 1..n {
        let u = order[i];
        let v = order[rng.random_range(0..i)];
        b.add_edge(NodeId::new(u), NodeId::new(v))?;
        present[u][v] = true;
        present[v][u] = true;
    }
    #[allow(clippy::needless_range_loop)] // u, v index two parallel structures
    for u in 0..n {
        for v in (u + 1)..n {
            if !present[u][v] && rng.random_bool(p) {
                b.add_edge(NodeId::new(u), NodeId::new(v))?;
            }
        }
    }
    b.build()
}

/// Re-labels the ports of `graph` with independent uniformly random
/// permutations at every node, preserving the topology.
///
/// In the model, port numberings are **adversarial**: an algorithm may not
/// rely on any particular assignment (beyond what a structure like an
/// oriented ring explicitly promises). This utility lets tests and
/// experiments realize that adversary on any generated graph.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use rendezvous_graph::{analysis, generators};
///
/// let g = generators::grid(3, 3).unwrap();
/// let mut rng = StdRng::seed_from_u64(7);
/// let h = generators::permute_ports(&g, &mut rng).unwrap();
/// assert_eq!(h.edge_count(), g.edge_count());
/// assert!(analysis::is_connected(&h));
/// ```
///
/// # Errors
///
/// Never fails for valid input graphs; the `Result` mirrors the builder's
/// signature for uniformity.
pub fn permute_ports<R: Rng + ?Sized>(
    graph: &PortLabeledGraph,
    rng: &mut R,
) -> Result<PortLabeledGraph, GraphError> {
    let n = graph.node_count();
    // perm[v][old_port] = new port index at v
    let perms: Vec<Vec<usize>> = (0..n)
        .map(|v| {
            let mut p: Vec<usize> = (0..graph.degree(NodeId::new(v))).collect();
            p.shuffle(rng);
            p
        })
        .collect();
    let mut b = GraphBuilder::new(n);
    for e in graph.edges() {
        b.add_edge_with_ports(
            e.u,
            Port::new(perms[e.u.index()][e.port_at_u.index()]),
            e.v,
            Port::new(perms[e.v.index()][e.port_at_v.index()]),
        )?;
    }
    b.build()
}

/// Wheel on `spokes + 1` nodes (`spokes >= 3`): node 0 is the hub, nodes
/// `1..=spokes` form a cycle, every rim node connects to the hub. The
/// high-degree hub next to degree-3 rim nodes stresses port handling.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `spokes < 3`.
pub fn wheel(spokes: usize) -> Result<PortLabeledGraph, GraphError> {
    if spokes < 3 {
        return Err(invalid(format!("wheel needs >= 3 spokes, got {spokes}")));
    }
    let mut b = GraphBuilder::new(spokes + 1);
    for i in 1..=spokes {
        b.add_edge(NodeId::new(0), NodeId::new(i))?;
    }
    for i in 1..=spokes {
        let j = if i == spokes { 1 } else { i + 1 };
        b.add_edge(NodeId::new(i), NodeId::new(j))?;
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}` (`a, b >= 1`): parts `0..a` and
/// `a..a+b`.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if either part is empty.
pub fn complete_bipartite(a: usize, b: usize) -> Result<PortLabeledGraph, GraphError> {
    if a == 0 || b == 0 {
        return Err(invalid(format!("K_{{a,b}} needs a,b >= 1, got {a},{b}")));
    }
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            builder.add_edge(NodeId::new(u), NodeId::new(v))?;
        }
    }
    builder.build()
}

/// Lollipop: a complete graph on `clique >= 3` nodes with a path of
/// `tail >= 1` nodes attached to node 0. A classic stress case for
/// walk-based exploration (the walker keeps getting pulled back into the
/// clique).
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] for degenerate sizes.
pub fn lollipop(clique: usize, tail: usize) -> Result<PortLabeledGraph, GraphError> {
    if clique < 3 || tail == 0 {
        return Err(invalid(format!(
            "lollipop needs clique >= 3 and tail >= 1, got {clique},{tail}"
        )));
    }
    let mut b = GraphBuilder::new(clique + tail);
    for i in 0..clique {
        for j in (i + 1)..clique {
            b.add_edge(NodeId::new(i), NodeId::new(j))?;
        }
    }
    for t in 0..tail {
        let prev = if t == 0 { 0 } else { clique + t - 1 };
        b.add_edge(NodeId::new(prev), NodeId::new(clique + t))?;
    }
    b.build()
}

/// Barbell: two complete graphs on `clique >= 3` nodes joined by a path of
/// `bridge >= 1` intermediate nodes.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] for degenerate sizes.
pub fn barbell(clique: usize, bridge: usize) -> Result<PortLabeledGraph, GraphError> {
    if clique < 3 || bridge == 0 {
        return Err(invalid(format!(
            "barbell needs clique >= 3 and bridge >= 1, got {clique},{bridge}"
        )));
    }
    let n = 2 * clique + bridge;
    let mut b = GraphBuilder::new(n);
    for offset in [0, clique + bridge] {
        for i in 0..clique {
            for j in (i + 1)..clique {
                b.add_edge(NodeId::new(offset + i), NodeId::new(offset + j))?;
            }
        }
    }
    // path: node 0 of the left clique -> bridge nodes -> node 0 of the right
    let mut prev = 0usize;
    for t in 0..bridge {
        b.add_edge(NodeId::new(prev), NodeId::new(clique + t))?;
        prev = clique + t;
    }
    b.add_edge(NodeId::new(prev), NodeId::new(clique + bridge))?;
    b.build()
}

/// Random connected `d`-regular simple graph via the configuration (pairing)
/// model with rejection. Requires `n * d` even, `d < n`, and `d >= 2` for
/// connectivity to be achievable.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if the parameter combination is
/// infeasible, or if no connected simple pairing was found within an
/// internal retry budget (extremely unlikely for sensible parameters).
pub fn random_regular_connected<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    rng: &mut R,
) -> Result<PortLabeledGraph, GraphError> {
    if d >= n || d < 2 || !(n * d).is_multiple_of(2) {
        return Err(invalid(format!(
            "random regular graph needs 2 <= d < n and n*d even, got n={n}, d={d}"
        )));
    }
    const RETRIES: usize = 5_000;
    for _ in 0..RETRIES {
        let mut stubs: Vec<usize> = (0..n * d).map(|s| s / d).collect();
        stubs.shuffle(rng);
        let mut b = GraphBuilder::new(n);
        let mut ok = true;
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || b.add_edge(NodeId::new(u), NodeId::new(v)).is_err() {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        let g = b.build()?;
        if crate::analysis::is_connected(&g) {
            return Ok(g);
        }
    }
    Err(invalid(format!(
        "could not sample a connected simple {d}-regular graph on {n} nodes"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn oriented_ring_ports_are_oriented() {
        let g = oriented_ring(7).unwrap();
        assert!(g.is_regular());
        for v in g.nodes() {
            let cw = g.traverse(v, Port::new(0)).unwrap();
            assert_eq!(cw.target.index(), (v.index() + 1) % 7);
            assert_eq!(cw.entry_port, Port::new(1));
        }
    }

    #[test]
    fn oriented_ring_rejects_small_n() {
        assert!(oriented_ring(2).is_err());
        assert!(oriented_ring(0).is_err());
    }

    #[test]
    fn scrambled_ring_is_a_ring() {
        let g = scrambled_ring(9, &mut rng()).unwrap();
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.edge_count(), 9);
        assert!(g.is_regular());
        assert!(analysis::is_connected(&g));
    }

    #[test]
    fn path_and_star_shapes() {
        let p = path(5).unwrap();
        assert_eq!(p.edge_count(), 4);
        assert_eq!(p.degree(NodeId::new(0)), 1);
        assert_eq!(p.degree(NodeId::new(2)), 2);

        let s = star(6).unwrap();
        assert_eq!(s.node_count(), 7);
        assert_eq!(s.degree(NodeId::new(0)), 6);
        for leaf in 1..=6 {
            assert_eq!(s.degree(NodeId::new(leaf)), 1);
        }
    }

    #[test]
    fn single_node_path() {
        let p = path(1).unwrap();
        assert_eq!(p.node_count(), 1);
        assert_eq!(p.edge_count(), 0);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(6).unwrap();
        assert_eq!(g.edge_count(), 15);
        assert!(g.is_regular());
    }

    #[test]
    fn hypercube_ports_flip_bits() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.node_count(), 16);
        assert!(g.is_regular());
        for v in g.nodes() {
            for bit in 0..4 {
                let t = g.traverse(v, Port::new(bit)).unwrap();
                assert_eq!(t.target.index(), v.index() ^ (1 << bit));
                assert_eq!(t.entry_port, Port::new(bit));
            }
        }
    }

    #[test]
    fn grid_and_torus_shapes() {
        let g = grid(4, 3).unwrap();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 4 * 2 + 3 * 3); // 8 vertical rows? (w-1)*h + w*(h-1) = 3*3+4*2 = 17
        assert!(analysis::is_connected(&g));

        let t = torus(4, 3).unwrap();
        assert_eq!(t.node_count(), 12);
        assert_eq!(t.edge_count(), 24);
        assert!(t.is_regular());
        assert_eq!(t.max_degree(), 4);
    }

    #[test]
    fn torus_rejects_small_dims() {
        assert!(torus(2, 5).is_err());
    }

    #[test]
    fn binary_tree_shape() {
        let t = balanced_binary_tree(3).unwrap();
        assert_eq!(t.node_count(), 15);
        assert_eq!(t.edge_count(), 14);
        assert!(analysis::is_connected(&t));
    }

    #[test]
    fn random_tree_is_tree() {
        for n in [1usize, 2, 3, 10, 40] {
            let t = random_tree(n, &mut rng()).unwrap();
            assert_eq!(t.node_count(), n);
            assert_eq!(t.edge_count(), n.saturating_sub(1));
            assert!(analysis::is_connected(&t));
        }
    }

    #[test]
    fn erdos_renyi_is_connected() {
        for p in [0.0, 0.1, 0.5, 1.0] {
            let g = erdos_renyi_connected(20, p, &mut rng()).unwrap();
            assert!(analysis::is_connected(&g));
            assert!(g.edge_count() >= 19);
        }
    }

    #[test]
    fn erdos_renyi_p_one_is_complete() {
        let g = erdos_renyi_connected(8, 1.0, &mut rng()).unwrap();
        assert_eq!(g.edge_count(), 28);
    }

    #[test]
    fn random_regular_is_regular_and_connected() {
        let g = random_regular_connected(12, 3, &mut rng()).unwrap();
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 3);
        assert!(analysis::is_connected(&g));
    }

    #[test]
    fn random_regular_rejects_odd_product() {
        assert!(random_regular_connected(5, 3, &mut rng()).is_err());
    }

    #[test]
    fn permute_ports_preserves_topology() {
        let g = grid(4, 3).unwrap();
        let h = permute_ports(&g, &mut rng()).unwrap();
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edge_count(), g.edge_count());
        assert!(h.check_invariants().is_ok());
        // same neighbourhoods, possibly different ports
        for v in g.nodes() {
            let mut a: Vec<_> = g.neighbors(v).collect();
            let mut b: Vec<_> = h.neighbors(v).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        assert_eq!(analysis::diameter(&g), analysis::diameter(&h));
    }

    #[test]
    fn permute_ports_usually_changes_the_labelling() {
        let g = complete(6).unwrap();
        let h = permute_ports(&g, &mut rng()).unwrap();
        assert_ne!(
            g, h,
            "a K6 relabelling is different with overwhelming probability"
        );
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(5).unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.degree(NodeId::new(0)), 5);
        assert_eq!(g.degree(NodeId::new(3)), 3);
        assert!(analysis::is_connected(&g));
        assert!(wheel(2).is_err());
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4).unwrap();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert!(analysis::is_bipartite(&g));
        assert!(complete_bipartite(0, 4).is_err());
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(4, 3).unwrap();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6 + 3);
        assert!(analysis::is_connected(&g));
        // tail end is degree 1
        assert_eq!(g.degree(NodeId::new(6)), 1);
        assert!(lollipop(2, 1).is_err());
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(3, 2).unwrap();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 3 + 3 + 3);
        assert!(analysis::is_connected(&g));
        assert_eq!(analysis::diameter(&g), Some(5));
        assert!(barbell(3, 0).is_err());
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let a = erdos_renyi_connected(15, 0.3, &mut StdRng::seed_from_u64(7)).unwrap();
        let b = erdos_renyi_connected(15, 0.3, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }
}
