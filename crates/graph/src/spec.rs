//! Serializable recipes for seeded graph instances — the topology axis of
//! the adversary.
//!
//! The paper's guarantees hold on *arbitrary* connected graphs, so a
//! thorough reproduction must sweep the graph itself, not just labels,
//! starts and delays. A [`GraphSpec`] is a value that *names* one graph —
//! family, size parameters and (for random families) an RNG seed — and
//! builds it deterministically: the same spec always yields the same
//! port-labelled graph, byte for byte. Specs serialize as JSON, so
//! topology sweeps can be enumerated, sharded across processes, and their
//! worst-case witnesses reported in a replayable form.
//!
//! Each spec also carries an exploration *recipe* ([`ExplorerRecipe`]):
//! which `EXPLORE` procedure (and hence which bound `E`) a rendezvous
//! algorithm should use on the built graph. The graph crate cannot build
//! explorers (they live a layer up), so the recipe is a tag resolved by
//! `rendezvous-explore`.
//!
//! # Examples
//!
//! ```
//! use rendezvous_graph::{GraphSpec, SeededSpec};
//!
//! let spec = GraphSpec::Tree(SeededSpec { n: 9, seed: 42 });
//! let a = spec.build().unwrap();
//! let b = spec.build().unwrap();
//! assert_eq!(a, b, "a spec is a pure function of its parameters");
//! assert_eq!(spec.family(), "tree");
//! ```

use crate::{generators, GraphError, PortLabeledGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Size plus RNG seed: the parameters of the one-dimensional random
/// families (scrambled rings, random trees).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SeededSpec {
    /// Number of nodes.
    pub n: usize,
    /// RNG seed; equal seeds give byte-identical graphs.
    pub seed: u64,
}

/// Parameters of a connected Erdős–Rényi instance.
///
/// The edge probability is carried in **permille** (parts per thousand)
/// rather than as an `f64` so that specs stay `Eq`/`Hash` and their JSON
/// form round-trips exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ErdosRenyiSpec {
    /// Number of nodes.
    pub n: usize,
    /// Edge probability in permille (`300` means `p = 0.3`).
    pub edge_permille: u32,
    /// RNG seed.
    pub seed: u64,
}

/// Parameters of a random connected `d`-regular instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegularSpec {
    /// Number of nodes (`n * d` must be even).
    pub n: usize,
    /// Degree.
    pub d: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Parameters of a deterministic ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RingSpec {
    /// Number of nodes.
    pub n: usize,
}

/// Parameters of a deterministic torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TorusSpec {
    /// Width (`>= 3`).
    pub w: usize,
    /// Height (`>= 3`).
    pub h: usize,
}

/// A port-permutation wrapper: builds the inner spec, then re-labels every
/// node's ports with a seeded uniformly random permutation
/// ([`generators::permute_ports`]). This realizes the model's adversarial
/// port numbering on any base family.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PermutedSpec {
    /// The spec whose graph gets its ports scrambled.
    pub inner: Box<GraphSpec>,
    /// RNG seed of the permutation.
    pub seed: u64,
}

/// Which exploration procedure a built graph should be driven with — the
/// `E`-bound recipe of a [`GraphSpec`], resolved into an actual explorer
/// by `rendezvous-explore`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExplorerRecipe {
    /// The optimal oriented-ring walk (`E = n − 1`); only sound when the
    /// ring's port promise actually holds.
    OrientedRing,
    /// Map-based DFS with backtracking (`E ≤ 2n − 3`, exact per graph);
    /// sound on every connected graph.
    DfsMap,
}

/// A named, seeded, serializable graph instance: family + parameters +
/// seed, with a deterministic [`GraphSpec::build`] and an explorer recipe.
///
/// Two specs compare equal iff they build identical graphs the same way,
/// so a spec is a valid cache key and a valid cross-process witness.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphSpec {
    /// Oriented ring ([`generators::oriented_ring`]).
    Ring(RingSpec),
    /// Ring with seeded random port flips ([`generators::scrambled_ring`]).
    ScrambledRing(SeededSpec),
    /// Uniformly random labelled tree ([`generators::random_tree`]).
    Tree(SeededSpec),
    /// Connected Erdős–Rényi graph ([`generators::erdos_renyi_connected`]).
    ErdosRenyi(ErdosRenyiSpec),
    /// Random connected regular graph ([`generators::random_regular_connected`]).
    Regular(RegularSpec),
    /// Torus ([`generators::torus`]).
    Torus(TorusSpec),
    /// Any spec with seeded adversarial port re-labelling on top
    /// ([`generators::permute_ports`]).
    Permuted(PermutedSpec),
}

impl GraphSpec {
    /// Wraps `inner` in a seeded port permutation.
    #[must_use]
    pub fn permuted(inner: GraphSpec, seed: u64) -> GraphSpec {
        GraphSpec::Permuted(PermutedSpec {
            inner: Box::new(inner),
            seed,
        })
    }

    /// Builds the graph this spec names. Deterministic: equal specs build
    /// byte-identical graphs (asserted by the property tests in
    /// `tests/proptests.rs`), which is what makes specs shardable across
    /// processes.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] for degenerate parameters, exactly
    /// as the underlying generator would report.
    pub fn build(&self) -> Result<PortLabeledGraph, GraphError> {
        match self {
            GraphSpec::Ring(s) => generators::oriented_ring(s.n),
            GraphSpec::ScrambledRing(s) => {
                generators::scrambled_ring(s.n, &mut StdRng::seed_from_u64(s.seed))
            }
            GraphSpec::Tree(s) => generators::random_tree(s.n, &mut StdRng::seed_from_u64(s.seed)),
            GraphSpec::ErdosRenyi(s) => {
                if s.edge_permille > 1000 {
                    return Err(GraphError::InvalidParameter {
                        reason: format!("edge_permille must be <= 1000, got {}", s.edge_permille),
                    });
                }
                generators::erdos_renyi_connected(
                    s.n,
                    // analyze: allow(d3) — edge probability decoded from the integer
                    // permille spec; consumed only as a per-edge coin threshold
                    f64::from(s.edge_permille) / 1000.0,
                    &mut StdRng::seed_from_u64(s.seed),
                )
            }
            GraphSpec::Regular(s) => {
                generators::random_regular_connected(s.n, s.d, &mut StdRng::seed_from_u64(s.seed))
            }
            GraphSpec::Torus(s) => generators::torus(s.w, s.h),
            GraphSpec::Permuted(s) => {
                let base = s.inner.build()?;
                generators::permute_ports(&base, &mut StdRng::seed_from_u64(s.seed))
            }
        }
    }

    /// The family name used to group sweep statistics. Permuted specs
    /// prefix the inner family (`"permuted-ring"`), since scrambling ports
    /// changes what an algorithm may assume about the instance.
    #[must_use]
    pub fn family(&self) -> String {
        match self {
            GraphSpec::Ring(_) => "ring".into(),
            GraphSpec::ScrambledRing(_) => "scrambled-ring".into(),
            GraphSpec::Tree(_) => "tree".into(),
            GraphSpec::ErdosRenyi(_) => "erdos-renyi".into(),
            GraphSpec::Regular(_) => "regular".into(),
            GraphSpec::Torus(_) => "torus".into(),
            GraphSpec::Permuted(s) => format!("permuted-{}", s.inner.family()),
        }
    }

    /// The exploration recipe sound for this spec's graphs.
    ///
    /// Only a plain [`GraphSpec::Ring`] may use the oriented-ring walk —
    /// every other family (including a permuted ring, whose port promise
    /// the permutation destroys) falls back to map-DFS, which is sound on
    /// any connected graph.
    #[must_use]
    pub fn recipe(&self) -> ExplorerRecipe {
        match self {
            GraphSpec::Ring(_) => ExplorerRecipe::OrientedRing,
            _ => ExplorerRecipe::DfsMap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    fn all_kinds() -> Vec<GraphSpec> {
        vec![
            GraphSpec::Ring(RingSpec { n: 7 }),
            GraphSpec::ScrambledRing(SeededSpec { n: 8, seed: 3 }),
            GraphSpec::Tree(SeededSpec { n: 9, seed: 4 }),
            GraphSpec::ErdosRenyi(ErdosRenyiSpec {
                n: 9,
                edge_permille: 300,
                seed: 5,
            }),
            GraphSpec::Regular(RegularSpec {
                n: 10,
                d: 3,
                seed: 6,
            }),
            GraphSpec::Torus(TorusSpec { w: 3, h: 4 }),
            GraphSpec::permuted(GraphSpec::Torus(TorusSpec { w: 3, h: 3 }), 7),
        ]
    }

    #[test]
    fn every_kind_builds_a_connected_graph_deterministically() {
        for spec in all_kinds() {
            let a = spec.build().unwrap_or_else(|e| panic!("{spec:?}: {e}"));
            let b = spec.build().unwrap();
            assert_eq!(a, b, "{spec:?} must be deterministic");
            assert!(analysis::is_connected(&a), "{spec:?} must be connected");
            assert!(a.check_invariants().is_ok());
        }
    }

    #[test]
    fn families_and_recipes() {
        let names: Vec<String> = all_kinds().iter().map(GraphSpec::family).collect();
        assert_eq!(
            names,
            [
                "ring",
                "scrambled-ring",
                "tree",
                "erdos-renyi",
                "regular",
                "torus",
                "permuted-torus"
            ]
        );
        for spec in all_kinds() {
            let recipe = spec.recipe();
            match spec {
                GraphSpec::Ring(_) => assert_eq!(recipe, ExplorerRecipe::OrientedRing),
                _ => assert_eq!(recipe, ExplorerRecipe::DfsMap),
            }
        }
        // A permuted ring must NOT claim the oriented-ring recipe.
        let permuted_ring = GraphSpec::permuted(GraphSpec::Ring(RingSpec { n: 6 }), 1);
        assert_eq!(permuted_ring.recipe(), ExplorerRecipe::DfsMap);
        assert_eq!(permuted_ring.family(), "permuted-ring");
    }

    #[test]
    fn different_seeds_usually_differ() {
        let a = GraphSpec::ScrambledRing(SeededSpec { n: 12, seed: 1 })
            .build()
            .unwrap();
        let b = GraphSpec::ScrambledRing(SeededSpec { n: 12, seed: 2 })
            .build()
            .unwrap();
        assert_ne!(a, b, "seeded variation must actually vary");
    }

    #[test]
    fn spec_json_round_trip() {
        for spec in all_kinds() {
            let text = serde_json::to_string(&spec).unwrap();
            let back: GraphSpec = serde_json::from_str(&text).unwrap();
            assert_eq!(back, spec, "round trip through {text}");
        }
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        assert!(GraphSpec::Ring(RingSpec { n: 2 }).build().is_err());
        assert!(GraphSpec::Torus(TorusSpec { w: 2, h: 5 }).build().is_err());
        assert!(GraphSpec::Regular(RegularSpec {
            n: 5,
            d: 3,
            seed: 0
        })
        .build()
        .is_err());
        assert!(GraphSpec::ErdosRenyi(ErdosRenyiSpec {
            n: 5,
            edge_permille: 1001,
            seed: 0
        })
        .build()
        .is_err());
        // The wrapper propagates inner failures.
        assert!(GraphSpec::permuted(GraphSpec::Ring(RingSpec { n: 0 }), 9)
            .build()
            .is_err());
    }
}
