//! Incremental construction of [`PortLabeledGraph`]s.

use crate::graph::HalfEdge;
use crate::{GraphError, NodeId, Port, PortLabeledGraph};
use std::collections::BTreeMap;

/// Builder for [`PortLabeledGraph`] enforcing all structural invariants.
///
/// Two styles of edge insertion are supported and may be mixed:
///
/// * [`GraphBuilder::add_edge`] assigns the smallest free port number at each
///   endpoint automatically;
/// * [`GraphBuilder::add_edge_with_ports`] lets the caller pick the exact
///   port numbers (needed for oriented rings and other canonical labellings).
///
/// [`GraphBuilder::build`] verifies that the ports at every node form the
/// contiguous range `0..deg` and returns the immutable graph.
///
/// # Examples
///
/// ```
/// use rendezvous_graph::{GraphBuilder, NodeId, Port};
///
/// // A triangle with automatic port assignment.
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
/// b.add_edge(NodeId::new(1), NodeId::new(2)).unwrap();
/// b.add_edge(NodeId::new(2), NodeId::new(0)).unwrap();
/// let g = b.build().unwrap();
/// assert_eq!(g.edge_count(), 3);
/// assert!(g.is_regular());
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    /// ports[v] maps port index -> half edge; BTreeMap so that contiguity
    /// checking and deterministic iteration are easy.
    ports: Vec<BTreeMap<usize, HalfEdge>>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `node_count` isolated nodes.
    #[must_use]
    pub fn new(node_count: usize) -> Self {
        GraphBuilder {
            ports: vec![BTreeMap::new(); node_count],
        }
    }

    /// Number of nodes the final graph will have.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.ports.len()
    }

    /// Current degree (number of assigned ports) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.ports[node.index()].len()
    }

    fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if node.index() >= self.ports.len() {
            Err(GraphError::NodeOutOfRange {
                node,
                node_count: self.ports.len(),
            })
        } else {
            Ok(())
        }
    }

    fn check_new_edge(&self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.ports[u.index()].values().any(|h| h.target == v) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        Ok(())
    }

    /// Smallest port index not yet used at `node`.
    fn next_free_port(&self, node: NodeId) -> usize {
        let used = &self.ports[node.index()];
        (0..).find(|i| !used.contains_key(i)).expect("finite ports")
    }

    /// Adds the undirected edge `{u, v}` with automatically chosen ports
    /// (the smallest free index at each endpoint). Returns the chosen ports
    /// `(port at u, port at v)`.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfRange`] for unknown endpoints,
    /// * [`GraphError::SelfLoop`] if `u == v`,
    /// * [`GraphError::DuplicateEdge`] if the edge already exists.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(Port, Port), GraphError> {
        self.check_new_edge(u, v)?;
        let pu = Port::new(self.next_free_port(u));
        let pv = Port::new(self.next_free_port(v));
        self.insert(u, pu, v, pv);
        Ok((pu, pv))
    }

    /// Adds the undirected edge `{u, v}` with explicit port numbers.
    ///
    /// # Errors
    ///
    /// In addition to the conditions of [`GraphBuilder::add_edge`]:
    ///
    /// * [`GraphError::PortTaken`] if either port slot is already in use.
    pub fn add_edge_with_ports(
        &mut self,
        u: NodeId,
        port_at_u: Port,
        v: NodeId,
        port_at_v: Port,
    ) -> Result<(), GraphError> {
        self.check_new_edge(u, v)?;
        if self.ports[u.index()].contains_key(&port_at_u.index()) {
            return Err(GraphError::PortTaken {
                node: u,
                port: port_at_u,
            });
        }
        if self.ports[v.index()].contains_key(&port_at_v.index()) {
            return Err(GraphError::PortTaken {
                node: v,
                port: port_at_v,
            });
        }
        self.insert(u, port_at_u, v, port_at_v);
        Ok(())
    }

    fn insert(&mut self, u: NodeId, pu: Port, v: NodeId, pv: Port) {
        self.ports[u.index()].insert(
            pu.index(),
            HalfEdge {
                target: v,
                entry: pv,
            },
        );
        self.ports[v.index()].insert(
            pv.index(),
            HalfEdge {
                target: u,
                entry: pu,
            },
        );
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// * [`GraphError::Empty`] if the builder has no nodes,
    /// * [`GraphError::NonContiguousPorts`] if explicit port assignment left
    ///   a gap at some node (ports must be exactly `0..deg`).
    pub fn build(self) -> Result<PortLabeledGraph, GraphError> {
        if self.ports.is_empty() {
            return Err(GraphError::Empty);
        }
        let mut adj = Vec::with_capacity(self.ports.len());
        for (vi, slots) in self.ports.into_iter().enumerate() {
            let deg = slots.len();
            let mut list = Vec::with_capacity(deg);
            for (expected, (idx, half)) in slots.into_iter().enumerate() {
                if idx != expected {
                    return Err(GraphError::NonContiguousPorts {
                        node: NodeId::new(vi),
                        missing: Port::new(expected),
                    });
                }
                list.push(half);
            }
            adj.push(list);
        }
        Ok(PortLabeledGraph::from_adjacency(adj))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }
    fn p(i: usize) -> Port {
        Port::new(i)
    }

    #[test]
    fn auto_ports_are_smallest_free() {
        let mut b = GraphBuilder::new(3);
        let (p0, p1) = b.add_edge(n(0), n(1)).unwrap();
        assert_eq!((p0, p1), (p(0), p(0)));
        let (p0, _) = b.add_edge(n(0), n(2)).unwrap();
        assert_eq!(p0, p(1));
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(n(0), n(0)),
            Err(GraphError::SelfLoop { .. })
        ));
        b.add_edge(n(0), n(1)).unwrap();
        assert!(matches!(
            b.add_edge(n(1), n(0)),
            Err(GraphError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn rejects_taken_port() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_with_ports(n(0), p(0), n(1), p(0)).unwrap();
        assert!(matches!(
            b.add_edge_with_ports(n(0), p(0), n(2), p(0)),
            Err(GraphError::PortTaken { .. })
        ));
    }

    #[test]
    fn rejects_port_gaps_at_build() {
        let mut b = GraphBuilder::new(2);
        b.add_edge_with_ports(n(0), p(1), n(1), p(0)).unwrap();
        assert!(matches!(
            b.build(),
            Err(GraphError::NonContiguousPorts { missing, .. }) if missing == p(0)
        ));
    }

    #[test]
    fn rejects_empty_graph() {
        assert!(matches!(
            GraphBuilder::new(0).build(),
            Err(GraphError::Empty)
        ));
    }

    #[test]
    fn single_node_graph_is_fine() {
        let g = GraphBuilder::new(1).build().unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn mixed_explicit_and_auto_ports() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_with_ports(n(0), p(1), n(1), p(0)).unwrap();
        // auto fills the gap at node 0 with port 0
        let (p0, _) = b.add_edge(n(0), n(2)).unwrap();
        assert_eq!(p0, p(0));
        let g = b.build().unwrap();
        assert_eq!(g.degree(n(0)), 2);
    }
}
