//! Error type for graph construction and navigation.

use crate::{NodeId, Port};
use std::error::Error;
use std::fmt;

/// Errors produced while building or navigating a
/// [`PortLabeledGraph`](crate::PortLabeledGraph).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node index was outside `0..n`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// A port index was outside `0..deg(node)`.
    PortOutOfRange {
        /// Node at which the port was used.
        node: NodeId,
        /// The offending port.
        port: Port,
        /// Degree of the node.
        degree: usize,
    },
    /// An edge would connect a node to itself.
    SelfLoop {
        /// The node in question.
        node: NodeId,
    },
    /// An edge between the two nodes already exists (simple graphs only).
    DuplicateEdge {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// A port slot was assigned twice at the same node.
    PortTaken {
        /// Node at which the collision happened.
        node: NodeId,
        /// The port that was already in use.
        port: Port,
    },
    /// After building, the ports at a node were not the contiguous range
    /// `0..deg`.
    NonContiguousPorts {
        /// Node with the gap.
        node: NodeId,
        /// Smallest missing port index.
        missing: Port,
    },
    /// The operation requires a connected graph.
    NotConnected,
    /// The graph has no nodes.
    Empty,
    /// A generator was asked for an impossible parameter combination
    /// (for example a ring with fewer than three nodes).
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (graph has {node_count} nodes)")
            }
            GraphError::PortOutOfRange { node, port, degree } => {
                write!(f, "port {port} out of range at {node} (degree {degree})")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at {node} is not allowed"),
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge between {u} and {v} (simple graphs only)")
            }
            GraphError::PortTaken { node, port } => {
                write!(f, "port {port} at {node} is already assigned")
            }
            GraphError::NonContiguousPorts { node, missing } => {
                write!(
                    f,
                    "ports at {node} are not contiguous: {missing} is missing"
                )
            }
            GraphError::NotConnected => write!(f, "operation requires a connected graph"),
            GraphError::Empty => write!(f, "graph must have at least one node"),
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid generator parameter: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = GraphError::SelfLoop {
            node: NodeId::new(2),
        };
        assert!(e.to_string().contains("v2"));
        let e = GraphError::PortOutOfRange {
            node: NodeId::new(1),
            port: Port::new(4),
            degree: 2,
        };
        let s = e.to_string();
        assert!(s.contains("p4") && s.contains("v1") && s.contains('2'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(GraphError::NotConnected);
    }
}
