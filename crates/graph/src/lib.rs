//! Anonymous port-labelled graphs — the network substrate of
//! *Time Versus Cost Tradeoffs for Deterministic Rendezvous in Networks*
//! (Miller & Pelc, PODC 2014).
//!
//! # Model
//!
//! Networks are undirected, connected, **anonymous** graphs: agents cannot
//! perceive node identities. At each node `v`, the incident edges carry
//! distinct local **port numbers** `0..deg(v)`, and the numberings at the two
//! endpoints of an edge are unrelated. When an agent traverses an edge it
//! learns the degree of the node it reaches and the port through which it
//! entered — nothing else.
//!
//! This crate provides:
//!
//! * [`PortLabeledGraph`] — the immutable, invariant-checked graph,
//! * [`GraphBuilder`] — validated construction,
//! * [`generators`] — the families used by the paper's algorithms and lower
//!   bounds (oriented rings, stars, hypercubes, tori, random graphs, …),
//! * [`GraphSpec`] — serializable, seeded recipes for graph instances
//!   (family + parameters + seed), the enumerable topology axis of the
//!   adversarial sweeps,
//! * [`analysis`] — BFS/diameter/connectivity utilities for the simulator,
//! * [`HamiltonianCycle`] / [`EulerCircuit`] — exploration certificates that
//!   make the sharper bounds `E = n - 1` and `E = e - 1` of §1.2 available,
//! * [`dot`] — Graphviz export.
//!
//! # Examples
//!
//! ```
//! use rendezvous_graph::{analysis, generators, NodeId, Port};
//!
//! // The oriented ring: the graph family of the paper's lower bounds.
//! let g = generators::oriented_ring(8)?;
//! assert!(analysis::is_connected(&g));
//! assert_eq!(analysis::diameter(&g), Some(4));
//!
//! // Agents navigate purely by ports:
//! let hop = g.traverse(NodeId::new(0), Port::new(0))?;
//! assert_eq!(hop.target, NodeId::new(1));
//! # Ok::<(), rendezvous_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod builder;
mod certificate;
pub mod dot;
mod error;
pub mod generators;
#[allow(clippy::module_inception)]
mod graph;
mod ids;
mod spec;

pub use builder::GraphBuilder;
pub use certificate::{EulerCircuit, HamiltonianCycle};
pub use error::GraphError;
pub use graph::{Edge, PortLabeledGraph, Traversal};
pub use ids::{NodeId, Port};
pub use spec::{
    ErdosRenyiSpec, ExplorerRecipe, GraphSpec, PermutedSpec, RegularSpec, RingSpec, SeededSpec,
    TorusSpec,
};
