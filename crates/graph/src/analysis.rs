//! Structural analysis: connectivity, distances, diameter, bipartiteness.
//!
//! These are simulator-side utilities (they use [`NodeId`]s freely); agents
//! in the model never get to call them.

use crate::{NodeId, PortLabeledGraph};
use std::collections::VecDeque;

/// Breadth-first distances from `source`; `None` for unreachable nodes.
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use rendezvous_graph::{analysis, generators, NodeId};
///
/// let g = generators::path(4).unwrap();
/// let d = analysis::bfs_distances(&g, NodeId::new(0));
/// assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
/// ```
#[must_use]
pub fn bfs_distances(graph: &PortLabeledGraph, source: NodeId) -> Vec<Option<usize>> {
    assert!(graph.contains(source), "source out of range");
    let mut dist = vec![None; graph.node_count()];
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()].expect("enqueued nodes have distances");
        for u in graph.neighbors(v) {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(dv + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Hop distance between two nodes, if connected.
///
/// # Panics
///
/// Panics if either node is out of range.
#[must_use]
pub fn distance(graph: &PortLabeledGraph, a: NodeId, b: NodeId) -> Option<usize> {
    assert!(graph.contains(b), "target out of range");
    bfs_distances(graph, a)[b.index()]
}

/// Returns `true` if the graph is connected. Single-node graphs are
/// connected.
#[must_use]
pub fn is_connected(graph: &PortLabeledGraph) -> bool {
    bfs_distances(graph, NodeId::new(0))
        .iter()
        .all(Option::is_some)
}

/// Eccentricity of `v` (greatest distance to any node), or `None` if the
/// graph is disconnected.
#[must_use]
pub fn eccentricity(graph: &PortLabeledGraph, v: NodeId) -> Option<usize> {
    bfs_distances(graph, v)
        .into_iter()
        .try_fold(0usize, |acc, d| d.map(|d| acc.max(d)))
}

/// Diameter of the graph, or `None` if disconnected.
///
/// Runs a BFS from every node (`O(n · e)`); fine at the laptop scales used
/// by the experiments.
#[must_use]
pub fn diameter(graph: &PortLabeledGraph) -> Option<usize> {
    graph
        .nodes()
        .map(|v| eccentricity(graph, v))
        .try_fold(0usize, |acc, e| e.map(|e| acc.max(e)))
}

/// Returns `true` if the graph is bipartite (2-colourable).
#[must_use]
pub fn is_bipartite(graph: &PortLabeledGraph) -> bool {
    let n = graph.node_count();
    let mut colour: Vec<Option<bool>> = vec![None; n];
    for start in graph.nodes() {
        if colour[start.index()].is_some() {
            continue;
        }
        colour[start.index()] = Some(false);
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            let cv = colour[v.index()].expect("enqueued nodes are coloured");
            for u in graph.neighbors(v) {
                match colour[u.index()] {
                    None => {
                        colour[u.index()] = Some(!cv);
                        queue.push_back(u);
                    }
                    Some(cu) if cu == cv => return false,
                    Some(_) => {}
                }
            }
        }
    }
    true
}

/// Degree histogram: `histogram[d]` = number of nodes of degree `d`.
#[must_use]
pub fn degree_histogram(graph: &PortLabeledGraph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for v in graph.nodes() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ring_diameter_is_half() {
        let g = generators::oriented_ring(10).unwrap();
        assert_eq!(diameter(&g), Some(5));
        let g = generators::oriented_ring(11).unwrap();
        assert_eq!(diameter(&g), Some(5));
    }

    #[test]
    fn star_diameter_is_two() {
        let g = generators::star(7).unwrap();
        assert_eq!(diameter(&g), Some(2));
        assert_eq!(eccentricity(&g, NodeId::new(0)), Some(1));
    }

    #[test]
    fn distances_on_torus() {
        let g = generators::torus(4, 4).unwrap();
        // opposite corner: 2 + 2 hops via wrap-around
        assert_eq!(distance(&g, NodeId::new(0), NodeId::new(10)), Some(4));
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&generators::path(1).unwrap()));
        assert!(is_connected(&generators::complete(4).unwrap()));
        // two isolated nodes
        let g = crate::GraphBuilder::new(2).build().unwrap();
        assert!(!is_connected(&g));
        assert_eq!(diameter(&g), None);
        assert_eq!(eccentricity(&g, NodeId::new(0)), None);
    }

    #[test]
    fn bipartiteness() {
        assert!(is_bipartite(&generators::oriented_ring(8).unwrap()));
        assert!(!is_bipartite(&generators::oriented_ring(9).unwrap()));
        assert!(is_bipartite(&generators::hypercube(3).unwrap()));
        assert!(is_bipartite(&generators::balanced_binary_tree(4).unwrap()));
        assert!(!is_bipartite(&generators::complete(3).unwrap()));
    }

    #[test]
    fn degree_histogram_counts() {
        let g = generators::star(5).unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h[1], 5);
        assert_eq!(h[5], 1);
    }
}
