//! The anonymous port-labelled graph at the heart of the model.

use crate::{GraphError, NodeId, Port};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One directed half of an undirected edge: leaving some node through a port
/// lands you at `target`, entering it through `entry`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct HalfEdge {
    pub(crate) target: NodeId,
    pub(crate) entry: Port,
}

/// Result of traversing one edge: where you arrive and through which port.
///
/// This is exactly what an agent perceives when it moves: "when an agent
/// enters a node, it learns the node's degree and the port of entry".
/// The degree is available via [`PortLabeledGraph::degree`] on `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Traversal {
    /// The node reached by the move.
    pub target: NodeId,
    /// The port at `target` through which the agent arrived.
    pub entry_port: Port,
}

/// An undirected edge described from both endpoints, with `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Port at `u` leading to `v`.
    pub port_at_u: Port,
    /// Larger endpoint.
    pub v: NodeId,
    /// Port at `v` leading to `u`.
    pub port_at_v: Port,
}

/// An undirected, simple, anonymous graph whose edge endpoints carry local
/// port numbers.
///
/// This is the network model of Miller & Pelc (PODC 2014), §1.2:
///
/// * nodes carry **no identifiers visible to agents** (the [`NodeId`]s used
///   here are simulator-side bookkeeping);
/// * at each node `v` the incident edges have **distinct port numbers**
///   `0..deg(v)`;
/// * port numbers at the two endpoints of an edge are **unrelated**.
///
/// Instances are immutable once built. Use [`GraphBuilder`](crate::GraphBuilder)
/// or a generator from [`generators`](crate::generators) to construct one; both
/// enforce the structural invariants (symmetry, port bijectivity, simplicity),
/// so every reachable `PortLabeledGraph` is valid by construction.
///
/// # Examples
///
/// ```
/// use rendezvous_graph::{generators, NodeId, Port};
///
/// let ring = generators::oriented_ring(5).unwrap();
/// assert_eq!(ring.node_count(), 5);
/// assert_eq!(ring.edge_count(), 5);
/// // On an oriented ring, port 0 always moves clockwise:
/// let t = ring.traverse(NodeId::new(0), Port::new(0)).unwrap();
/// assert_eq!(t.target, NodeId::new(1));
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortLabeledGraph {
    adj: Vec<Vec<HalfEdge>>,
}

impl PortLabeledGraph {
    /// Builds a graph directly from adjacency lists. Internal: the builder
    /// and generators are responsible for the invariants, which are then
    /// re-checked here in debug builds.
    pub(crate) fn from_adjacency(adj: Vec<Vec<HalfEdge>>) -> Self {
        let g = PortLabeledGraph { adj };
        debug_assert!(g.check_invariants().is_ok());
        g
    }

    /// Verifies the structural invariants: symmetry of half-edges, no
    /// self-loops, no parallel edges, in-range targets.
    ///
    /// This is exposed so that deserialized graphs can be validated:
    /// `serde` cannot enforce the cross-field invariants on its own.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`GraphError`].
    pub fn check_invariants(&self) -> Result<(), GraphError> {
        let n = self.adj.len();
        if n == 0 {
            return Err(GraphError::Empty);
        }
        for (ui, ports) in self.adj.iter().enumerate() {
            let u = NodeId::new(ui);
            let mut seen = vec![false; n];
            for (pi, half) in ports.iter().enumerate() {
                let ti = half.target.index();
                if ti >= n {
                    return Err(GraphError::NodeOutOfRange {
                        node: half.target,
                        node_count: n,
                    });
                }
                if ti == ui {
                    return Err(GraphError::SelfLoop { node: u });
                }
                if seen[ti] {
                    return Err(GraphError::DuplicateEdge { u, v: half.target });
                }
                seen[ti] = true;
                let back = self
                    .adj
                    .get(ti)
                    .and_then(|l| l.get(half.entry.index()))
                    .copied();
                match back {
                    Some(b) if b.target == u && b.entry == Port::new(pi) => {}
                    _ => {
                        return Err(GraphError::PortOutOfRange {
                            node: half.target,
                            port: half.entry,
                            degree: self.adj[ti].len(),
                        })
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of nodes `n`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges `e`.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Degree of `node`, i.e. the number of ports available there.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range; use [`PortLabeledGraph::contains`]
    /// to check first when handling untrusted input.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj[node.index()].len()
    }

    /// Returns `true` if `node` is a node of this graph.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        node.index() < self.adj.len()
    }

    /// Traverses the edge leaving `node` through `port`.
    ///
    /// Returns where the move lands and the entry port on the far side —
    /// exactly the observation an agent makes.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfRange`] if `node` is not a node,
    /// * [`GraphError::PortOutOfRange`] if `port >= deg(node)`.
    pub fn traverse(&self, node: NodeId, port: Port) -> Result<Traversal, GraphError> {
        let ports = self
            .adj
            .get(node.index())
            .ok_or(GraphError::NodeOutOfRange {
                node,
                node_count: self.adj.len(),
            })?;
        let half = ports.get(port.index()).ok_or(GraphError::PortOutOfRange {
            node,
            port,
            degree: ports.len(),
        })?;
        Ok(Traversal {
            target: half.target,
            entry_port: half.entry,
        })
    }

    /// The neighbor reached through `port` at `node`, without the entry port.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PortLabeledGraph::traverse`].
    pub fn neighbor(&self, node: NodeId, port: Port) -> Result<NodeId, GraphError> {
        Ok(self.traverse(node, port)?.target)
    }

    /// The port at `from` whose edge leads to `to`, if the two are adjacent.
    #[must_use]
    pub fn port_to(&self, from: NodeId, to: NodeId) -> Option<Port> {
        self.adj
            .get(from.index())?
            .iter()
            .position(|h| h.target == to)
            .map(Port::new)
    }

    /// Iterates over all node identifiers `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(NodeId::new)
    }

    /// Iterates over the ports `0..deg(node)` of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn ports(&self, node: NodeId) -> impl Iterator<Item = Port> + '_ {
        (0..self.degree(node)).map(Port::new)
    }

    /// Iterates over the neighbors of `node` in port order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[node.index()].iter().map(|h| h.target)
    }

    /// Iterates over all undirected edges, each reported once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(move |(ui, ports)| {
            ports.iter().enumerate().filter_map(move |(pi, half)| {
                if ui < half.target.index() {
                    Some(Edge {
                        u: NodeId::new(ui),
                        port_at_u: Port::new(pi),
                        v: half.target,
                        port_at_v: half.entry,
                    })
                } else {
                    None
                }
            })
        })
    }

    /// Maximum degree over all nodes.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum degree over all nodes.
    #[must_use]
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Returns `true` if every node has the same degree `d`.
    #[must_use]
    pub fn is_regular(&self) -> bool {
        self.max_degree() == self.min_degree()
    }
}

impl fmt::Debug for PortLabeledGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "PortLabeledGraph(n={}, e={})",
            self.node_count(),
            self.edge_count()
        )?;
        for v in self.nodes() {
            write!(f, "  {v}:")?;
            for p in self.ports(v) {
                let t = self.traverse(v, p).expect("valid by construction");
                write!(f, " {p}->{}({})", t.target, t.entry_port)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn traverse_and_back_is_identity() {
        let g = generators::oriented_ring(6).unwrap();
        for v in g.nodes() {
            for p in g.ports(v) {
                let t = g.traverse(v, p).unwrap();
                let back = g.traverse(t.target, t.entry_port).unwrap();
                assert_eq!(back.target, v);
                assert_eq!(back.entry_port, p);
            }
        }
    }

    #[test]
    fn traverse_rejects_bad_inputs() {
        let g = generators::oriented_ring(4).unwrap();
        assert!(matches!(
            g.traverse(NodeId::new(9), Port::new(0)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            g.traverse(NodeId::new(0), Port::new(2)),
            Err(GraphError::PortOutOfRange { .. })
        ));
    }

    #[test]
    fn edges_are_reported_once() {
        let g = generators::complete(5).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 10);
        for e in &edges {
            assert!(e.u < e.v);
            assert_eq!(g.neighbor(e.u, e.port_at_u).unwrap(), e.v);
            assert_eq!(g.neighbor(e.v, e.port_at_v).unwrap(), e.u);
        }
    }

    #[test]
    fn port_to_finds_the_right_port() {
        let g = generators::oriented_ring(5).unwrap();
        let p = g.port_to(NodeId::new(2), NodeId::new(3)).unwrap();
        assert_eq!(p, Port::new(0)); // clockwise
        let p = g.port_to(NodeId::new(2), NodeId::new(1)).unwrap();
        assert_eq!(p, Port::new(1)); // counter-clockwise
        assert_eq!(g.port_to(NodeId::new(0), NodeId::new(2)), None);
    }

    #[test]
    fn degree_statistics() {
        let g = generators::star(4).unwrap();
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.min_degree(), 1);
        assert!(!g.is_regular());
        let r = generators::oriented_ring(7).unwrap();
        assert!(r.is_regular());
    }

    #[test]
    fn serde_round_trip_preserves_graph() {
        let g = generators::hypercube(3).unwrap();
        let json = serde_json::to_string(&g).unwrap();
        let back: PortLabeledGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
        assert!(back.check_invariants().is_ok());
    }

    #[test]
    fn debug_output_is_nonempty() {
        let g = generators::path(3).unwrap();
        let s = format!("{g:?}");
        assert!(s.contains("n=3"));
        assert!(s.contains("v0"));
    }
}
