//! Strongly-typed identifiers for nodes and ports.
//!
//! Agents in the model of Miller & Pelc cannot perceive node identities, but
//! the *simulator* needs them to place agents and detect meetings. Ports, in
//! contrast, are visible to agents: at a node of degree `d` the incident edge
//! endpoints are labelled `0..d`. Keeping the two as distinct newtypes
//! ([`NodeId`], [`Port`]) prevents the classic bug of feeding a node index
//! where a port number is expected.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node inside one [`PortLabeledGraph`](crate::PortLabeledGraph).
///
/// Node identifiers are dense indices `0..n`. They exist for the benefit of
/// the simulator and analysis code only — rendezvous agents never observe
/// them (the graphs are *anonymous*).
///
/// # Examples
///
/// ```
/// use rendezvous_graph::NodeId;
///
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node identifier from a dense index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the underlying dense index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.0
    }
}

/// A local port number at some node.
///
/// At a node of degree `d`, the incident edges carry distinct port numbers
/// `0..d`. Port numberings at the two endpoints of an edge are unrelated.
/// Ports are the *only* navigational information visible to agents.
///
/// # Examples
///
/// ```
/// use rendezvous_graph::Port;
///
/// let p = Port::new(0);
/// assert_eq!(p.index(), 0);
/// assert_eq!(format!("{p}"), "p0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Port(usize);

impl Port {
    /// Creates a port from its local index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        Port(index)
    }

    /// Returns the local index of the port.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for Port {
    fn from(index: usize) -> Self {
        Port(index)
    }
}

impl From<Port> for usize {
    fn from(port: Port) -> usize {
        port.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_usize() {
        let v = NodeId::new(42);
        assert_eq!(usize::from(v), 42);
        assert_eq!(NodeId::from(42usize), v);
    }

    #[test]
    fn port_round_trips_through_usize() {
        let p = Port::new(7);
        assert_eq!(usize::from(p), 7);
        assert_eq!(Port::from(7usize), p);
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(Port::new(0) < Port::new(1));
    }

    #[test]
    fn display_is_nonempty_and_distinct() {
        assert_eq!(NodeId::new(5).to_string(), "v5");
        assert_eq!(Port::new(5).to_string(), "p5");
    }

    #[test]
    fn serde_round_trip() {
        let v = NodeId::new(9);
        let s = serde_json::to_string(&v).unwrap();
        assert_eq!(s, "9");
        let back: NodeId = serde_json::from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
