//! Property tests for the graph substrate: structural invariants hold for
//! every generated graph, and the analysis functions agree with first
//! principles.

use proptest::prelude::*;
use rendezvous_graph::{analysis, generators, EulerCircuit, GraphBuilder, NodeId, Port};

fn arbitrary_connected_graph() -> impl Strategy<Value = rendezvous_graph::PortLabeledGraph> {
    (3usize..24, 0u64..1_000, 0..4u8).prop_map(|(n, seed, family)| {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        match family {
            0 => generators::erdos_renyi_connected(n, 0.3, &mut rng).unwrap(),
            1 => generators::random_tree(n, &mut rng).unwrap(),
            2 => generators::scrambled_ring(n.max(3), &mut rng).unwrap(),
            _ => generators::oriented_ring(n.max(3)).unwrap(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_graphs_satisfy_all_invariants(g in arbitrary_connected_graph()) {
        prop_assert!(g.check_invariants().is_ok());
        prop_assert!(analysis::is_connected(&g));
        // handshake lemma
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn traverse_is_an_involution(g in arbitrary_connected_graph()) {
        for v in g.nodes() {
            for p in g.ports(v) {
                let t = g.traverse(v, p).unwrap();
                let back = g.traverse(t.target, t.entry_port).unwrap();
                prop_assert_eq!(back.target, v);
                prop_assert_eq!(back.entry_port, p);
            }
        }
    }

    #[test]
    fn bfs_distances_satisfy_edge_lipschitz(g in arbitrary_connected_graph()) {
        // Neighbouring nodes have distances differing by at most 1.
        let d = analysis::bfs_distances(&g, NodeId::new(0));
        for e in g.edges() {
            let du = d[e.u.index()].unwrap() as i64;
            let dv = d[e.v.index()].unwrap() as i64;
            prop_assert!((du - dv).abs() <= 1);
        }
    }

    #[test]
    fn diameter_bounds(g in arbitrary_connected_graph()) {
        let n = g.node_count();
        let diam = analysis::diameter(&g).unwrap();
        prop_assert!(diam < n);
        // diameter at least eccentricity of node 0 / 1... trivially:
        prop_assert!(diam >= analysis::eccentricity(&g, NodeId::new(0)).unwrap());
    }

    #[test]
    fn euler_circuit_exists_exactly_for_even_degrees(g in arbitrary_connected_graph()) {
        let all_even = g.nodes().all(|v| g.degree(v) % 2 == 0);
        let circuit = EulerCircuit::find(&g, NodeId::new(0));
        prop_assert_eq!(circuit.is_ok(), all_even);
        if let Ok(c) = circuit {
            prop_assert_eq!(c.len(), g.edge_count());
            // circuit closes
            let seq = c.node_sequence(&g);
            prop_assert_eq!(seq.first(), seq.last());
        }
    }

    #[test]
    fn builder_rejects_whatever_breaks_simplicity(
        n in 2usize..10,
        edges in proptest::collection::vec((0usize..10, 0usize..10), 1..30),
    ) {
        // Inserting arbitrary (possibly bad) edges either fails loudly or
        // results in a valid graph — never a silently broken one.
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            let _ = b.add_edge(NodeId::new(u), NodeId::new(v));
        }
        if let Ok(g) = b.build() {
            prop_assert!(g.check_invariants().is_ok());
        }
    }

    #[test]
    fn scrambled_rings_are_rings(n in 3usize..30, seed in 0u64..500) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::scrambled_ring(n, &mut rng).unwrap();
        prop_assert!(g.is_regular());
        prop_assert_eq!(g.max_degree(), 2);
        prop_assert_eq!(g.edge_count(), n);
        prop_assert!(analysis::is_connected(&g));
    }

    #[test]
    fn port_to_agrees_with_traverse(g in arbitrary_connected_graph()) {
        for v in g.nodes() {
            for u in g.neighbors(v) {
                let p = g.port_to(v, u).unwrap();
                prop_assert_eq!(g.neighbor(v, p).unwrap(), u);
            }
        }
        // non-adjacent pairs yield None
        let n = g.node_count();
        for vi in 0..n {
            let v = NodeId::new(vi);
            for ui in 0..n {
                let u = NodeId::new(ui);
                if u == v { continue; }
                let adjacent = g.neighbors(v).any(|w| w == u);
                prop_assert_eq!(g.port_to(v, u).is_some(), adjacent);
            }
        }
    }
}

#[test]
fn ports_are_exactly_zero_to_degree() {
    let g = generators::complete(6).unwrap();
    for v in g.nodes() {
        let deg = g.degree(v);
        assert!(g.traverse(v, Port::new(deg)).is_err());
        for p in 0..deg {
            assert!(g.traverse(v, Port::new(p)).is_ok());
        }
    }
}
