//! Property tests for the graph substrate: structural invariants hold for
//! every generated graph, and the analysis functions agree with first
//! principles.

use proptest::prelude::*;
use rendezvous_graph::{analysis, generators, EulerCircuit, GraphBuilder, NodeId, Port};

fn arbitrary_connected_graph() -> impl Strategy<Value = rendezvous_graph::PortLabeledGraph> {
    (3usize..24, 0u64..1_000, 0..4u8).prop_map(|(n, seed, family)| {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        match family {
            0 => generators::erdos_renyi_connected(n, 0.3, &mut rng).unwrap(),
            1 => generators::random_tree(n, &mut rng).unwrap(),
            2 => generators::scrambled_ring(n.max(3), &mut rng).unwrap(),
            _ => generators::oriented_ring(n.max(3)).unwrap(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_graphs_satisfy_all_invariants(g in arbitrary_connected_graph()) {
        prop_assert!(g.check_invariants().is_ok());
        prop_assert!(analysis::is_connected(&g));
        // handshake lemma
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn traverse_is_an_involution(g in arbitrary_connected_graph()) {
        for v in g.nodes() {
            for p in g.ports(v) {
                let t = g.traverse(v, p).unwrap();
                let back = g.traverse(t.target, t.entry_port).unwrap();
                prop_assert_eq!(back.target, v);
                prop_assert_eq!(back.entry_port, p);
            }
        }
    }

    #[test]
    fn bfs_distances_satisfy_edge_lipschitz(g in arbitrary_connected_graph()) {
        // Neighbouring nodes have distances differing by at most 1.
        let d = analysis::bfs_distances(&g, NodeId::new(0));
        for e in g.edges() {
            let du = d[e.u.index()].unwrap() as i64;
            let dv = d[e.v.index()].unwrap() as i64;
            prop_assert!((du - dv).abs() <= 1);
        }
    }

    #[test]
    fn diameter_bounds(g in arbitrary_connected_graph()) {
        let n = g.node_count();
        let diam = analysis::diameter(&g).unwrap();
        prop_assert!(diam < n);
        // diameter at least eccentricity of node 0 / 1... trivially:
        prop_assert!(diam >= analysis::eccentricity(&g, NodeId::new(0)).unwrap());
    }

    #[test]
    fn euler_circuit_exists_exactly_for_even_degrees(g in arbitrary_connected_graph()) {
        let all_even = g.nodes().all(|v| g.degree(v) % 2 == 0);
        let circuit = EulerCircuit::find(&g, NodeId::new(0));
        prop_assert_eq!(circuit.is_ok(), all_even);
        if let Ok(c) = circuit {
            prop_assert_eq!(c.len(), g.edge_count());
            // circuit closes
            let seq = c.node_sequence(&g);
            prop_assert_eq!(seq.first(), seq.last());
        }
    }

    #[test]
    fn builder_rejects_whatever_breaks_simplicity(
        n in 2usize..10,
        edges in proptest::collection::vec((0usize..10, 0usize..10), 1..30),
    ) {
        // Inserting arbitrary (possibly bad) edges either fails loudly or
        // results in a valid graph — never a silently broken one.
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            let _ = b.add_edge(NodeId::new(u), NodeId::new(v));
        }
        if let Ok(g) = b.build() {
            prop_assert!(g.check_invariants().is_ok());
        }
    }

    #[test]
    fn scrambled_rings_are_rings(n in 3usize..30, seed in 0u64..500) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::scrambled_ring(n, &mut rng).unwrap();
        prop_assert!(g.is_regular());
        prop_assert_eq!(g.max_degree(), 2);
        prop_assert_eq!(g.edge_count(), n);
        prop_assert!(analysis::is_connected(&g));
    }

    /// The `GraphSpec` contract, part 1: `permute_ports` changes only the
    /// port labelling — the degree sequence is preserved node for node,
    /// and the result is a valid port-labelled graph (ports `0..deg(v)`
    /// distinct at every node, traversal an involution).
    #[test]
    fn permute_ports_preserves_degrees_and_port_validity(
        g in arbitrary_connected_graph(),
        seed in 0u64..1_000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let h = generators::permute_ports(&g, &mut rng).unwrap();
        prop_assert!(h.check_invariants().is_ok(), "port labelling must stay valid");
        prop_assert_eq!(h.node_count(), g.node_count());
        prop_assert_eq!(h.edge_count(), g.edge_count());
        for v in g.nodes() {
            prop_assert_eq!(h.degree(v), g.degree(v), "degree sequence must be preserved");
            // Ports at v are exactly 0..deg(v), each usable.
            for p in 0..h.degree(v) {
                prop_assert!(h.traverse(v, Port::new(p)).is_ok());
            }
            prop_assert!(h.traverse(v, Port::new(h.degree(v))).is_err());
        }
    }

    /// The `GraphSpec` contract, part 2: the seeded random generators are
    /// **byte-deterministic** — the same seed always produces the same
    /// graph (asserted on the Debug rendering, which serializes the full
    /// adjacency-with-ports structure, so equality is byte equality).
    #[test]
    fn seeded_generators_are_byte_deterministic(
        n in 4usize..20,
        seed in 0u64..1_000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let er_a = generators::erdos_renyi_connected(n, 0.3, &mut StdRng::seed_from_u64(seed)).unwrap();
        let er_b = generators::erdos_renyi_connected(n, 0.3, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(format!("{er_a:?}").into_bytes(), format!("{er_b:?}").into_bytes());

        let d = 3;
        if n > d && (n * d) % 2 == 0 {
            let rr_a = generators::random_regular_connected(n, d, &mut StdRng::seed_from_u64(seed)).unwrap();
            let rr_b = generators::random_regular_connected(n, d, &mut StdRng::seed_from_u64(seed)).unwrap();
            prop_assert_eq!(format!("{rr_a:?}").into_bytes(), format!("{rr_b:?}").into_bytes());
        }
    }

    /// `GraphSpec` builds are pure: equal specs build equal graphs, and
    /// the JSON round trip preserves the spec exactly — together these
    /// make specs valid cross-process sweep coordinates.
    #[test]
    fn graph_specs_build_deterministically_and_round_trip(
        n in 4usize..16,
        seed in 0u64..1_000,
        kind in 0u8..5,
    ) {
        use rendezvous_graph::{ErdosRenyiSpec, GraphSpec, RegularSpec, SeededSpec};
        let even = if n % 2 == 0 { n } else { n + 1 };
        let spec = match kind {
            0 => GraphSpec::ScrambledRing(SeededSpec { n, seed }),
            1 => GraphSpec::Tree(SeededSpec { n, seed }),
            2 => GraphSpec::ErdosRenyi(ErdosRenyiSpec { n, edge_permille: 300, seed }),
            3 => GraphSpec::Regular(RegularSpec { n: even.max(6), d: 3, seed }),
            _ => GraphSpec::permuted(GraphSpec::ScrambledRing(SeededSpec { n, seed }), seed ^ 0xA5),
        };
        let a = spec.build().unwrap();
        let b = spec.build().unwrap();
        prop_assert_eq!(format!("{a:?}").into_bytes(), format!("{b:?}").into_bytes());
        prop_assert!(analysis::is_connected(&a));
        let text = serde_json::to_string(&spec).unwrap();
        let back: GraphSpec = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(format!("{:?}", back.build().unwrap()), format!("{a:?}"));
    }

    #[test]
    fn port_to_agrees_with_traverse(g in arbitrary_connected_graph()) {
        for v in g.nodes() {
            for u in g.neighbors(v) {
                let p = g.port_to(v, u).unwrap();
                prop_assert_eq!(g.neighbor(v, p).unwrap(), u);
            }
        }
        // non-adjacent pairs yield None
        let n = g.node_count();
        for vi in 0..n {
            let v = NodeId::new(vi);
            for ui in 0..n {
                let u = NodeId::new(ui);
                if u == v { continue; }
                let adjacent = g.neighbors(v).any(|w| w == u);
                prop_assert_eq!(g.port_to(v, u).is_some(), adjacent);
            }
        }
    }
}

#[test]
fn ports_are_exactly_zero_to_degree() {
    let g = generators::complete(6).unwrap();
    for v in g.nodes() {
        let deg = g.degree(v);
        assert!(g.traverse(v, Port::new(deg)).is_err());
        for p in 0..deg {
            assert!(g.traverse(v, Port::new(p)).is_ok());
        }
    }
}
