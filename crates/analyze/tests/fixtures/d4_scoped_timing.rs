//! Fixture: bare wall-clock reads, no allow annotations. Clean only
//! when the file lives inside a configured `[rules.d4] timing_exempt`
//! scope (the telemetry crate's quarantined stopwatch); the identical
//! source flags at any other path — the exemption is positional, not
//! global.

use std::time::Instant;

pub fn start() -> Instant {
    Instant::now()
}

pub fn elapsed_ns(started: &Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}
