//! D5 clean fixture: a sequential fold in input order — what the
//! Runner's order-deterministic fold reduces to after it has collected
//! worker results back into global-index order.

pub fn sequential_fold(chunks: Vec<Vec<u64>>) -> u64 {
    let mut worst = 0;
    for chunk in &chunks {
        worst = worst.max(chunk.iter().copied().max().unwrap_or(0));
    }
    worst
}
