//! D2 violating fixture: the PR-2 grid-stride wrap, reconstructed.
//!
//! `i * total` is computed in `usize` and only then truncated; once the
//! grid crossed 2^32 cells on a 32-bit host (or 2^64 anywhere), the
//! product wrapped and every shard silently re-walked the same prefix
//! of the grid — byte-identical ledgers, identically wrong.

pub fn shard_start(i: usize, total: usize, cap: usize) -> u64 {
    (i * total / cap) as u64
}
