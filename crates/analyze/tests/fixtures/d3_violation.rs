//! D3 violating fixture: a float witness tie-break. `a/b > c/d` through
//! `f64` rounds at 53 bits — two exactly-equal ratios can compare
//! unequal (or vice versa) depending on magnitudes, and the chosen
//! witness then differs between otherwise identical runs.

pub fn better_witness(time_a: u64, runs_a: u64, time_b: u64, runs_b: u64) -> bool {
    let mean_a = time_a as f64 / runs_a as f64;
    let mean_b = time_b as f64 / runs_b as f64;
    mean_a > mean_b
}
