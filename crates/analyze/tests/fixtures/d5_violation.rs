//! D5 violating fixture: a hand-rolled parallel fold. Results merge in
//! completion order — whichever worker finishes first folds first, so
//! any order-sensitive reduction (first witness, tie-broken extrema)
//! varies run to run even with identical inputs.

pub fn parallel_fold(chunks: Vec<Vec<u64>>) -> u64 {
    let mut worst = 0;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in &chunks {
            handles.push(scope.spawn(move || chunk.iter().copied().max().unwrap_or(0)));
        }
        for h in handles {
            worst = worst.max(h.join().expect("worker"));
        }
    });
    worst
}
