//! Suppression fixture: a real D1 hazard carrying a justified allow —
//! the finding stays in the report (allowed) but does not fail `--deny`.

use std::collections::HashMap;

pub struct Cache {
    // analyze: allow(d1) — point lookups only; never iterated
    entries: HashMap<u64, u64>,
}

impl Cache {
    pub fn get(&self, k: u64) -> Option<u64> {
        self.entries.get(&k).copied()
    }
}
