//! D4 clean fixture: every run input is explicit — RNG seeded from a
//! caller-supplied value, budget passed as a parameter, no clocks.

pub fn deterministic_run(seed: u64, budget: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    budget + rng.next_u64()
}
