//! D1 clean fixture: the post-PR-6 pattern — sorted, deduplicated
//! delays, so the fold order is a function of the input alone.

use std::collections::BTreeSet;

pub fn fold_over_delays(delays: &[u64]) -> u64 {
    let unique: BTreeSet<u64> = delays.iter().copied().collect();
    let mut worst = 0;
    for d in unique {
        worst = worst.max(simulate(d));
    }
    worst
}

fn simulate(delay: u64) -> u64 {
    delay * 2
}
