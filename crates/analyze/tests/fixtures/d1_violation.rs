//! D1 violating fixture: the pre-PR-6 unsorted-delay pattern.
//!
//! Delays were deduplicated through a `HashSet` and folded in whatever
//! order the hasher produced — two runs of the same sweep could visit
//! delays in different orders, and any order-sensitive fold (first
//! witness wins, running extrema with ties) diverged between shards.

use std::collections::HashSet;

pub fn fold_over_delays(delays: &[u64]) -> u64 {
    let unique: HashSet<u64> = delays.iter().copied().collect();
    let mut worst = 0;
    for d in unique {
        // Order-sensitive fold: ties resolve to whichever delay the
        // hasher happened to yield first.
        worst = worst.max(simulate(d));
    }
    worst
}

fn simulate(delay: u64) -> u64 {
    delay * 2
}
