//! D4 violating fixture: three nondeterminism sources in one file —
//! a wall clock outside the bench harness, an unseeded RNG, and a
//! `std::env` read outside the CLI layer.

pub fn entropy_soup() -> u64 {
    let now = std::time::SystemTime::now();
    let mut rng = thread_rng();
    let budget: u64 = std::env::var("SWEEP_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    budget + rng.next_u64() + now.elapsed().map_or(0, |d| d.as_secs())
}
