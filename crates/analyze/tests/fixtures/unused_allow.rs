//! Allow-hygiene fixture: a stale allow — the hazard it covered was
//! fixed (BTreeMap now), so the annotation must be deleted. The linter
//! reports the drift as an unsuppressed `allow` finding.

use std::collections::BTreeMap;

pub struct Cache {
    // analyze: allow(d1) — point lookups only; never iterated
    entries: BTreeMap<u64, u64>,
}
