//! D2 clean fixture: the PR-2 fix — widen *before* the arithmetic so
//! the product is exact, then narrow a value already proven in range.

pub fn shard_start(i: usize, total: usize, cap: usize) -> u64 {
    let wide = i as u128 * total as u128 / cap as u128;
    u64::try_from(wide).expect("shard start fits u64 by construction")
}
