//! D3 clean fixture: the exact cross-multiplication convention —
//! `a/b > c/d  ⟺  a·d > c·b` with the products taken in `u128`, which
//! cannot overflow for `u64` inputs and never rounds.

pub fn better_witness(time_a: u64, runs_a: u64, time_b: u64, runs_b: u64) -> bool {
    time_a as u128 * runs_b as u128 > time_b as u128 * runs_a as u128
}
