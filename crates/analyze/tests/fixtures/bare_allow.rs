//! Allow-hygiene fixture: a bare allow with no justification. It does
//! not suppress, and is itself an unsuppressed `allow` finding.

use std::collections::HashMap;

pub struct Cache {
    // analyze: allow(d1)
    entries: HashMap<u64, u64>,
}
