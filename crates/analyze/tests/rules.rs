//! Fixture-corpus tests: every rule flags its violating fixture and
//! passes its clean twin, the allow machinery behaves, and — the gate
//! the whole crate exists for — the workspace itself analyzes clean.

use rendezvous_analyze::analyze_source;
use rendezvous_analyze::config::Config;
use rendezvous_analyze::report::{AnalysisReport, Finding};
use std::path::Path;

fn fixture(name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    analyze_source(name, &source, &Config::everywhere())
}

fn rules_hit(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn d1_unsorted_delay_fold_flags_and_btreeset_passes() {
    let bad = fixture("d1_violation.rs");
    assert!(
        bad.iter().any(|f| f.rule == "D1" && !f.allowed),
        "pre-PR-6 HashSet delay dedup must flag: {bad:?}"
    );
    assert!(fixture("d1_clean.rs").is_empty());
}

#[test]
fn d2_grid_stride_wrap_flags_and_widened_passes() {
    let bad = fixture("d2_violation.rs");
    assert_eq!(rules_hit(&bad), ["D2"], "{bad:?}");
    assert!(
        bad[0].message.contains("PR-2"),
        "the message names the bug class: {}",
        bad[0].message
    );
    assert!(fixture("d2_clean.rs").is_empty());
}

#[test]
fn d3_float_tiebreak_flags_and_cross_multiplication_passes() {
    let bad = fixture("d3_violation.rs");
    assert!(
        !bad.is_empty() && bad.iter().all(|f| f.rule == "D3"),
        "{bad:?}"
    );
    assert!(fixture("d3_clean.rs").is_empty());
}

#[test]
fn d4_clock_entropy_env_flag_and_seeded_passes() {
    let bad = fixture("d4_violation.rs");
    assert!(bad.iter().all(|f| f.rule == "D4"), "{bad:?}");
    assert!(
        bad.len() >= 3,
        "SystemTime, thread_rng and std::env::var each flag: {bad:?}"
    );
    assert!(fixture("d4_clean.rs").is_empty());
}

#[test]
fn d5_thread_fold_flags_and_sequential_passes() {
    let bad = fixture("d5_violation.rs");
    assert!(
        !bad.is_empty() && bad.iter().all(|f| f.rule == "D5"),
        "{bad:?}"
    );
    assert!(fixture("d5_clean.rs").is_empty());
}

#[test]
fn justified_allow_suppresses_but_stays_in_the_report() {
    let findings = fixture("allowed.rs");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "D1");
    assert!(findings[0].allowed);
    assert_eq!(
        findings[0].justification.as_deref(),
        Some("point lookups only; never iterated")
    );
    let report = AnalysisReport::from_findings(findings, 1);
    assert_eq!(
        (report.total, report.allowed, report.unsuppressed),
        (1, 1, 0)
    );
}

#[test]
fn bare_allow_fails_and_unused_allow_fails() {
    let bare = fixture("bare_allow.rs");
    assert!(
        bare.iter().any(|f| f.rule == "D1" && !f.allowed),
        "a bare allow must not suppress: {bare:?}"
    );
    assert!(
        bare.iter()
            .any(|f| f.rule == "allow" && f.message.contains("bare")),
        "{bare:?}"
    );

    let unused = fixture("unused_allow.rs");
    assert_eq!(rules_hit(&unused), ["allow"], "{unused:?}");
    assert!(
        unused[0].message.contains("unused"),
        "{}",
        unused[0].message
    );
    assert!(!unused[0].allowed);
}

/// The telemetry crate's wall-clock sanction is a *scope*, not a
/// loophole: with `timing_exempt` covering the telemetry source tree,
/// the same bare `Instant` reads that pass at a telemetry path still
/// flag — unallowed — at any other path.
#[test]
fn d4_timing_exemption_is_scoped_to_configured_paths() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/d4_scoped_timing.rs");
    let source = std::fs::read_to_string(&path).expect("fixture");
    let mut cfg = Config::everywhere();
    cfg.d4_timing_exempt = vec!["crates/telemetry/src".into()];
    let exempt = analyze_source("crates/telemetry/src/metrics.rs", &source, &cfg);
    assert!(
        exempt.is_empty(),
        "timing-exempt path must not flag the stopwatch: {exempt:?}"
    );
    let flagged = analyze_source("crates/runner/src/runner.rs", &source, &cfg);
    assert!(
        flagged.iter().any(|f| f.rule == "D4" && !f.allowed),
        "the same source outside the scope must flag: {flagged:?}"
    );
}

/// The acceptance gate, inside the suite: the workspace's own source
/// analyzes clean under the checked-in `analyze.toml` — every finding
/// either fixed or carrying a written justification.
#[test]
fn workspace_is_clean_under_checked_in_config() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let toml = std::fs::read_to_string(root.join("analyze.toml")).expect("analyze.toml");
    let cfg = Config::parse(&toml).expect("config parses");
    let report = rendezvous_analyze::analyze_workspace(&root, &cfg).expect("scan");
    assert!(report.files_scanned > 50, "sanity: the walk found the tree");
    let stragglers: Vec<String> = report
        .unsuppressed_findings()
        .map(Finding::render)
        .collect();
    assert!(
        stragglers.is_empty(),
        "unsuppressed determinism findings:\n{}",
        stragglers.join("\n")
    );
}
