//! The determinism rules, D1–D5, as token-stream matchers.
//!
//! Every rule is deliberately *syntactic*: it cannot do type inference,
//! so it draws the line where a reviewer would — in determinism-critical
//! paths a hash-ordered container, a truncating cast of a computed
//! value, a float, a wall clock, or a raw parallel fold is guilty until
//! an `// analyze: allow(<rule>) — <why>` annotation (or a fix) proves
//! it order-safe. Test modules (`#[cfg(test)]`, `#[test]`) are exempt:
//! tests may use hash sets for membership checks freely, and the
//! determinism guarantees cover shipped sweep output, not assertions.

use crate::config::{path_in, Config};
use crate::lexer::{Lexed, Token, TokenKind};
use std::collections::BTreeSet;

/// A raw rule hit, before allow-annotation matching.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RawFinding {
    /// 1-based line.
    pub line: usize,
    /// `D1`–`D5`.
    pub rule: &'static str,
    /// What the rule saw.
    pub message: String,
}

/// One file's tokens plus the derived per-token context flags.
pub struct FileContext<'a> {
    /// `/`-separated path relative to the workspace root.
    pub rel: &'a str,
    /// The lexed file.
    pub lexed: &'a Lexed,
    /// `in_test[i]`: token `i` is inside a `#[cfg(test)]` / `#[test]`
    /// item (rules skip it).
    in_test: Vec<bool>,
    /// `in_use[i]`: token `i` is inside a `use …;` declaration (D1/D3
    /// flag use *sites*, not imports).
    in_use: Vec<bool>,
}

impl<'a> FileContext<'a> {
    /// Builds the context: marks test regions and use declarations.
    #[must_use]
    pub fn new(rel: &'a str, lexed: &'a Lexed) -> FileContext<'a> {
        let tokens = &lexed.tokens;
        let mut in_test = vec![false; tokens.len()];
        let mut i = 0;
        while i < tokens.len() {
            if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
                let attr_end = match matching_close(tokens, i + 1, '[', ']') {
                    Some(e) => e,
                    None => break,
                };
                if attr_is_test(&tokens[i + 2..attr_end]) {
                    let item_end = item_end_after(tokens, attr_end + 1);
                    for flag in in_test.iter_mut().take(item_end).skip(i) {
                        *flag = true;
                    }
                    i = item_end;
                    continue;
                }
                i = attr_end + 1;
                continue;
            }
            i += 1;
        }
        let mut in_use = vec![false; tokens.len()];
        let mut i = 0;
        while i < tokens.len() {
            if tokens[i].ident() == Some("use") {
                let mut j = i;
                while j < tokens.len() && !tokens[j].is_punct(';') {
                    in_use[j] = true;
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            i += 1;
        }
        FileContext {
            rel,
            lexed,
            in_test,
            in_use,
        }
    }

    fn skip(&self, i: usize) -> bool {
        self.in_test[i] || self.in_use[i]
    }
}

/// `true` when the attribute tokens mark a test item: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, …))]` — but not `#[cfg(not(test))]`.
fn attr_is_test(tokens: &[Token]) -> bool {
    let has = |name: &str| tokens.iter().any(|t| t.ident() == Some(name));
    has("test") && !has("not")
}

/// Index of the close delimiter matching the open one at `open`.
fn matching_close(tokens: &[Token], open: usize, oc: char, cc: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(oc) {
            depth += 1;
        } else if t.is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// One past the end of the item starting at `start`: the matching `}`
/// of its first top-level brace, or its terminating `;`, whichever the
/// item has (further attributes on the item are stepped over).
fn item_end_after(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    // Step over stacked attributes.
    while i < tokens.len()
        && tokens[i].is_punct('#')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        match matching_close(tokens, i + 1, '[', ']') {
            Some(e) => i = e + 1,
            None => return tokens.len(),
        }
    }
    let mut depth = 0i64;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Punct('{' | '(' | '[') => depth += 1,
            TokenKind::Punct('}' | ')' | ']') => {
                depth -= 1;
                if depth == 0 && tokens[i].is_punct('}') {
                    return i + 1;
                }
            }
            TokenKind::Punct(';') if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Runs every rule whose configured paths cover `cx.rel`; findings are
/// deduplicated to one per (rule, line).
#[must_use]
pub fn run_rules(cx: &FileContext<'_>, cfg: &Config) -> Vec<RawFinding> {
    let mut out = Vec::new();
    if path_in(cx.rel, &cfg.d1_paths) {
        d1_hash_order(cx, &mut out);
    }
    if path_in(cx.rel, &cfg.d2_paths) {
        d2_truncating_casts(cx, &mut out);
    }
    if path_in(cx.rel, &cfg.d3_paths) {
        d3_float_arithmetic(cx, &mut out);
    }
    d4_nondeterminism_sources(cx, cfg, &mut out);
    if path_in(cx.rel, &cfg.d5_paths) && !path_in(cx.rel, &cfg.d5_deterministic_fold) {
        d5_unordered_parallel(cx, &mut out);
    }
    let mut seen = BTreeSet::new();
    out.retain(|f| seen.insert((f.rule, f.line)));
    out.sort();
    out
}

/// D1 — hash-order leakage. In determinism-critical paths any
/// `HashMap`/`HashSet` is flagged: iteration order over them
/// (`for … in`, `.iter()`, `.keys()`, `.values()`, `.drain()`) is
/// nondeterministic and leaks straight into folds, merges, reports and
/// ledgers. Sites that only ever do point lookups carry an allow saying
/// exactly that; everything else converts to `BTreeMap`/`BTreeSet` or a
/// sorted collect.
fn d1_hash_order(cx: &FileContext<'_>, out: &mut Vec<RawFinding>) {
    for (i, t) in cx.lexed.tokens.iter().enumerate() {
        if cx.skip(i) {
            continue;
        }
        if let Some(name @ ("HashMap" | "HashSet")) = t.ident() {
            out.push(RawFinding {
                line: t.line,
                rule: "D1",
                message: format!(
                    "{name} in a determinism-critical path: its iteration order \
                     (for-in/iter/keys/values/drain) is nondeterministic and can leak \
                     into folds, reports or ledgers — use BTreeMap/BTreeSet or collect \
                     and sort, or annotate `// analyze: allow(d1) — <why order-safe>`"
                ),
            });
        }
    }
}

const NARROW_INT_TARGETS: [&str; 10] = [
    "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize",
];

/// D2 — truncating `as` casts of computed values: `(a * b + c) as u64`
/// style, the PR-2 grid-stride wrap class. The value inside the
/// parenthesized group grows through `*`, `+` or `<<` and the cast then
/// silently truncates; the fix is widening *before* the arithmetic
/// (u128 cross-products) or `try_from` with an explicit failure. Bare
/// widening casts (`i as u64 * …`) are not flagged — they move the
/// arithmetic into the wider type, which is the sanctioned pattern.
fn d2_truncating_casts(cx: &FileContext<'_>, out: &mut Vec<RawFinding>) {
    let tokens = &cx.lexed.tokens;
    for i in 1..tokens.len() {
        if cx.skip(i) || tokens[i].ident() != Some("as") {
            continue;
        }
        let Some(target) = tokens.get(i + 1).and_then(|t| t.ident()) else {
            continue;
        };
        if !NARROW_INT_TARGETS.contains(&target) {
            continue;
        }
        if !tokens[i - 1].is_punct(')') {
            continue;
        }
        let Some(open) = matching_open(tokens, i - 1) else {
            continue;
        };
        if let Some(op) = top_level_growing_op(&tokens[open + 1..i - 1]) {
            out.push(RawFinding {
                line: tokens[i].line,
                rule: "D2",
                message: format!(
                    "`as {target}` truncates a value computed with `{op}` inside the \
                     group — on large index spaces this wraps silently (the PR-2 \
                     grid-stride bug class); widen before the arithmetic \
                     (`a as u128 * b as u128`) or use `{target}::try_from`, or annotate \
                     `// analyze: allow(d2) — <why it cannot overflow>`"
                ),
            });
        }
    }
}

/// Index of the `(` matching the `)` at `close`, scanning backwards.
fn matching_open(tokens: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0i64;
    for i in (0..=close).rev() {
        if tokens[i].is_punct(')') {
            depth += 1;
        } else if tokens[i].is_punct('(') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// The first top-level *binary* value-growing operator (`*`, `+`, `<<`)
/// in a token slice, if any. Unary `*`/`+` (deref, nothing) don't
/// count: the operator must follow an operand. Shrinking operators
/// (`-`, `/`, `%`) are deliberately ignored — they cannot overflow the
/// group past its inputs.
fn top_level_growing_op(group: &[Token]) -> Option<&'static str> {
    let mut depth = 0i64;
    for (i, t) in group.iter().enumerate() {
        match &t.kind {
            TokenKind::Punct('(' | '[' | '{') => depth += 1,
            TokenKind::Punct(')' | ']' | '}') => depth -= 1,
            TokenKind::Punct(op @ ('*' | '+'))
                if depth == 0 && i > 0 && is_operand_end(&group[i - 1]) =>
            {
                return Some(if *op == '*' { "*" } else { "+" });
            }
            TokenKind::Punct('<')
                if depth == 0
                    && group.get(i + 1).is_some_and(|n| n.is_punct('<'))
                    && i > 0
                    && is_operand_end(&group[i - 1]) =>
            {
                return Some("<<");
            }
            _ => {}
        }
    }
    None
}

/// `true` when a token can end an operand — so the operator after it is
/// binary arithmetic, not a unary prefix or a pointer sigil.
fn is_operand_end(t: &Token) -> bool {
    matches!(
        t.kind,
        TokenKind::Ident(_) | TokenKind::Number | TokenKind::Punct(')') | TokenKind::Punct(']')
    )
}

const FLOAT_IDENTS: [&str; 7] = ["f32", "f64", "powf", "powi", "sqrt", "log2", "log10"];

/// D3 — float types or float math in determinism-critical paths. The
/// witness tie-break and merge convention is exact u128
/// cross-multiplication (`ratio_pair_gt/eq`); floats round, and libm
/// functions (`powf`, `log2`) may differ across platforms, so a float
/// anywhere near a fold needs an exact-integer replacement or an allow
/// explaining why it is display-only.
fn d3_float_arithmetic(cx: &FileContext<'_>, out: &mut Vec<RawFinding>) {
    for (i, t) in cx.lexed.tokens.iter().enumerate() {
        if cx.skip(i) {
            continue;
        }
        if let Some(name) = t.ident() {
            if FLOAT_IDENTS.contains(&name) {
                out.push(RawFinding {
                    line: t.line,
                    rule: "D3",
                    message: format!(
                        "float (`{name}`) in a determinism-critical path: rounding and \
                         platform-dependent libm results can flip comparisons the exact \
                         u128 cross-multiplication convention exists to prevent — \
                         compute exactly in integers, or annotate \
                         `// analyze: allow(d3) — <why display-only / exactness-safe>`"
                    ),
                });
            }
        }
    }
}

const RNG_IDENTS: [&str; 3] = ["thread_rng", "from_entropy", "OsRng"];
const ENV_READS: [&str; 5] = ["var", "vars", "var_os", "args", "current_exe"];

/// D4 — nondeterminism sources: wall clocks (`SystemTime`, `Instant`)
/// outside the benchmark harness, unseeded RNG, and `std::env` reads
/// outside the CLI layer. Applies to every scanned file — a
/// nondeterminism source is hazardous wherever it lives.
fn d4_nondeterminism_sources(cx: &FileContext<'_>, cfg: &Config, out: &mut Vec<RawFinding>) {
    let tokens = &cx.lexed.tokens;
    let timing_exempt = path_in(cx.rel, &cfg.d4_timing_exempt);
    let env_exempt = path_in(cx.rel, &cfg.d4_env_exempt);
    for (i, t) in tokens.iter().enumerate() {
        if cx.in_test[i] {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        if !timing_exempt && (name == "SystemTime" || name == "Instant") {
            out.push(RawFinding {
                line: t.line,
                rule: "D4",
                message: format!(
                    "`{name}` outside the benchmark harness: wall-clock values are \
                     nondeterministic; thread timing through the bench layer, or \
                     annotate `// analyze: allow(d4) — <why>`"
                ),
            });
        }
        if RNG_IDENTS.contains(&name) {
            out.push(RawFinding {
                line: t.line,
                rule: "D4",
                message: format!(
                    "`{name}` is an unseeded entropy source: every generator in this \
                     workspace must be seeded so sweeps replay byte-identically — \
                     take a seed, or annotate `// analyze: allow(d4) — <why>`"
                ),
            });
        }
        if !env_exempt
            && name == "env"
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens
                .get(i + 3)
                .and_then(|t| t.ident())
                .is_some_and(|m| ENV_READS.contains(&m))
        {
            out.push(RawFinding {
                line: t.line,
                rule: "D4",
                message: "`std::env` read outside the CLI layer: process environment is \
                          per-invocation state; parse it once at the binary boundary and \
                          pass values down, or annotate `// analyze: allow(d4) — <why>`"
                    .into(),
            });
        }
    }
}

/// D5 — unordered parallel reduction: rayon-style `par_*` iterators and
/// raw `thread::spawn`/`thread::scope` outside the sanctioned
/// order-deterministic fold (`Runner`). Any other parallel reduction
/// folds in completion order, which varies run to run.
fn d5_unordered_parallel(cx: &FileContext<'_>, out: &mut Vec<RawFinding>) {
    let tokens = &cx.lexed.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if cx.in_test[i] {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        let hit = if name.starts_with("par_") || name == "into_par_iter" || name == "rayon" {
            Some(format!(
                "`{name}` is an unordered parallel iterator: its reduction folds in \
                 completion order"
            ))
        } else if name == "thread"
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens
                .get(i + 3)
                .and_then(|t| t.ident())
                .is_some_and(|m| m == "spawn" || m == "scope")
        {
            Some("raw `std::thread` parallelism".to_string())
        } else if name == "scope"
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && tokens
                .get(i + 2)
                .and_then(|t| t.ident())
                .is_some_and(|m| m == "spawn")
        {
            Some("raw scoped-thread spawn".to_string())
        } else {
            None
        };
        if let Some(what) = hit {
            out.push(RawFinding {
                line: t.line,
                rule: "D5",
                message: format!(
                    "{what} outside the order-deterministic fold — route the work \
                     through `Runner` (input-order collection, sequential fold at \
                     global indices), or annotate `// analyze: allow(d5) — <why>`"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(src: &str) -> Vec<RawFinding> {
        let lexed = lex(src);
        let cx = FileContext::new("any.rs", &lexed);
        run_rules(&cx, &Config::everywhere())
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        findings(src).iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d1_flags_hash_containers_outside_use_and_tests() {
        assert_eq!(
            rules_of("fn f() { let m: HashMap<u64, u64> = HashMap::new(); }"),
            ["D1"]
        );
        assert!(rules_of("use std::collections::HashMap;").is_empty());
        assert!(
            rules_of("#[cfg(test)]\nmod tests { fn f() { let s = HashSet::new(); } }").is_empty()
        );
        assert!(rules_of(
            "#[cfg(not(test))]\nmod m { fn f() { let s: HashSet<u8> = HashSet::new(); } }"
        )
        .iter()
        .all(|r| *r == "D1"));
    }

    #[test]
    fn d2_flags_grouped_arithmetic_casts_only() {
        // The PR-2 wrap class: computed value, then truncation.
        assert_eq!(
            rules_of("fn f(i: usize, t: usize, c: usize) -> u64 { (i * t / c) as u64 }"),
            ["D2"]
        );
        assert_eq!(
            rules_of("fn f(a: u64, b: u64) -> usize { (a + b) as usize }"),
            ["D2"]
        );
        assert_eq!(rules_of("fn f(a: u32) -> u8 { (a << 2) as u8 }"), ["D2"]);
        // Widening before arithmetic is the sanctioned fix.
        assert!(rules_of("fn f(i: usize, t: usize) -> u128 { i as u128 * t as u128 }").is_empty());
        // Bool-to-int and plain narrowing of a single value: not this rule.
        assert!(rules_of("fn f(a: u64, b: u64) -> usize { (a < b) as usize }").is_empty());
        assert!(rules_of("fn f(x: u64) -> u32 { x as u32 }").is_empty());
        // Unary deref / shrinking operators don't count as growth.
        assert!(rules_of("fn f(x: &u64) -> u32 { (*x) as u32 }").is_empty());
        assert!(rules_of("fn f(a: u64) -> u32 { (a / 2) as u32 }").is_empty());
        // A call's argument parens are not the cast group.
        assert!(rules_of("fn f(n: i64, a: i64) -> usize { a.rem_euclid(n) as usize }").is_empty());
    }

    #[test]
    fn d3_flags_float_idents_once_per_line() {
        let hits = findings("fn mean(t: u128, n: usize) -> f64 { t as f64 / n as f64 }");
        assert_eq!(hits.len(), 1, "one finding per line: {hits:?}");
        assert_eq!(hits[0].rule, "D3");
        assert_eq!(
            rules_of("fn f(l: u64, c: f64) -> u64 { (l as f64).powf(1.0 / c) as u64 }"),
            ["D3"]
        );
        assert!(rules_of("fn f(a: u64, b: u64, c: u64, d: u64) -> bool { a as u128 * d as u128 > c as u128 * b as u128 }").is_empty());
    }

    #[test]
    fn d4_flags_clocks_entropy_and_env_reads() {
        assert_eq!(
            rules_of("fn f() -> u64 { SystemTime::now().elapsed().as_nanos() as u64 }"),
            ["D4"]
        );
        assert_eq!(rules_of("fn f() { let t = Instant::now(); }"), ["D4"]);
        assert_eq!(rules_of("fn f() { let mut rng = thread_rng(); }"), ["D4"]);
        assert_eq!(
            rules_of("fn f() { let s = std::env::var(\"SEED\"); }"),
            ["D4"]
        );
        // Methods *named* env without a :: read don't fire.
        assert!(rules_of("fn f(e: Env) { e.env.check(); }").is_empty());
        // Seeded RNG is the sanctioned pattern.
        assert!(
            rules_of("fn f(seed: u64) { let mut rng = StdRng::seed_from_u64(seed); }").is_empty()
        );
    }

    #[test]
    fn d5_flags_unordered_parallelism() {
        assert_eq!(
            rules_of("fn f(v: &[u64]) -> u64 { v.par_iter().sum() }"),
            ["D5"]
        );
        assert_eq!(rules_of("fn f() { std::thread::spawn(|| {}); }"), ["D5"]);
        assert_eq!(
            rules_of(
                "fn f() {\n    thread::scope(|scope| {\n        scope.spawn(|| {});\n    });\n}"
            )
            .len(),
            2
        );
        // A process Command::spawn is not a parallel fold.
        assert!(rules_of("fn f(c: &mut Command) { c.spawn().unwrap(); }").is_empty());
    }

    #[test]
    fn findings_dedupe_per_rule_and_line() {
        let hits = findings("fn f() { let a: HashMap<u8, HashMap<u8, u8>> = HashMap::new(); }");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn test_attribute_skips_the_following_item_only() {
        let src = "#[test]\nfn t() { let s: HashSet<u8> = HashSet::new(); }\n\
                   fn real() { let s: HashSet<u8> = HashSet::new(); }";
        let hits = findings(src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 3);
    }
}
