//! CLI for the workspace determinism linter.
//!
//! ```text
//! rendezvous-analyze [--root <dir>] [--config <file>] [--json <file>] [--deny] [--all]
//! ```
//!
//! Prints unsuppressed findings as `file:line [rule] message` (add
//! `--all` to also show allowed findings with their justifications),
//! optionally writes the full JSON report, and with `--deny` exits
//! nonzero when any unsuppressed finding remains — that's the CI gate.

use rendezvous_analyze::analyze_workspace;
use rendezvous_analyze::config::Config;
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    root: PathBuf,
    config: Option<PathBuf>,
    json: Option<PathBuf>,
    deny: bool,
    all: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        config: None,
        json: None,
        deny: false,
        all: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => cli.root = next_value(&mut args, "--root")?.into(),
            "--config" => cli.config = Some(next_value(&mut args, "--config")?.into()),
            "--json" => cli.json = Some(next_value(&mut args, "--json")?.into()),
            "--deny" => cli.deny = true,
            "--all" => cli.all = true,
            "--help" | "-h" => {
                println!(
                    "rendezvous-analyze: workspace determinism linter (rules D1-D5)\n\n\
                     usage: rendezvous-analyze [--root <dir>] [--config <file>] \
                     [--json <file>] [--deny] [--all]\n\n\
                     --root    workspace root to scan (default: .)\n\
                     --config  analyze.toml path (default: <root>/analyze.toml)\n\
                     --json    write the full machine-readable report here\n\
                     --deny    exit 1 if any unsuppressed finding remains\n\
                     --all     also print allowed findings with justifications"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(cli)
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn run() -> Result<bool, String> {
    let cli = parse_args()?;
    let config_path = cli
        .config
        .clone()
        .unwrap_or_else(|| cli.root.join("analyze.toml"));
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("read {}: {e}", config_path.display()))?;
    let cfg = Config::parse(&text).map_err(|e| format!("{}: {e}", config_path.display()))?;

    let report = analyze_workspace(&cli.root, &cfg)?;
    for f in &report.findings {
        if !f.allowed {
            println!("{}", f.render());
        } else if cli.all {
            println!(
                "{}  [allowed: {}]",
                f.render(),
                f.justification.as_deref().unwrap_or("")
            );
        }
    }
    println!(
        "rendezvous-analyze: {} files scanned, {} findings ({} allowed, {} unsuppressed)",
        report.files_scanned, report.total, report.allowed, report.unsuppressed
    );
    if let Some(json_path) = &cli.json {
        let body =
            serde_json::to_string_pretty(&report).map_err(|e| format!("serialize report: {e}"))?;
        std::fs::write(json_path, body + "\n")
            .map_err(|e| format!("write {}: {e}", json_path.display()))?;
    }
    Ok(!(cli.deny && report.unsuppressed > 0))
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("rendezvous-analyze: error: {msg}");
            ExitCode::FAILURE
        }
    }
}
