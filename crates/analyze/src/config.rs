//! `analyze.toml` — which paths are determinism-critical, and where
//! each rule's exemptions live.
//!
//! The parser is a deliberate TOML subset (the workspace vendors its
//! dependencies, so there is no `toml` crate): `[section.sub]` headers
//! and `key = value` assignments where a value is a quoted string,
//! `true`/`false`, or a (possibly multi-line) array of quoted strings.
//! `#` comments are stripped outside quotes. That is exactly the shape
//! the checked-in `analyze.toml` uses, and the parser rejects anything
//! else loudly rather than guessing.

use std::collections::BTreeMap;

/// Scoping configuration for one analysis run.
///
/// All paths are `/`-separated prefixes relative to the workspace root:
/// a file is "in" a list when its relative path starts with any entry.
/// An empty list means "nowhere" for rule paths; use `""` to match
/// every scanned file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Directories to scan for `.rs` files.
    pub roots: Vec<String>,
    /// Path prefixes never scanned (vendored deps, build output,
    /// the analyzer's own violation fixtures).
    pub exclude: Vec<String>,
    /// D1 (hash-order leakage) applies under these prefixes.
    pub d1_paths: Vec<String>,
    /// D2 (truncating casts of computed values) applies here.
    pub d2_paths: Vec<String>,
    /// D3 (float arithmetic / comparison) applies here.
    pub d3_paths: Vec<String>,
    /// D4 timing exemptions: `SystemTime`/`Instant` are expected here
    /// (benchmark harnesses measure wall time by design).
    pub d4_timing_exempt: Vec<String>,
    /// D4 environment exemptions: the CLI layer may read `std::env`.
    pub d4_env_exempt: Vec<String>,
    /// D5 (unordered parallel reduction) applies under these prefixes.
    pub d5_paths: Vec<String>,
    /// D5 exemption: the files implementing the order-deterministic
    /// fold itself (the one sanctioned home of raw threads).
    pub d5_deterministic_fold: Vec<String>,
}

impl Config {
    /// A config whose every rule applies to every path — what the
    /// fixture tests use so a fixture's findings don't depend on the
    /// workspace's own scoping.
    #[must_use]
    pub fn everywhere() -> Config {
        let all = vec![String::new()];
        Config {
            roots: all.clone(),
            exclude: Vec::new(),
            d1_paths: all.clone(),
            d2_paths: all.clone(),
            d3_paths: all.clone(),
            d4_timing_exempt: Vec::new(),
            d4_env_exempt: Vec::new(),
            d5_paths: all,
            d5_deterministic_fold: Vec::new(),
        }
    }

    /// Parses an `analyze.toml` document.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed line.
    pub fn parse(text: &str) -> Result<Config, String> {
        let raw = parse_subset(text)?;
        let list = |section: &str, key: &str| -> Vec<String> {
            raw.get(&(section.to_string(), key.to_string()))
                .cloned()
                .unwrap_or_default()
        };
        Ok(Config {
            roots: list("scan", "roots"),
            exclude: list("scan", "exclude"),
            d1_paths: list("rules.d1", "paths"),
            d2_paths: list("rules.d2", "paths"),
            d3_paths: list("rules.d3", "paths"),
            d4_timing_exempt: list("rules.d4", "timing_exempt"),
            d4_env_exempt: list("rules.d4", "env_exempt"),
            d5_paths: list("rules.d5", "paths"),
            d5_deterministic_fold: list("rules.d5", "deterministic_fold"),
        })
    }
}

/// Returns `true` when `rel` (a `/`-separated relative path) falls
/// under any prefix in `prefixes`.
#[must_use]
pub fn path_in(rel: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p.as_str()))
}

/// Parses the TOML subset into `(section, key) → list of strings`
/// (scalar strings become one-element lists; booleans/ints rejected —
/// the config schema is all string lists today).
fn parse_subset(text: &str) -> Result<BTreeMap<(String, String), Vec<String>>, String> {
    let mut out = BTreeMap::new();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((n, raw_line)) = lines.next() {
        let line = strip_comment(raw_line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(format!("line {}: unterminated section header", n + 1));
            };
            section = name.trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = value`", n + 1));
        };
        let key = key.trim().to_string();
        let mut value = value.trim().to_string();
        // Multi-line array: keep consuming lines until the `]` closes.
        while value.starts_with('[') && !value.ends_with(']') {
            let Some((_, cont)) = lines.next() else {
                return Err(format!("line {}: unterminated array", n + 1));
            };
            value.push(' ');
            value.push_str(strip_comment(cont).trim());
        }
        let items = parse_value(&value).map_err(|e| format!("line {}: {e}", n + 1))?;
        out.insert((section.clone(), key), items);
    }
    Ok(out)
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"string"` or `["a", "b", …]` into a list of strings.
fn parse_value(value: &str) -> Result<Vec<String>, String> {
    if let Some(inner) = value.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return Err("unterminated array".into());
        };
        let mut items = Vec::new();
        for part in split_array_items(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_string(part)?);
        }
        return Ok(items);
    }
    Ok(vec![parse_string(value)?])
}

/// Splits array items on commas outside quotes.
fn split_array_items(inner: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    for c in inner.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                current.push(c);
            }
            ',' if !in_str => {
                items.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        items.push(current);
    }
    items
}

/// Parses one quoted string.
fn parse_string(part: &str) -> Result<String, String> {
    let part = part.trim();
    let stripped = part
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got `{part}`"))?;
    Ok(stripped.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_multiline_arrays() {
        let cfg = Config::parse(
            r#"
# top comment
[scan]
roots = ["crates", "src"]  # trailing comment
exclude = [
    "vendor",   # vendored deps
    "target",
]

[rules.d1]
paths = ["crates/runner/src"]

[rules.d4]
env_exempt = "crates/bench/src/bin"
"#,
        )
        .unwrap();
        assert_eq!(cfg.roots, ["crates", "src"]);
        assert_eq!(cfg.exclude, ["vendor", "target"]);
        assert_eq!(cfg.d1_paths, ["crates/runner/src"]);
        assert_eq!(cfg.d4_env_exempt, ["crates/bench/src/bin"]);
        assert!(cfg.d5_paths.is_empty());
    }

    #[test]
    fn path_in_matches_prefixes() {
        let prefixes = vec!["crates/runner/src".to_string()];
        assert!(path_in("crates/runner/src/grid.rs", &prefixes));
        assert!(!path_in("crates/runner/tests/grid.rs", &prefixes));
        assert!(path_in("anything.rs", &[String::new()]));
        assert!(!path_in("anything.rs", &[]));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Config::parse("[scan\nroots = []").is_err());
        assert!(Config::parse("[scan]\nroots").is_err());
        assert!(Config::parse("[scan]\nroots = [unquoted]").is_err());
        let err = Config::parse("[scan]\nroots = \"ok\"\nbad line").unwrap_err();
        assert!(err.contains("line 3"), "{err}");
    }

    #[test]
    fn comment_stripping_respects_quotes() {
        let cfg = Config::parse("[scan]\nroots = [\"a#b\"] # real comment").unwrap();
        assert_eq!(cfg.roots, ["a#b"]);
    }
}
