//! Findings and the machine-readable report — the committed JSON is the
//! workspace's determinism audit baseline, so its serialization must be
//! as stable as the sweep ledgers': findings sorted by (file, line,
//! rule), every allowed finding carrying its written justification.

use serde::{Deserialize, Serialize};

/// One rule hit at one source line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// `/`-separated path relative to the workspace root.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// Rule id: `D1`–`D5`, or `allow` for suppression-syntax hygiene
    /// (bare or unused allows).
    pub rule: String,
    /// What the rule saw.
    pub message: String,
    /// `true` when an `// analyze: allow(…)` annotation covers the
    /// finding. Allowed findings stay in the report — they *are* the
    /// audit trail — but do not fail `--deny`.
    pub allowed: bool,
    /// The annotation's justification text, for allowed findings.
    pub justification: Option<String>,
}

impl Finding {
    /// The `file:line [rule] message` line the CLI prints.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{} [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The whole run: every finding (allowed or not), plus counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// Total findings, allowed included.
    pub total: usize,
    /// Findings covered by a justified allow annotation.
    pub allowed: usize,
    /// Findings that fail `--deny`.
    pub unsuppressed: usize,
}

impl AnalysisReport {
    /// Builds the report from raw findings (sorts and counts).
    #[must_use]
    pub fn from_findings(mut findings: Vec<Finding>, files_scanned: usize) -> AnalysisReport {
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(
                b.file.as_str(),
                b.line,
                b.rule.as_str(),
            ))
        });
        let total = findings.len();
        let allowed = findings.iter().filter(|f| f.allowed).count();
        AnalysisReport {
            unsuppressed: total - allowed,
            findings,
            files_scanned,
            total,
            allowed,
        }
    }

    /// The findings that fail `--deny`.
    pub fn unsuppressed_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.allowed)
    }
}
