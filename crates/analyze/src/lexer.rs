//! A minimal hand-rolled Rust lexer — just enough structure for the
//! determinism rules to match on.
//!
//! The container has no crates.io access (consistent with the vendored
//! dependency policy), so instead of `syn` the analyzer lexes source
//! into a flat token stream: identifiers (keywords included), numeric
//! and string/char literals, lifetimes, and single-character
//! punctuation. Line numbers are tracked per token, comments are
//! captured separately (line comments carry the `analyze: allow(...)`
//! suppression syntax), and everything inside string literals is
//! opaque — so a rule keyword appearing in a diagnostic message can
//! never produce a finding.

/// What a token is; rules match on identifiers and punctuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `as`, `use`, …).
    Ident(String),
    /// A numeric literal (`42`, `0x1F`, `1.5e-3`, `1_000u64`).
    Number,
    /// A string, raw-string, byte-string or char literal — contents
    /// deliberately opaque.
    Literal,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// One punctuation character (`::` arrives as two `:`).
    Punct(char),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind (and text, for identifiers).
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns `true` if this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// One `//` line comment (text without the slashes, trimmed) — block
/// comments are skipped entirely, so suppression annotations must be
/// line comments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Trimmed comment text, `//` stripped (doc-comment `/`/`!` kept).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
}

/// The lexed view of one source file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// All code tokens, in source order.
    pub tokens: Vec<Token>,
    /// All line comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Unterminated literals are tolerated (the rest of
/// the file becomes one opaque literal) — the analyzer must never panic
/// on weird input, only under-report.
#[must_use]
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut end = start;
                while end < chars.len() && chars[end] != '\n' {
                    end += 1;
                }
                out.comments.push(Comment {
                    text: chars[start..end].iter().collect::<String>().trim().into(),
                    line,
                });
                i = end;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment; Rust block comments nest.
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let tok_line = line;
                i = skip_string(&chars, i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line: tok_line,
                });
            }
            'r' | 'b' if starts_raw_or_byte_literal(&chars, i) => {
                let tok_line = line;
                i = skip_prefixed_literal(&chars, i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line: tok_line,
                });
            }
            '\'' => {
                // Lifetime or char literal.
                let next = chars.get(i + 1).copied();
                let after = chars.get(i + 2).copied();
                let is_lifetime =
                    matches!(next, Some(n) if n.is_alphabetic() || n == '_') && after != Some('\'');
                if is_lifetime {
                    let mut end = i + 1;
                    while end < chars.len() && (chars[end].is_alphanumeric() || chars[end] == '_') {
                        end += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        line,
                    });
                    i = end;
                } else {
                    let tok_line = line;
                    i = skip_char_literal(&chars, i, &mut line);
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        line: tok_line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let mut end = i + 1;
                while end < chars.len() {
                    let d = chars[end];
                    if d.is_alphanumeric() || d == '_' {
                        end += 1;
                    } else if d == '.'
                        && chars.get(end + 1).is_some_and(|n| n.is_ascii_digit())
                        && chars.get(end.wrapping_sub(1)) != Some(&'.')
                    {
                        // `1.5` continues the number; `0..n` does not.
                        end += 1;
                    } else if (d == '+' || d == '-')
                        && matches!(chars.get(end.wrapping_sub(1)), Some('e' | 'E'))
                        && chars.get(end + 1).is_some_and(|n| n.is_ascii_digit())
                    {
                        // Exponent sign: `1e-3`.
                        end += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    line,
                });
                i = end;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut end = i + 1;
                while end < chars.len() && (chars[end].is_alphanumeric() || chars[end] == '_') {
                    end += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(chars[i..end].iter().collect()),
                    line,
                });
                i = end;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Returns `true` if position `i` starts `r"`, `r#`, `b"`, `b'`, `br"`
/// or `br#` — a raw/byte literal rather than an identifier.
fn starts_raw_or_byte_literal(chars: &[char], i: usize) -> bool {
    match chars[i] {
        'r' => matches!(chars.get(i + 1), Some('"' | '#')),
        'b' => match chars.get(i + 1) {
            Some('"' | '\'') => true,
            Some('r') => matches!(chars.get(i + 2), Some('"' | '#')),
            _ => false,
        },
        _ => false,
    }
}

/// Skips a literal that starts with an `r`/`b`/`br` prefix at `i`;
/// returns the index just past it.
fn skip_prefixed_literal(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    if chars[i] == 'b' {
        i += 1;
    }
    if i < chars.len() && chars[i] == '\'' {
        return skip_char_literal(chars, i, line);
    }
    if i < chars.len() && chars[i] == 'r' {
        i += 1;
        let mut hashes = 0usize;
        while i < chars.len() && chars[i] == '#' {
            hashes += 1;
            i += 1;
        }
        if i >= chars.len() || chars[i] != '"' {
            return i; // `r#ident` raw identifier, not a string
        }
        i += 1;
        while i < chars.len() {
            if chars[i] == '\n' {
                *line += 1;
                i += 1;
            } else if chars[i] == '"' && chars[i + 1..].iter().take(hashes).all(|&h| h == '#') {
                return i + 1 + hashes;
            } else {
                i += 1;
            }
        }
        return i;
    }
    skip_string(chars, i, line)
}

/// Skips a `"…"` string starting at `i` (which must be the opening
/// quote); returns the index just past the closing quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a `'…'` char literal starting at `i` (the opening quote).
fn skip_char_literal(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(String::from))
            .collect()
    }

    #[test]
    fn idents_literals_and_lines() {
        let l = lex("let x = 1;\nlet map = HashMap::new();\n");
        assert_eq!(
            idents("let x = 1;\nlet map = HashMap::new();"),
            ["let", "x", "let", "map", "HashMap", "new"]
        );
        let hash = l.tokens.iter().find(|t| t.ident() == Some("HashMap"));
        assert_eq!(hash.unwrap().line, 2);
    }

    #[test]
    fn rule_keywords_inside_strings_are_opaque() {
        let l = lex(r##"let msg = "HashMap iteration"; let raw = r#"f64 SystemTime"# ;"##);
        assert!(l.tokens.iter().all(|t| t.ident() != Some("HashMap")));
        assert!(l.tokens.iter().all(|t| t.ident() != Some("f64")));
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn comments_are_captured_with_lines_and_block_comments_skipped() {
        let src = "fn f() {}\n// analyze: allow(d1) — why\n/* HashMap\nf64 */ let y = 0;";
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 2);
        assert!(l.comments[0].text.starts_with("analyze: allow(d1)"));
        assert!(l.tokens.iter().all(|t| t.ident() != Some("HashMap")));
        // The token after the block comment is on line 4.
        let y = l.tokens.iter().find(|t| t.ident() == Some("y")).unwrap();
        assert_eq!(y.line, 4);
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn numbers_ranges_and_floats() {
        let l = lex("for i in 0..10 { let f = 1.5e-3; let h = 0xFF_u64; }");
        let numbers = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .count();
        assert_eq!(numbers, 4, "0, 10, 1.5e-3, 0xFF_u64");
        // The range `..` stays as two puncts.
        assert!(l.tokens.iter().any(|t| t.is_punct('.')));
    }
}
