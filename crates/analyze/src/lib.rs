//! `rendezvous-analyze` — a workspace determinism linter.
//!
//! The sweep fabric's contract is byte-identity: shard and merge any
//! way you like, the ledger bytes match. That discipline lives in code
//! conventions — sorted iteration, exact u128 ratio comparison, widened
//! index math, order-deterministic folds — and conventions rot. This
//! crate mechanizes them as five static rules over the workspace's own
//! source:
//!
//! - **D1** hash-order leakage (`HashMap`/`HashSet` in fold/merge/
//!   report/ledger paths),
//! - **D2** truncating `as` casts of computed values (the PR-2
//!   grid-stride wrap class),
//! - **D3** float types/math where the exact cross-multiplication
//!   convention applies,
//! - **D4** nondeterminism sources (wall clocks outside bench, unseeded
//!   RNG, `std::env` outside the CLI layer),
//! - **D5** parallel reductions not routed through the Runner's
//!   order-deterministic fold.
//!
//! Findings print as `file:line [rule] message` and serialize to a JSON
//! report (the committed audit baseline). A finding is suppressed by a
//! justified annotation on or directly above the offending line:
//!
//! ```text
//! // analyze: allow(d1) — point lookups only; never iterated
//! ```
//!
//! A bare allow (no justification), a malformed allow, or an allow that
//! matches nothing is itself a finding — suppressions are part of the
//! audit surface, not an escape hatch.

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use config::{path_in, Config};
use report::{AnalysisReport, Finding};
use rules::FileContext;
use std::path::Path;

/// One parsed `// analyze: allow(rule) — justification` annotation.
#[derive(Debug)]
struct Allow {
    /// Lowercased rule id (`d1`…`d5`).
    rule: String,
    /// Line the comment sits on.
    line: usize,
    /// Justification text after the rule (may be empty — that's a
    /// finding in its own right).
    justification: String,
    /// Set when some finding was suppressed by this allow.
    used: bool,
}

/// Analyzes one file's source; `rel` is its `/`-separated path relative
/// to the workspace root (rule scoping matches on it).
#[must_use]
pub fn analyze_source(rel: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let cx = FileContext::new(rel, &lexed);
    let raw = rules::run_rules(&cx, cfg);

    let mut findings = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    let mut i = 0;
    while i < lexed.comments.len() {
        let comment = &lexed.comments[i];
        let Some(rest) = comment.text.strip_prefix("analyze:") else {
            i += 1;
            continue;
        };
        match parse_allow(rest) {
            Ok((rule, mut justification)) => {
                // A justification may wrap onto directly-following
                // comment lines; fold them in so the audit baseline
                // records the whole reason.
                let mut last_line = comment.line;
                while let Some(next) = lexed.comments.get(i + 1) {
                    if justification.is_empty()
                        || next.line != last_line + 1
                        || next.text.starts_with("analyze:")
                    {
                        break;
                    }
                    justification.push(' ');
                    justification.push_str(&next.text);
                    last_line = next.line;
                    i += 1;
                }
                allows.push(Allow {
                    rule,
                    line: comment.line,
                    justification,
                    used: false,
                });
            }
            Err(msg) => findings.push(Finding {
                file: rel.to_string(),
                line: comment.line,
                rule: "allow".into(),
                message: msg,
                allowed: false,
                justification: None,
            }),
        }
        i += 1;
    }

    for f in raw {
        let covered = allows
            .iter_mut()
            .find(|a| {
                a.rule.eq_ignore_ascii_case(f.rule)
                    && !a.justification.is_empty()
                    && covers(a.line, f.line, &lexed)
            })
            .map(|a| {
                a.used = true;
                a.justification.clone()
            });
        findings.push(Finding {
            file: rel.to_string(),
            line: f.line,
            rule: f.rule.to_string(),
            allowed: covered.is_some(),
            justification: covered,
            message: f.message,
        });
    }

    for a in &allows {
        if a.justification.is_empty() {
            findings.push(Finding {
                file: rel.to_string(),
                line: a.line,
                rule: "allow".into(),
                message: format!(
                    "bare `allow({})` with no justification — every suppression must \
                     say *why* the site is order-safe: \
                     `// analyze: allow({}) — <reason>`",
                    a.rule, a.rule
                ),
                allowed: false,
                justification: None,
            });
        } else if !a.used {
            findings.push(Finding {
                file: rel.to_string(),
                line: a.line,
                rule: "allow".into(),
                message: format!(
                    "unused `allow({})`: no {} finding on this or the next code line — \
                     the hazard was fixed or the annotation drifted; delete it",
                    a.rule,
                    a.rule.to_uppercase()
                ),
                allowed: false,
                justification: None,
            });
        }
    }
    findings
}

/// An allow at comment line `al` covers a finding at `fl` when they
/// share a line (trailing comment) or `fl` is the first code line after
/// the comment (annotation above the statement).
fn covers(al: usize, fl: usize, lexed: &lexer::Lexed) -> bool {
    if fl == al {
        return true;
    }
    lexed
        .tokens
        .iter()
        .map(|t| t.line)
        .filter(|&l| l > al)
        .min()
        == Some(fl)
}

/// Parses the text after `analyze:` — expects `allow(<rule>)` then an
/// optional `—`/`-`/`:`-separated justification.
fn parse_allow(rest: &str) -> Result<(String, String), String> {
    let rest = rest.trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return Err(format!(
            "malformed analyze annotation `analyze:{rest}` — expected \
             `analyze: allow(<rule>) — <justification>`"
        ));
    };
    let Some((rule, after)) = args.split_once(')') else {
        return Err("malformed analyze annotation: missing `)` after allow(".into());
    };
    let rule = rule.trim().to_ascii_lowercase();
    if !matches!(rule.as_str(), "d1" | "d2" | "d3" | "d4" | "d5") {
        return Err(format!(
            "unknown rule `{rule}` in allow() — rules are d1..d5"
        ));
    }
    let justification = after
        .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':'))
        .trim()
        .to_string();
    Ok((rule, justification))
}

/// Scans the workspace under `root` per `cfg` and builds the report.
///
/// The file walk is itself order-deterministic (directory entries
/// sorted by name at every level) so the committed JSON baseline is
/// byte-stable — the linter holds itself to the rule it enforces.
///
/// # Errors
///
/// I/O failures reading the tree, with the offending path.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> Result<AnalysisReport, String> {
    let mut files = Vec::new();
    for scan_root in &cfg.roots {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            collect_rs_files(root, &dir, &cfg.exclude, &mut files)?;
        }
    }
    files.sort();
    files.dedup();

    let mut findings = Vec::new();
    let files_scanned = files.len();
    for rel in &files {
        let source =
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("read {rel}: {e}"))?;
        findings.extend(analyze_source(rel, &source, cfg));
    }
    Ok(AnalysisReport::from_findings(findings, files_scanned))
}

/// Recursively collects `.rs` files under `dir`, as `/`-separated paths
/// relative to `root`, honoring `exclude` prefixes. Entries are sorted
/// so traversal order never depends on the filesystem.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    exclude: &[String],
    out: &mut Vec<String>,
) -> Result<(), String> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?
        .collect::<Result<_, _>>()
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .map_err(|e| format!("strip_prefix {}: {e}", path.display()))?
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if path_in(&rel, exclude) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, exclude, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        analyze_source("x.rs", src, &Config::everywhere())
    }

    #[test]
    fn allow_above_the_line_suppresses_and_keeps_justification() {
        let out = run(
            "// analyze: allow(d1) — point lookups only; never iterated\n\
             fn f() { let m: HashMap<u8, u8> = HashMap::new(); }",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].allowed);
        assert_eq!(
            out[0].justification.as_deref(),
            Some("point lookups only; never iterated")
        );
    }

    #[test]
    fn trailing_allow_on_the_same_line_suppresses() {
        let out = run(
            "fn f() { let t = Instant::now(); } // analyze: allow(d4) — latency probe, not folded",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].allowed);
    }

    #[test]
    fn multi_line_justification_is_folded_into_the_record() {
        let out = run("// analyze: allow(d1) — first half of the reason\n\
             // and the rest of it on the next line\n\
             fn f() { let m: HashMap<u8, u8> = HashMap::new(); }");
        assert_eq!(out.len(), 1);
        assert!(out[0].allowed);
        assert_eq!(
            out[0].justification.as_deref(),
            Some("first half of the reason and the rest of it on the next line")
        );
    }

    #[test]
    fn allow_for_a_different_rule_does_not_suppress() {
        let out = run("// analyze: allow(d3) — wrong rule\n\
             fn f() { let m: HashMap<u8, u8> = HashMap::new(); }");
        // The D1 finding survives and the d3 allow is flagged unused.
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|f| f.rule == "D1" && !f.allowed));
        assert!(out.iter().any(|f| f.rule == "allow"));
    }

    #[test]
    fn bare_allow_is_a_finding_and_does_not_suppress() {
        let out = run("// analyze: allow(d1)\n\
             fn f() { let m: HashMap<u8, u8> = HashMap::new(); }");
        assert!(out.iter().any(|f| f.rule == "D1" && !f.allowed));
        assert!(out
            .iter()
            .any(|f| f.rule == "allow" && f.message.contains("bare")));
    }

    #[test]
    fn unused_and_malformed_allows_are_findings() {
        let out = run("// analyze: allow(d2) — nothing here overflows\nfn f() {}");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("unused"));

        let out = run("// analyze: allowd2\nfn f() {}");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("malformed"));

        let out = run("// analyze: allow(d9) — no such rule\nfn f() {}");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("unknown rule"));
    }

    #[test]
    fn allow_does_not_leak_past_the_next_code_line() {
        let out = run("// analyze: allow(d1) — only covers the next line\n\
             fn g() {}\n\
             fn f() { let m: HashMap<u8, u8> = HashMap::new(); }");
        // Finding on line 3 is NOT covered (next code line after the
        // comment is 2), and the allow is unused.
        assert!(out.iter().any(|f| f.rule == "D1" && !f.allowed));
        assert!(out
            .iter()
            .any(|f| f.rule == "allow" && f.message.contains("unused")));
    }
}
