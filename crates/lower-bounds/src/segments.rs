//! Explored segments on the oriented ring (§3, Facts 3.1–3.4).
//!
//! For an execution `α` and an agent `x`, the paper considers the segment
//! `seg(x, α)` of ring edges explored by `x`, split into `seg₁` (edges
//! explored while on the agent's clockwise side) and `seg₋₁` (while on the
//! counter-clockwise side). These drive Theorem 3.1's cost accounting:
//!
//! * **Fact 3.2**: a solo execution costs at least `2·back(x) + forward(x)`
//!   (the lighter side must be retraced);
//! * **Fact 3.3**: for a cost-`E+φ` algorithm, `back(x) ≤ φ` for every
//!   clockwise-heavy agent;
//! * **Fact 3.1**: if two agents' segments together cover fewer than `E`
//!   edges, the adversary can place them so the segments are disjoint —
//!   no meeting.

use crate::BehaviorVector;

/// Segment statistics of one agent in one (prefix of an) execution,
/// computed from its behaviour vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segments {
    /// `forward(x)`: edges of `seg₁` — how far clockwise of the start the
    /// agent ever got.
    pub forward: i64,
    /// `back(x)`: edges of `seg₋₁` — how far counter-clockwise.
    pub back: i64,
    /// Edge traversals performed (the execution's cost for this agent).
    pub cost: u64,
}

impl Segments {
    /// Computes the statistics over the first `rounds` entries of a
    /// behaviour vector.
    #[must_use]
    pub fn of_prefix(vector: &BehaviorVector, rounds: usize) -> Self {
        let entries = &vector.entries()[..rounds.min(vector.len())];
        let mut acc = 0i64;
        let (mut max, mut min) = (0i64, 0i64);
        let mut cost = 0u64;
        for &e in entries {
            acc += i64::from(e);
            max = max.max(acc);
            min = min.min(acc);
            if e != 0 {
                cost += 1;
            }
        }
        Segments {
            forward: max,
            back: -min,
            cost,
        }
    }

    /// Computes the statistics of the whole vector (a full solo execution).
    #[must_use]
    pub fn of(vector: &BehaviorVector) -> Self {
        Self::of_prefix(vector, vector.len())
    }

    /// `|seg(x, α)|`: total distinct edges explored (assuming no wrap,
    /// which holds whenever `forward + back < n`).
    #[must_use]
    pub fn explored_edges(&self) -> i64 {
        self.forward + self.back
    }

    /// Fact 3.2's lower bound on the cost of covering these segments in a
    /// solo walk: the lighter side is traversed at least twice.
    #[must_use]
    pub fn fact_3_2_cost_floor(&self) -> i64 {
        let light = self.forward.min(self.back);
        let heavy = self.forward.max(self.back);
        2 * light + heavy
    }

    /// Checks Fact 3.2 against the measured cost.
    #[must_use]
    pub fn fact_3_2_holds(&self) -> bool {
        self.cost as i64 >= self.fact_3_2_cost_floor()
    }
}

/// Fact 3.1's adversarial placement: given the two agents' segment spans
/// in some execution, returns a start offset for the second agent (relative
/// to the first, clockwise) that makes their explored segments disjoint —
/// valid whenever the spans together cover fewer than `n − 1` edges.
///
/// The paper's formula: `p'_B = p_A + forward(A) + 1 + back(B) (mod n)`.
#[must_use]
pub fn disjoint_offset(a: &Segments, b: &Segments, n: usize) -> Option<usize> {
    if a.explored_edges() + b.explored_edges() >= (n - 1) as i64 {
        return None;
    }
    let off = (a.forward + 1 + b.back).rem_euclid(n as i64) as usize;
    Some(off)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{behavior_vector, trim};
    use rendezvous_core::{CheapSimultaneous, Label, LabelSpace, RendezvousAlgorithm};
    use rendezvous_explore::OrientedRingExplorer;
    use rendezvous_graph::{generators, NodeId};
    use rendezvous_sim::{AgentSpec, Simulation};
    use std::sync::Arc;

    #[test]
    fn segment_statistics_from_vectors() {
        let v = BehaviorVector::new(vec![1, 1, -1, -1, -1, 0, 1]);
        let s = Segments::of(&v);
        assert_eq!(s.forward, 2);
        assert_eq!(s.back, 1);
        assert_eq!(s.cost, 6);
        assert_eq!(s.explored_edges(), 3);
        assert_eq!(s.fact_3_2_cost_floor(), 4); // 2*back + forward = 2*1 + 2
        assert!(s.fact_3_2_holds());
    }

    #[test]
    fn prefix_statistics() {
        let v = BehaviorVector::new(vec![1, 1, -1, -1, -1]);
        let s = Segments::of_prefix(&v, 2);
        assert_eq!(s.forward, 2);
        assert_eq!(s.back, 0);
        assert_eq!(s.cost, 2);
    }

    #[test]
    fn fact_3_3_for_cheap_simultaneous() {
        // CheapSimultaneous has φ = 0, so back(x) = 0 for every agent.
        let g = Arc::new(generators::oriented_ring(10).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let alg = CheapSimultaneous::new(g, ex, LabelSpace::new(5).unwrap());
        let t = trim(&alg, 10 * alg.time_bound()).unwrap();
        let phi = t.phi(alg.exploration_bound());
        assert_eq!(phi, 0);
        for l in 1..=5u64 {
            let s = Segments::of(t.vector(Label::new(l).unwrap()));
            assert!(
                s.back as u64 <= phi,
                "Fact 3.3 violated for ℓ{l}: back {} > φ {phi}",
                s.back
            );
            assert!(s.fact_3_2_holds());
        }
    }

    #[test]
    fn fact_3_1_placement_prevents_meeting() {
        // Two short scripted walks whose combined span is < E: placing the
        // second agent at the paper's offset keeps the segments disjoint,
        // so an engine run over the same horizon must not meet.
        use rendezvous_graph::Port;
        use rendezvous_sim::{Action, ScriptedAgent};
        let n = 12;
        let g = generators::oriented_ring(n).unwrap();
        // agent A: 3 clockwise; agent B: 2 counter-clockwise.
        let va = BehaviorVector::new(vec![1, 1, 1]);
        let vb = BehaviorVector::new(vec![-1, -1]);
        let (sa, sb) = (Segments::of(&va), Segments::of(&vb));
        let off = disjoint_offset(&sa, &sb, n).expect("spans are small");
        let a = ScriptedAgent::new(vec![Action::Move(Port::new(0)); 3]);
        let b = ScriptedAgent::new(vec![Action::Move(Port::new(1)); 2]);
        let out = Simulation::new(&g)
            .agent(Box::new(a), AgentSpec::immediate(NodeId::new(0)))
            .agent(Box::new(b), AgentSpec::immediate(NodeId::new(off)))
            .max_rounds(5)
            .run()
            .unwrap();
        assert!(!out.met(), "Fact 3.1 placement must prevent the meeting");
    }

    #[test]
    fn disjoint_offset_refuses_covering_spans() {
        let big = Segments {
            forward: 8,
            back: 0,
            cost: 8,
        };
        let small = Segments {
            forward: 3,
            back: 0,
            cost: 3,
        };
        assert_eq!(disjoint_offset(&big, &small, 12), None);
    }

    #[test]
    fn segments_agree_with_behavior_vector_helpers() {
        let g = Arc::new(generators::oriented_ring(8).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let alg = CheapSimultaneous::new(g, ex, LabelSpace::new(3).unwrap());
        let v = behavior_vector(&alg, Label::new(2).unwrap(), 30).unwrap();
        let s = Segments::of(&v);
        assert_eq!(s.forward, v.forward());
        assert_eq!(s.back, v.back());
        assert_eq!(s.cost, v.weight());
    }
}
