//! The Theorem 3.2 pipeline, executable: any algorithm with time
//! `O(E log L)` has cost `Ω(E log L)`.
//!
//! The ring is cut into 6 sectors and time into blocks of `n/6` rounds.
//! Each agent's solo run is summarized as an **aggregate behaviour vector**
//! (its per-block sector drift, Fact 3.9), which `DefineProgress`
//! (Algorithm 3 of the paper, implemented verbatim below) compresses into a
//! **progress vector** retaining only the block pairs in which the agent
//! decisively crossed a sector. The paper shows correct algorithms give
//! distinct agents distinct progress vectors (Fact 3.15), that few-block
//! schedules force Ω(log L) non-zero entries on some agent (Fact 3.16,
//! pigeonhole), and that `2k` non-zero entries force `k·E/6` cost
//! (Fact 3.17).

use crate::{oriented_ring_size, trim, LowerBoundError, TrimmedAlgorithm};
use rendezvous_core::{Label, RendezvousAlgorithm};
use rendezvous_graph::NodeId;
use rendezvous_sim::run_solo;
use std::collections::BTreeMap;

/// Sum of a slice of aggregate entries (the paper's `surplus`).
#[must_use]
pub fn surplus(entries: &[i8]) -> i64 {
    entries.iter().map(|&e| i64::from(e)).sum()
}

/// Algorithm 3, `DefineProgress`, verbatim (0-based indices).
///
/// Scans the aggregate vector; whenever a window accumulates a surplus of
/// absolute value 2, the two "significant" entries `a` (last entry that
/// established the persistent ±1 surplus) and `b` (entry that pushed it to
/// ±2) are preserved and everything else in the window is zeroed.
///
/// # Examples
///
/// ```
/// use rendezvous_lower_bounds::define_progress;
///
/// // Oscillation without progress is zeroed entirely:
/// assert_eq!(define_progress(&[1, -1, 1, -1]), vec![0, 0, 0, 0]);
/// // Two decisive clockwise crossings are kept:
/// assert_eq!(define_progress(&[1, 0, 1, 0]), vec![1, 0, 1, 0]);
/// ```
#[must_use]
pub fn define_progress(agg: &[i8]) -> Vec<i8> {
    let m = agg.len();
    let mut prog = vec![0i8; m];
    let mut s = 0usize; // paper's s - 1
    loop {
        if s >= m {
            return prog;
        }
        // Case 1: no prefix of agg[s..] reaches |surplus| = 2.
        let mut b = None;
        let mut acc = 0i64;
        for (i, &e) in agg.iter().enumerate().skip(s) {
            acc += i64::from(e);
            if acc.abs() == 2 {
                b = Some(i);
                break;
            }
        }
        let Some(b) = b else {
            return prog;
        };
        // a = smallest index in {s..=b} with |surplus(agg[s..=i])| >= 1 for
        // all i in {a..=b}.
        let mut a = b;
        {
            // walk backwards while the prefix surplus stays >= 1 in absolute
            // value; the smallest such start is the paper's a.
            let mut acc = 0i64;
            let mut prefix = vec![0i64; b - s + 1];
            for (k, &e) in agg[s..=b].iter().enumerate() {
                acc += i64::from(e);
                prefix[k] = acc;
            }
            for k in (0..=(b - s)).rev() {
                if prefix[k].abs() >= 1 {
                    a = s + k;
                } else {
                    break;
                }
            }
        }
        prog[a] = agg[b];
        prog[b] = agg[b];
        s = b + 1;
    }
}

/// The aggregate behaviour vector `Agg_{x,0}` over `blocks` blocks of
/// `block_len` rounds: entry `i` is the sector drift (−1, 0 or +1) of the
/// agent between the beginnings of blocks `i` and `i+1` (Fact 3.9
/// guarantees the drift fits in one sector per block).
///
/// # Errors
///
/// Propagates simulation failures.
///
/// # Panics
///
/// Panics if a block drift exceeds one sector — impossible when
/// `block_len == n/6` (that is Fact 3.9), so a violation means the caller
/// passed inconsistent parameters.
pub fn aggregate_vector(
    algorithm: &dyn RendezvousAlgorithm,
    label: Label,
    blocks: usize,
    block_len: usize,
) -> Result<Vec<i8>, LowerBoundError> {
    let graph = algorithm.graph();
    let n = graph.node_count();
    let sectors = 6usize;
    assert_eq!(n % sectors, 0, "caller must ensure 6 | n");
    let start = NodeId::new(0);
    let mut agent = algorithm.agent(label, start)?;
    let rounds = blocks as u64 * block_len as u64;
    let trace = run_solo(graph, &mut agent, start, rounds)?;
    let sector = |v: NodeId| v.index() / block_len;
    let mut agg = Vec::with_capacity(blocks);
    for i in 0..blocks {
        let before = sector(trace.positions[i * block_len]);
        let after = sector(trace.positions[(i + 1) * block_len]);
        let drift = ((after + sectors).wrapping_sub(before)) % sectors;
        let z: i8 = match drift {
            0 => 0,
            1 => 1,
            5 => -1,
            other => panic!(
                "Fact 3.9 violated: drift of {other} sectors in one block \
                 (block_len {block_len}, n {n})"
            ),
        };
        agg.push(z);
    }
    Ok(agg)
}

/// The Theorem 3.2 construction's output on a concrete algorithm.
#[derive(Debug, Clone)]
pub struct ProgressReport {
    /// Ring size (divisible by 6).
    pub n: usize,
    /// Rounds per block = nodes per sector = `n/6`.
    pub block_len: usize,
    /// Index `M` of the block shared by the analyzed group (1-based).
    pub m_blocks: usize,
    /// The pigeonhole group: labels whose `m_x` falls in block `M`.
    pub group: Vec<Label>,
    /// `(label, aggregate vector, progress vector)` per group member.
    pub vectors: Vec<(Label, Vec<i8>, Vec<i8>)>,
    /// Fact 3.15's requirement: all progress vectors distinct.
    pub all_distinct: bool,
    /// Max non-zero entries over the group's progress vectors.
    pub max_nonzero: usize,
    /// Fact 3.17's cost witness: `(max_nonzero / 2) · (E/6)` — some agent
    /// must traverse at least this many edges in a solo run.
    pub cost_witness: u64,
    /// Whether every group member's measured solo cost dominates its own
    /// Fact 3.17 witness.
    pub witnesses_hold: bool,
    /// The trimming data.
    pub trimmed: TrimmedAlgorithm,
}

/// Runs the Theorem 3.2 construction: trim, pigeonhole agents by the block
/// containing `m_x`, build aggregate and progress vectors for the largest
/// group, and evaluate the cost witnesses.
///
/// # Errors
///
/// * [`LowerBoundError::RingNotDivisibleBySix`] unless `6 | n`,
/// * ring/meeting errors as in [`trim`].
pub fn progress_audit(
    algorithm: &dyn RendezvousAlgorithm,
    horizon: u64,
) -> Result<ProgressReport, LowerBoundError> {
    let n = oriented_ring_size(algorithm.graph())?;
    if n % 6 != 0 {
        return Err(LowerBoundError::RingNotDivisibleBySix { n });
    }
    let block_len = n / 6;
    let trimmed = trim(algorithm, horizon)?;
    let l = algorithm.label_space().size();

    // Pigeonhole: group agents by the block containing m_x.
    let block_of = |m: u64| -> usize { (m as usize).div_ceil(block_len).max(1) };
    let mut groups: BTreeMap<usize, Vec<Label>> = BTreeMap::new();
    for v in 1..=l {
        let label = Label::new(v).expect(">0");
        groups
            .entry(block_of(trimmed.horizon(label)))
            .or_default()
            .push(label);
    }
    let (&m_blocks, _) = groups
        .iter()
        .max_by_key(|(block, members)| (members.len(), usize::MAX - **block))
        .expect("label space is nonempty");
    let group = groups.remove(&m_blocks).expect("chosen key exists");

    let mut vectors = Vec::with_capacity(group.len());
    let mut max_nonzero = 0usize;
    let mut witnesses_hold = true;
    for &label in &group {
        let agg = aggregate_vector(algorithm, label, m_blocks, block_len)?;
        let prog = define_progress(&agg);
        let nz = prog.iter().filter(|&&e| e != 0).count();
        max_nonzero = max_nonzero.max(nz);
        // Fact 3.17: k pairs of non-zero entries force k * (n/6) cost in
        // the solo execution over the analyzed window.
        let k = (nz / 2) as u64;
        let solo_cost =
            crate::behavior_vector(algorithm, label, m_blocks as u64 * block_len as u64)?.weight();
        if solo_cost < k * (block_len as u64) {
            witnesses_hold = false;
        }
        vectors.push((label, agg, prog));
    }
    let mut seen = std::collections::BTreeSet::new();
    let all_distinct = vectors.iter().all(|(_, _, p)| seen.insert(p.clone()));
    let cost_witness = ((max_nonzero / 2) as u64) * (block_len as u64);

    Ok(ProgressReport {
        n,
        block_len,
        m_blocks,
        group,
        vectors,
        all_distinct,
        max_nonzero,
        cost_witness,
        witnesses_hold,
        trimmed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_core::{Fast, LabelSpace};
    use rendezvous_explore::OrientedRingExplorer;
    use rendezvous_graph::generators;
    use std::sync::Arc;

    #[test]
    fn surplus_sums() {
        assert_eq!(surplus(&[1, -1, 1, 1]), 2);
        assert_eq!(surplus(&[]), 0);
    }

    #[test]
    fn define_progress_zeroes_oscillation() {
        assert_eq!(define_progress(&[1, -1, 1, -1, 0]), vec![0; 5]);
        assert_eq!(define_progress(&[0, 0, 0]), vec![0; 3]);
    }

    #[test]
    fn define_progress_keeps_decisive_crossings() {
        // +1, +1 reaches surplus 2: both kept.
        assert_eq!(define_progress(&[1, 1]), vec![1, 1]);
        // oscillate, then two decisive: a is the *last* entry establishing
        // the persistent surplus.
        assert_eq!(define_progress(&[1, -1, 1, 1]), vec![0, 0, 1, 1]);
        // negative direction symmetric:
        assert_eq!(define_progress(&[-1, 0, -1]), vec![-1, 0, -1]);
    }

    #[test]
    fn define_progress_fact_3_13() {
        // Prog[a] == Prog[b] == Agg[b] != 0 for each preserved pair.
        let agg = [1, 1, -1, -1, -1, 1, 0, 1, 1];
        let prog = define_progress(&agg);
        // first window: [1,1] -> a=0, b=1; restart at 2: [-1,-1] -> a=2,b=3;
        // restart at 4: [-1,1,0,1,1]: prefix sums -1,0,0,1,2 -> b=8;
        // backwards from 8: |1|>=1 at 7 (sum 1), at 6 sum 0 -> stop: a=7.
        assert_eq!(prog, vec![1, 1, -1, -1, 0, 0, 0, 1, 1]);
    }

    #[test]
    fn define_progress_maximal_zero_runs_have_zero_surplus() {
        // Fact 3.14(2) spot-check on a busy vector.
        let agg = [1, -1, 1, 1, 0, -1, 1, -1, -1, -1];
        let prog = define_progress(&agg);
        // find maximal zero runs of prog not touching the end:
        let mut i = 0;
        while i < prog.len() {
            if prog[i] == 0 {
                let start = i;
                while i < prog.len() && prog[i] == 0 {
                    i += 1;
                }
                if i < prog.len() {
                    assert_eq!(
                        surplus(&agg[start..i]),
                        0,
                        "interior zero run {start}..{i} must have zero surplus"
                    );
                }
            } else {
                i += 1;
            }
        }
    }

    #[test]
    fn aggregate_vector_of_fast_on_ring() {
        let g = Arc::new(generators::oriented_ring(12).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let alg = Fast::new(g, ex, LabelSpace::new(4).unwrap());
        let agg = aggregate_vector(&alg, Label::new(3).unwrap(), 12, 2).unwrap();
        assert_eq!(agg.len(), 12);
        assert!(agg.iter().all(|&z| (-1..=1).contains(&z)));
        // Fast on an oriented ring only moves clockwise: no -1 drifts.
        assert!(agg.iter().all(|&z| z >= 0));
    }

    #[test]
    fn progress_audit_on_fast() {
        let g = Arc::new(generators::oriented_ring(12).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let alg = Fast::new(g.clone(), ex, LabelSpace::new(8).unwrap());
        let report = progress_audit(&alg, 20 * alg.time_bound()).unwrap();
        assert_eq!(report.n, 12);
        assert_eq!(report.block_len, 2);
        assert!(!report.group.is_empty());
        // Fact 3.17 must hold for a correct algorithm.
        assert!(report.witnesses_hold);
        // Fast moves a lot: some agent shows non-trivial progress weight.
        assert!(report.max_nonzero >= 2);
        assert!(report.cost_witness >= report.block_len as u64);
    }

    #[test]
    fn progress_audit_rejects_non_multiple_of_six() {
        let g = Arc::new(generators::oriented_ring(8).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let alg = Fast::new(g, ex, LabelSpace::new(4).unwrap());
        assert!(matches!(
            progress_audit(&alg, 10_000),
            Err(LowerBoundError::RingNotDivisibleBySix { n: 8 })
        ));
    }
}
