//! The Theorem 3.1 pipeline, executable: any algorithm of cost `E + o(E)`
//! has time `Ω(EL)`.
//!
//! The proof builds a tournament over the clockwise-heavy agents using the
//! *eager* relation (Fact 3.5), extracts a Hamiltonian path (Rédei), and
//! shows the meeting times along the path grow by at least `(F − 3φ)/2`
//! per step (Facts 3.6–3.8), yielding an execution of length
//! `Ω(L · E)`. This module runs exactly that construction on a concrete
//! algorithm and reports every intermediate quantity, so experiments can
//! verify the chain numerically.

use crate::{hamiltonian_path, oriented_ring_size, trim, LowerBoundError, TrimmedAlgorithm};
use rendezvous_core::{Label, RendezvousAlgorithm};
use rendezvous_graph::NodeId;
use rendezvous_sim::{AgentSpec, Simulation};

/// Everything the Theorem 3.1 construction produces on a concrete
/// algorithm.
#[derive(Debug, Clone)]
pub struct EagerChainReport {
    /// Ring size.
    pub n: usize,
    /// Exploration bound `E = n − 1`.
    pub e: u64,
    /// `F = ⌈E/2⌉`: the initial distance used by the construction.
    pub f: u64,
    /// Measured cost slack `φ` (worst cost minus `E`, clamped at 0).
    pub phi: u64,
    /// The heavy-side agents the tournament is built on (at least half).
    pub heavy: Vec<Label>,
    /// Hamiltonian path of the eager tournament.
    pub path: Vec<Label>,
    /// Meeting round `|α_i|` of each consecutive path pair's execution.
    pub chain_times: Vec<u64>,
    /// Fact 3.7: whether the chain times are strictly increasing.
    pub strictly_increasing: bool,
    /// Fact 3.8's final value: `(⌊L/2⌋ − 1) · (F − 3φ)/2` (clamped at 0) —
    /// the Ω(EL) witness the last chain execution must exceed.
    pub witness: u64,
    /// The trimming data (horizons, vectors, measured extremes).
    pub trimmed: TrimmedAlgorithm,
}

impl EagerChainReport {
    /// The observed time of the last chain execution — the concrete
    /// `Ω(EL)`-scale number.
    #[must_use]
    pub fn chain_final_time(&self) -> u64 {
        self.chain_times.last().copied().unwrap_or(0)
    }

    /// Returns `true` if the measured chain dominates the Fact 3.8 bound.
    #[must_use]
    pub fn witness_holds(&self) -> bool {
        self.chain_final_time() >= self.witness
    }
}

/// Runs one execution `α(x, px, y, py)` with simultaneous start and returns
/// its meeting round.
fn execution_time(
    algorithm: &dyn RendezvousAlgorithm,
    x: Label,
    px: usize,
    y: Label,
    py: usize,
    horizon: u64,
) -> Result<u64, LowerBoundError> {
    let a = algorithm.agent(x, NodeId::new(px))?;
    let b = algorithm.agent(y, NodeId::new(py))?;
    let out = Simulation::new(algorithm.graph())
        .agent(Box::new(a), AgentSpec::immediate(NodeId::new(px)))
        .agent(Box::new(b), AgentSpec::immediate(NodeId::new(py)))
        .max_rounds(horizon)
        .run()?;
    out.meeting()
        .map(|m| m.round)
        .ok_or(LowerBoundError::NoMeeting {
            labels: (x.get(), y.get()),
            starts: (px, py),
            horizon,
        })
}

/// Runs the full Theorem 3.1 construction for `algorithm` (which must
/// operate on an oriented ring) with per-execution round cap `horizon`.
///
/// The construction follows the paper exactly, with one generalization:
/// if the counter-clockwise-heavy agents form the majority, the whole
/// analysis is mirrored (the paper says "without loss of generality").
///
/// # Errors
///
/// * Ring/meeting errors as in [`trim`],
/// * [`LowerBoundError::EagerDichotomyViolated`] if some pair violates
///   Fact 3.5 — this happens precisely when the algorithm's cost is *not*
///   `E + o(E)`, i.e. when the theorem's premise fails.
pub fn eager_chain_audit(
    algorithm: &dyn RendezvousAlgorithm,
    horizon: u64,
) -> Result<EagerChainReport, LowerBoundError> {
    let n = oriented_ring_size(algorithm.graph())?;
    let e = (n - 1) as u64;
    let f = e.div_ceil(2);
    let trimmed = trim(algorithm, horizon)?;
    let phi = trimmed.phi(e);

    // Heavy-side selection (mirror if needed).
    let l = algorithm.label_space().size();
    let cw: Vec<Label> = (1..=l)
        .map(|v| Label::new(v).expect(">0"))
        .filter(|&lab| trimmed.vector(lab).is_clockwise_heavy())
        .collect();
    let mirror = cw.len() * 2 < l as usize;
    let heavy: Vec<Label> = if mirror {
        (1..=l)
            .map(|v| Label::new(v).expect(">0"))
            .filter(|&lab| !trimmed.vector(lab).is_clockwise_heavy())
            .collect()
    } else {
        cw
    };
    let sign: i64 = if mirror { -1 } else { 1 };
    // Start of the second agent: distance F in the heavy direction.
    let py = if mirror {
        (n - f as usize % n) % n
    } else {
        f as usize % n
    };

    // disp(X, α) from the solo behaviour vector prefix (determinism: the
    // agent behaves identically until the meeting).
    let disp = |lab: Label, rounds: u64| -> i64 {
        sign * trimmed.vector(lab).displacement_prefix(rounds as usize)
    };

    // Pairwise executions among heavy agents: meeting time and eager side.
    let k = heavy.len();
    let mut time = vec![vec![0u64; k]; k];
    let mut eager = vec![vec![false; k]; k]; // eager[i][j]: heavy[i] eager in (i,j) exec
    for i in 0..k {
        for j in (i + 1)..k {
            let (x, y) = (heavy[i].min(heavy[j]), heavy[i].max(heavy[j]));
            let t = execution_time(algorithm, x, 0, y, py, horizon)?;
            let (dx, dy) = (disp(x, t), disp(y, t));
            let x_eager = dx >= dy + sign_adjusted_f(f);
            let y_eager = dy >= dx + sign_adjusted_f(f);
            if x_eager == y_eager {
                return Err(LowerBoundError::EagerDichotomyViolated {
                    labels: (x.get(), y.get()),
                });
            }
            let (ii, jj) = if heavy[i] == x { (i, j) } else { (j, i) };
            time[ii][jj] = t;
            time[jj][ii] = t;
            eager[ii][jj] = x_eager;
            eager[jj][ii] = y_eager;
        }
    }

    let order = hamiltonian_path(k, |a, b| eager[a][b]);
    let path: Vec<Label> = order.iter().map(|&i| heavy[i]).collect();
    let chain_times: Vec<u64> = order.windows(2).map(|w| time[w[0]][w[1]]).collect();
    let strictly_increasing = chain_times.windows(2).all(|w| w[1] > w[0]);
    let steps = (l / 2).saturating_sub(1);
    let witness = steps * (f.saturating_sub(3 * phi)) / 2;

    Ok(EagerChainReport {
        n,
        e,
        f,
        phi,
        heavy,
        path,
        chain_times,
        strictly_increasing,
        witness,
        trimmed,
    })
}

/// `F` enters the eager comparison positively on both orientations (the
/// mirroring is already applied to the displacements).
fn sign_adjusted_f(f: u64) -> i64 {
    f as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_core::{CheapSimultaneous, LabelSpace};
    use rendezvous_explore::OrientedRingExplorer;
    use rendezvous_graph::generators;
    use std::sync::Arc;

    fn cheap_sim(n: usize, l: u64) -> CheapSimultaneous {
        let g = Arc::new(generators::oriented_ring(n).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        CheapSimultaneous::new(g, ex, LabelSpace::new(l).unwrap())
    }

    #[test]
    fn chain_audit_on_cheap_simultaneous() {
        let alg = cheap_sim(12, 8);
        let report = eager_chain_audit(&alg, 20 * alg.time_bound()).unwrap();
        assert_eq!(report.e, 11);
        assert_eq!(report.f, 6);
        assert_eq!(report.phi, 0, "the cheap variant has cost exactly <= E");
        // All agents move only clockwise: all heavy.
        assert_eq!(report.heavy.len(), 8);
        assert_eq!(report.path.len(), 8);
        assert_eq!(report.chain_times.len(), 7);
        // Fact 3.7: strictly increasing chain.
        assert!(
            report.strictly_increasing,
            "chain times {:?} must increase",
            report.chain_times
        );
        // Fact 3.8: the final chain time dominates the Ω(EL) witness.
        assert!(report.witness > 0);
        assert!(
            report.witness_holds(),
            "final time {} < witness {}",
            report.chain_final_time(),
            report.witness
        );
    }

    #[test]
    fn chain_times_grow_linearly_in_l() {
        // The heart of Theorem 3.1: more labels, proportionally longer
        // chain execution — time Ω(E·L) for cost-E algorithms.
        let n = 12;
        let t4 = {
            let alg = cheap_sim(n, 4);
            eager_chain_audit(&alg, 20 * alg.time_bound())
                .unwrap()
                .chain_final_time()
        };
        let t8 = {
            let alg = cheap_sim(n, 8);
            eager_chain_audit(&alg, 20 * alg.time_bound())
                .unwrap()
                .chain_final_time()
        };
        // Doubling L should roughly double the witness execution time.
        assert!(t8 >= t4 + 3, "t4={t4}, t8={t8}");
    }

    #[test]
    fn eager_in_cheap_sim_is_the_smaller_label() {
        // In CheapSimultaneous the smaller label explores first and covers
        // distance F alone: it is always the eager one, so the tournament
        // is transitive and the path is descending.
        let alg = cheap_sim(12, 6);
        let report = eager_chain_audit(&alg, 20 * alg.time_bound()).unwrap();
        let labels: Vec<u64> = report.path.iter().map(|l| l.get()).collect();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        assert_eq!(
            labels, sorted,
            "the eager tournament of CheapSimultaneous is transitive: \
             smaller labels (which explore first) beat larger ones, so the \
             Hamiltonian path is the ascending chain"
        );
    }
}
