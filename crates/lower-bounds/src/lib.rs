//! The lower-bound machinery of §3 of Miller & Pelc (PODC 2014), as
//! **executable code**: every definition in the proofs — behaviour vectors,
//! procedure `Trim`, the eager tournament with its Rédei Hamiltonian path,
//! sectors/blocks, aggregate vectors and `DefineProgress` (Algorithm 3) —
//! is implemented and can be run against any concrete
//! [`RendezvousAlgorithm`](rendezvous_core::RendezvousAlgorithm) on an
//! oriented ring.
//!
//! Two end-to-end audits reproduce the theorems numerically:
//!
//! * [`eager_chain_audit`] — Theorem 3.1: for a cost-`E + o(E)` algorithm,
//!   builds the eager tournament and exhibits a concrete execution chain of
//!   length `(⌊L/2⌋ − 1)(F − 3φ)/2 ∈ Ω(EL)`;
//! * [`progress_audit`] — Theorem 3.2: for a time-`O(E log L)` algorithm,
//!   computes the group's progress vectors and the `k · n/6` cost witnesses
//!   of Fact 3.17.
//!
//! # Examples
//!
//! ```
//! use rendezvous_core::{CheapSimultaneous, LabelSpace, RendezvousAlgorithm};
//! use rendezvous_explore::OrientedRingExplorer;
//! use rendezvous_graph::generators;
//! use rendezvous_lower_bounds::eager_chain_audit;
//! use std::sync::Arc;
//!
//! let g = Arc::new(generators::oriented_ring(12).unwrap());
//! let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
//! let alg = CheapSimultaneous::new(g, ex, LabelSpace::new(6).unwrap());
//! let report = eager_chain_audit(&alg, 20 * alg.time_bound()).unwrap();
//! assert!(report.strictly_increasing);      // Fact 3.7
//! assert!(report.witness_holds());          // Fact 3.8's Ω(EL) witness
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behavior_vector;
mod eager;
mod error;
mod progress;
mod segments;
mod tournament;
mod trim;

pub use behavior_vector::{behavior_vector, oriented_ring_size, BehaviorVector};
pub use eager::{eager_chain_audit, EagerChainReport};
pub use error::LowerBoundError;
pub use progress::{aggregate_vector, define_progress, progress_audit, surplus, ProgressReport};
pub use segments::{disjoint_offset, Segments};
pub use tournament::{hamiltonian_path, is_hamiltonian_path};
pub use trim::{trim, TrimmedAlgorithm};
