//! Tournaments and Rédei's theorem (every tournament has a directed
//! Hamiltonian path), used by Theorem 3.1's chain argument.

/// Computes a directed Hamiltonian path of the tournament on `k` vertices
/// whose edges are given by the oracle: `beats(a, b) == true` iff the edge
/// between `a` and `b` points from `a` to `b`.
///
/// Constructive proof of Rédei's theorem by insertion: maintain a valid
/// path and insert each new vertex before the first vertex it beats (or at
/// the end if it beats none) — both neighbours of the insertion point stay
/// consistent.
///
/// The oracle must be antisymmetric (`beats(a, b) == !beats(b, a)` for
/// `a != b`); it is consulted only on distinct pairs.
///
/// # Examples
///
/// ```
/// use rendezvous_lower_bounds::hamiltonian_path;
///
/// // The transitive tournament: i beats j iff i > j.
/// let path = hamiltonian_path(4, |a, b| a > b);
/// assert_eq!(path, vec![3, 2, 1, 0]);
/// ```
pub fn hamiltonian_path(k: usize, beats: impl Fn(usize, usize) -> bool) -> Vec<usize> {
    let mut path: Vec<usize> = Vec::with_capacity(k);
    for v in 0..k {
        let pos = path.iter().position(|&u| beats(v, u)).unwrap_or(path.len());
        path.insert(pos, v);
    }
    path
}

/// Verifies that `path` is a directed Hamiltonian path for `beats` on
/// `k` vertices.
#[must_use]
pub fn is_hamiltonian_path(k: usize, path: &[usize], beats: impl Fn(usize, usize) -> bool) -> bool {
    if path.len() != k {
        return false;
    }
    let mut seen = vec![false; k];
    for &v in path {
        if v >= k || seen[v] {
            return false;
        }
        seen[v] = true;
    }
    path.windows(2).all(|w| beats(w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_singleton() {
        assert_eq!(hamiltonian_path(0, |_, _| true), Vec::<usize>::new());
        assert_eq!(hamiltonian_path(1, |_, _| true), vec![0]);
    }

    #[test]
    fn cyclic_tournament_has_a_path() {
        // 0 beats 1, 1 beats 2, 2 beats 0 (a 3-cycle).
        let beats = |a: usize, b: usize| (a + 1) % 3 == b;
        let p = hamiltonian_path(3, beats);
        assert!(is_hamiltonian_path(3, &p, beats));
    }

    proptest! {
        #[test]
        fn every_random_tournament_has_a_path(k in 1usize..40, seed in 0u64..1_000) {
            // Deterministic pseudo-random tournament from the seed.
            let beats = move |a: usize, b: usize| {
                if a == b { return false; }
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                let h = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((lo * 1_000_003 + hi) as u64);
                let bit = (h >> 17) & 1 == 0;
                if a < b { bit } else { !bit }
            };
            let p = hamiltonian_path(k, beats);
            prop_assert!(is_hamiltonian_path(k, &p, beats));
        }
    }

    #[test]
    fn validator_rejects_bad_paths() {
        let beats = |a: usize, b: usize| a > b;
        assert!(!is_hamiltonian_path(3, &[0, 1], beats)); // wrong length
        assert!(!is_hamiltonian_path(3, &[0, 0, 1], beats)); // repeat
        assert!(!is_hamiltonian_path(3, &[0, 1, 2], beats)); // wrong direction
        assert!(is_hamiltonian_path(3, &[2, 1, 0], beats));
    }
}
