//! Error type for the lower-bound machinery.

use rendezvous_core::CoreError;
use rendezvous_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors raised by the §3 analysis pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LowerBoundError {
    /// The lower bounds are proven on oriented rings; other graphs are
    /// rejected.
    NotAnOrientedRing {
        /// Why the validation failed.
        reason: String,
    },
    /// Theorem 3.2's sector construction needs `n` divisible by 6.
    RingNotDivisibleBySix {
        /// The ring size.
        n: usize,
    },
    /// An execution failed to meet within the provided horizon — either
    /// the algorithm is incorrect or the horizon too small; both are fatal
    /// for the analysis.
    NoMeeting {
        /// The two labels.
        labels: (u64, u64),
        /// The two start nodes.
        starts: (usize, usize),
        /// The horizon that was exhausted.
        horizon: u64,
    },
    /// Fact 3.5 was violated: in some execution neither or both agents
    /// were eager. Indicates the algorithm breaks the theorem's premise
    /// (its cost is not `E + o(E)`), reported rather than panicking so
    /// that experiments can show *why* the bound does not apply.
    EagerDichotomyViolated {
        /// The two labels.
        labels: (u64, u64),
    },
    /// An algorithm-level failure (bad label etc.).
    Algorithm(CoreError),
    /// A simulation-level failure.
    Simulation(SimError),
}

impl fmt::Display for LowerBoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerBoundError::NotAnOrientedRing { reason } => {
                write!(f, "lower bounds require an oriented ring: {reason}")
            }
            LowerBoundError::RingNotDivisibleBySix { n } => {
                write!(f, "sector analysis requires 6 | n, got n = {n}")
            }
            LowerBoundError::NoMeeting {
                labels,
                starts,
                horizon,
            } => write!(
                f,
                "agents ℓ{} and ℓ{} starting at v{} and v{} did not meet within {horizon} rounds",
                labels.0, labels.1, starts.0, starts.1
            ),
            LowerBoundError::EagerDichotomyViolated { labels } => write!(
                f,
                "eager dichotomy (Fact 3.5) violated for labels ℓ{} and ℓ{}",
                labels.0, labels.1
            ),
            LowerBoundError::Algorithm(e) => write!(f, "algorithm error: {e}"),
            LowerBoundError::Simulation(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl Error for LowerBoundError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LowerBoundError::Algorithm(e) => Some(e),
            LowerBoundError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for LowerBoundError {
    fn from(e: CoreError) -> Self {
        LowerBoundError::Algorithm(e)
    }
}

impl From<SimError> for LowerBoundError {
    fn from(e: SimError) -> Self {
        LowerBoundError::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parameters() {
        let e = LowerBoundError::NoMeeting {
            labels: (1, 2),
            starts: (0, 3),
            horizon: 99,
        };
        let s = e.to_string();
        assert!(s.contains("ℓ1") && s.contains("v3") && s.contains("99"));
    }
}
