//! Behaviour vectors on the oriented ring (§3).
//!
//! "For each label `x`, algorithm `A` specifies a behaviour vector `V_x` …
//! a sequence with terms from `{−1, 0, 1}` that specifies, for each round
//! `i` of the solo execution of agent `x`, whether agent `x` moves
//! clockwise (1), remains idle (0), or moves counter-clockwise (−1). Note
//! that an agent's behaviour vector is independent of its starting
//! position."

use rendezvous_core::{Label, RendezvousAlgorithm};
use rendezvous_graph::{NodeId, Port, PortLabeledGraph};
use rendezvous_sim::{run_solo, Action};

use crate::LowerBoundError;

/// Validates that `graph` is an oriented ring (2-regular, port 0 clockwise
/// everywhere) and returns its size `n`.
///
/// # Errors
///
/// [`LowerBoundError::NotAnOrientedRing`] otherwise.
pub fn oriented_ring_size(graph: &PortLabeledGraph) -> Result<usize, LowerBoundError> {
    rendezvous_explore::OrientedRingExplorer::new(std::sync::Arc::new(graph.clone())).map_err(
        |e| LowerBoundError::NotAnOrientedRing {
            reason: e.to_string(),
        },
    )?;
    Ok(graph.node_count())
}

/// A solo behaviour vector: entries in `{−1, 0, +1}` (counter-clockwise,
/// idle, clockwise).
///
/// # Examples
///
/// ```
/// use rendezvous_lower_bounds::BehaviorVector;
///
/// let v = BehaviorVector::new(vec![1, 1, 0, -1]);
/// assert_eq!(v.displacement(), 1);
/// assert_eq!(v.forward(), 2);
/// assert_eq!(v.back(), 0);
/// assert!(v.is_clockwise_heavy());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BehaviorVector {
    entries: Vec<i8>,
}

impl BehaviorVector {
    /// Creates a vector, clamping nothing: entries must be −1, 0 or 1.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range entries.
    #[must_use]
    pub fn new(entries: Vec<i8>) -> Self {
        assert!(
            entries.iter().all(|&e| (-1..=1).contains(&e)),
            "behaviour vector entries must be in {{-1, 0, 1}}"
        );
        BehaviorVector { entries }
    }

    /// The raw entries.
    #[must_use]
    pub fn entries(&self) -> &[i8] {
        &self.entries
    }

    /// Number of rounds covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` for an empty vector.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Net clockwise displacement over a prefix of the first `rounds`
    /// entries (the paper's `disp` over a truncated execution).
    #[must_use]
    pub fn displacement_prefix(&self, rounds: usize) -> i64 {
        self.entries[..rounds.min(self.entries.len())]
            .iter()
            .map(|&e| i64::from(e))
            .sum()
    }

    /// Net clockwise displacement of the whole vector.
    #[must_use]
    pub fn displacement(&self) -> i64 {
        self.displacement_prefix(self.entries.len())
    }

    /// `forward(x)`: the farthest clockwise distance from the start ever
    /// reached (max prefix sum, clamped at 0). Equals the number of edges
    /// of the paper's `seg₁` as long as the walk never wraps around the
    /// ring, which holds for all cost-bounded algorithms on large rings.
    #[must_use]
    pub fn forward(&self) -> i64 {
        let mut acc = 0i64;
        let mut max = 0i64;
        for &e in &self.entries {
            acc += i64::from(e);
            max = max.max(acc);
        }
        max
    }

    /// `back(x)`: the farthest counter-clockwise distance from the start
    /// ever reached (−min prefix sum, clamped at 0); the paper's `seg₋₁`.
    #[must_use]
    pub fn back(&self) -> i64 {
        let mut acc = 0i64;
        let mut min = 0i64;
        for &e in &self.entries {
            acc += i64::from(e);
            min = min.min(acc);
        }
        -min
    }

    /// Clockwise-heavy ⇔ `back(x) ≤ forward(x)` (the paper's dichotomy;
    /// at least half the agents are on one side and the analysis proceeds
    /// with those).
    #[must_use]
    pub fn is_clockwise_heavy(&self) -> bool {
        self.back() <= self.forward()
    }

    /// Total number of moves (the cost of the solo execution).
    #[must_use]
    pub fn weight(&self) -> u64 {
        self.entries.iter().filter(|&&e| e != 0).count() as u64
    }

    /// Mirror image: swaps clockwise and counter-clockwise. Used to
    /// re-orient the analysis when counter-clockwise-heavy agents form the
    /// majority.
    #[must_use]
    pub fn mirrored(&self) -> Self {
        BehaviorVector {
            entries: self.entries.iter().map(|&e| -e).collect(),
        }
    }

    /// Zeroes all entries strictly after `keep` rounds (procedure Trim).
    pub fn truncate_after(&mut self, keep: usize) {
        for e in self.entries.iter_mut().skip(keep) {
            *e = 0;
        }
    }
}

/// Extracts the behaviour vector of `label` under `algorithm` by running a
/// solo execution of `rounds` rounds on the algorithm's (oriented-ring)
/// graph.
///
/// # Errors
///
/// * [`LowerBoundError::NotAnOrientedRing`] if the algorithm's graph is not
///   an oriented ring,
/// * [`LowerBoundError::Algorithm`] / [`LowerBoundError::Simulation`] on
///   schedule or execution failures.
pub fn behavior_vector(
    algorithm: &dyn RendezvousAlgorithm,
    label: Label,
    rounds: u64,
) -> Result<BehaviorVector, LowerBoundError> {
    let graph = algorithm.graph();
    oriented_ring_size(graph)?;
    // Behaviour vectors are start-independent on the oriented ring; use 0.
    let start = NodeId::new(0);
    let mut agent = algorithm.agent(label, start)?;
    let trace = run_solo(graph, &mut agent, start, rounds)?;
    let entries = trace
        .actions
        .iter()
        .map(|a| match a {
            Action::Stay => 0i8,
            Action::Move(p) if *p == Port::new(0) => 1,
            Action::Move(_) => -1,
        })
        .collect();
    Ok(BehaviorVector::new(entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_core::{CheapSimultaneous, LabelSpace};
    use rendezvous_explore::OrientedRingExplorer;
    use rendezvous_graph::generators;
    use std::sync::Arc;

    #[test]
    fn vector_statistics() {
        let v = BehaviorVector::new(vec![-1, -1, 1, 1, 1, 0]);
        assert_eq!(v.displacement(), 1);
        assert_eq!(v.forward(), 1);
        assert_eq!(v.back(), 2);
        assert_eq!(v.weight(), 5);
        assert!(!v.is_clockwise_heavy());
        let m = v.mirrored();
        assert!(m.is_clockwise_heavy());
        assert_eq!(m.displacement(), -1);
    }

    #[test]
    #[should_panic(expected = "entries must be")]
    fn rejects_out_of_range_entries() {
        let _ = BehaviorVector::new(vec![2]);
    }

    #[test]
    fn truncate_zeroes_the_tail() {
        let mut v = BehaviorVector::new(vec![1, 1, 1, 1]);
        v.truncate_after(2);
        assert_eq!(v.entries(), &[1, 1, 0, 0]);
        assert_eq!(v.displacement(), 2);
    }

    #[test]
    fn cheap_simultaneous_vector_shape() {
        let g = Arc::new(generators::oriented_ring(6).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let alg = CheapSimultaneous::new(g, ex, LabelSpace::new(4).unwrap());
        // label 2: waits E=5 rounds, then 5 clockwise moves.
        let v = behavior_vector(&alg, Label::new(2).unwrap(), 12).unwrap();
        assert_eq!(v.entries(), &[0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 0, 0]);
        assert_eq!(v.back(), 0);
        assert!(v.is_clockwise_heavy());
        assert_eq!(v.weight(), 5);
    }

    #[test]
    fn non_ring_graphs_are_rejected() {
        let g = Arc::new(generators::oriented_ring(6).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let star = Arc::new(generators::star(4).unwrap());
        let alg = CheapSimultaneous::new(star, ex, LabelSpace::new(2).unwrap());
        assert!(matches!(
            behavior_vector(&alg, Label::new(1).unwrap(), 5),
            Err(LowerBoundError::NotAnOrientedRing { .. })
        ));
    }
}
