//! Procedure `Trim(A)` (§3): zeroing the rounds an algorithm never uses.
//!
//! For each label `x`, `m_x` is the latest round, over all partner labels
//! and all pairs of start positions (simultaneous start), in which `x` is
//! still unmet in some execution. Everything after `m_x` in `x`'s behaviour
//! vector is dead code and is zeroed; the lower-bound arguments then reason
//! about the non-zero entries that remain.

use crate::{behavior_vector, oriented_ring_size, BehaviorVector, LowerBoundError};
use rendezvous_core::{Label, RendezvousAlgorithm};
use rendezvous_graph::NodeId;
use rendezvous_sim::{AgentSpec, Simulation};

/// The result of trimming: per-label horizons `m_x`, trimmed behaviour
/// vectors, and the worst time/cost observed across all executions
/// (the latter yields the measured slack `φ` of Theorem 3.1).
#[derive(Debug, Clone)]
pub struct TrimmedAlgorithm {
    /// `vectors[x - 1]` = trimmed behaviour vector of label `x` (length
    /// `max_time`, zeroed after `m_x`).
    pub vectors: Vec<BehaviorVector>,
    /// `horizons[x - 1]` = `m_x`.
    pub horizons: Vec<u64>,
    /// Worst meeting round over all executions (simultaneous start).
    pub max_time: u64,
    /// Worst total cost over all executions.
    pub max_cost: u64,
}

impl TrimmedAlgorithm {
    /// The trimmed vector of a label.
    ///
    /// # Panics
    ///
    /// Panics if the label is outside the analyzed space.
    #[must_use]
    pub fn vector(&self, label: Label) -> &BehaviorVector {
        &self.vectors[(label.get() - 1) as usize]
    }

    /// `m_x` for a label.
    ///
    /// # Panics
    ///
    /// Panics if the label is outside the analyzed space.
    #[must_use]
    pub fn horizon(&self, label: Label) -> u64 {
        self.horizons[(label.get() - 1) as usize]
    }

    /// The measured slack `φ = max(0, max_cost − E)`: the algorithm's cost
    /// is `E + φ` in the worst case. Theorem 3.1 applies when `φ ∈ o(E)`.
    #[must_use]
    pub fn phi(&self, exploration_bound: u64) -> u64 {
        self.max_cost.saturating_sub(exploration_bound)
    }
}

/// Runs procedure `Trim` for `algorithm` on its oriented ring, exhausting
/// all unordered label pairs and all ordered pairs of distinct start
/// positions, with simultaneous start (the lower-bound scenario).
///
/// `horizon` caps each execution; it must exceed the algorithm's time
/// bound or [`LowerBoundError::NoMeeting`] is returned.
///
/// # Errors
///
/// * [`LowerBoundError::NotAnOrientedRing`] for non-ring graphs,
/// * [`LowerBoundError::NoMeeting`] if some execution fails to meet
///   (incorrect algorithm or too-small horizon).
pub fn trim(
    algorithm: &dyn RendezvousAlgorithm,
    horizon: u64,
) -> Result<TrimmedAlgorithm, LowerBoundError> {
    let graph = algorithm.graph();
    let n = oriented_ring_size(graph)?;
    let l = algorithm.label_space().size();
    let mut horizons = vec![0u64; l as usize];
    let mut max_time = 0u64;
    let mut max_cost = 0u64;
    for x in 1..=l {
        for y in (x + 1)..=l {
            let (lx, ly) = (Label::new(x).expect(">0"), Label::new(y).expect(">0"));
            for px in 0..n {
                for py in 0..n {
                    if px == py {
                        continue;
                    }
                    let a = algorithm.agent(lx, NodeId::new(px))?;
                    let b = algorithm.agent(ly, NodeId::new(py))?;
                    let out = Simulation::new(graph)
                        .agent(Box::new(a), AgentSpec::immediate(NodeId::new(px)))
                        .agent(Box::new(b), AgentSpec::immediate(NodeId::new(py)))
                        .max_rounds(horizon)
                        .run()?;
                    let Some(meeting) = out.meeting() else {
                        return Err(LowerBoundError::NoMeeting {
                            labels: (x, y),
                            starts: (px, py),
                            horizon,
                        });
                    };
                    let t = meeting.round;
                    horizons[(x - 1) as usize] = horizons[(x - 1) as usize].max(t);
                    horizons[(y - 1) as usize] = horizons[(y - 1) as usize].max(t);
                    max_time = max_time.max(t);
                    max_cost = max_cost.max(out.cost());
                }
            }
        }
    }
    let mut vectors = Vec::with_capacity(l as usize);
    for x in 1..=l {
        let label = Label::new(x).expect(">0");
        let mut v = behavior_vector(algorithm, label, max_time)?;
        v.truncate_after(horizons[(x - 1) as usize] as usize);
        vectors.push(v);
    }
    Ok(TrimmedAlgorithm {
        vectors,
        horizons,
        max_time,
        max_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_core::{CheapSimultaneous, Fast, LabelSpace};
    use rendezvous_explore::OrientedRingExplorer;
    use rendezvous_graph::generators;
    use std::sync::Arc;

    fn cheap_sim(n: usize, l: u64) -> CheapSimultaneous {
        let g = Arc::new(generators::oriented_ring(n).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        CheapSimultaneous::new(g, ex, LabelSpace::new(l).unwrap())
    }

    #[test]
    fn trim_of_cheap_simultaneous() {
        let alg = cheap_sim(6, 4);
        let t = trim(&alg, 10 * alg.time_bound()).unwrap();
        let e = alg.exploration_bound();
        // Cost of the simultaneous variant never exceeds E: φ = 0.
        assert!(t.max_cost <= e, "cost {} > E {}", t.max_cost, e);
        assert_eq!(t.phi(e), 0);
        // Worst time is within the paper's bound and at least E
        // (the adversary can always force a full exploration).
        assert!(t.max_time <= alg.time_bound());
        assert!(t.max_time >= e);
        // Smaller labels stop being useful earlier: label 1 explores in
        // rounds 1..E so m_1 <= ... every label's vector is bounded by its
        // own schedule plus the partner's; sanity: horizons nonzero.
        for h in &t.horizons {
            assert!(*h > 0);
        }
    }

    #[test]
    fn trimmed_vectors_are_zero_after_horizon() {
        let alg = cheap_sim(6, 3);
        let t = trim(&alg, 10 * alg.time_bound()).unwrap();
        for x in 1..=3u64 {
            let label = Label::new(x).unwrap();
            let v = t.vector(label);
            let m = t.horizon(label) as usize;
            assert!(v.entries()[m.min(v.len())..].iter().all(|&e| e == 0));
        }
    }

    #[test]
    fn no_meeting_is_reported() {
        let alg = cheap_sim(8, 4);
        // horizon far too small for label pair (3,4) to meet
        let err = trim(&alg, 3).unwrap_err();
        assert!(matches!(err, LowerBoundError::NoMeeting { .. }));
    }

    #[test]
    fn trim_of_fast_has_nonzero_phi() {
        // Fast costs far more than E: φ > 0, so Theorem 3.1's premise
        // fails for it — exactly the tradeoff the paper describes.
        let g = Arc::new(generators::oriented_ring(6).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let alg = Fast::new(g, ex, LabelSpace::new(4).unwrap());
        let t = trim(&alg, 10 * alg.time_bound()).unwrap();
        assert!(t.phi(alg.exploration_bound()) > 0);
    }
}
