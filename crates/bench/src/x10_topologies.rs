//! Experiment X10 — the topology sweep: the graph itself as an adversary
//! axis.
//!
//! X7 checks the paper's generality claim on 8 hand-picked family
//! instances. X10 turns the topology into a first-class sweep dimension:
//! for each graph *family* it enumerates ≥ 100 **seeded** instances
//! ([`GraphSpec`]s), builds each graph once, and sweeps a capped
//! adversarial scenario grid (labels × starts × delays) on every
//! instance, running both `Cheap` and `Fast` and checking each execution
//! against the paper bounds with that instance's own exploration bound
//! `E`. Per-family worst cases (time, cost, and time/bound ratio) come
//! back with replayable `(spec, scenario)` witnesses.
//!
//! The sweep shards across processes exactly like the scenario sweeps —
//! a [`TopoGrid`] is just another [`Workload`](rendezvous_runner::Workload):
//! `experiments x10 --shard i/m --emit-shard` / `--merge-shards` carry
//! per-shard [`SweepReport`]s through the unified shard ledger, and the
//! merged run is byte-identical to a direct one (CI-checked).

use crate::common::{markdown_table, standard_delays, standard_label_pairs};
use rendezvous_core::{Cheap, Fast, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::{spec_explorer, Explorer};
use rendezvous_graph::{ErdosRenyiSpec, GraphSpec, RegularSpec, RingSpec, SeededSpec, TorusSpec};
use rendezvous_runner::{
    AlgorithmExecutor, BatchExecutor, Bounds, Grid, PieceExecutor, Runner, RunnerError,
    ScenarioOutcome, SweepReport, TopoEntry, TopoGrid, WorkPiece,
};
use serde::Serialize;
use std::sync::Arc;

/// Seeded instances per family; the ROADMAP's "hundreds of random graphs
/// per family" floor that the acceptance tests assert.
pub const SPECS_PER_FAMILY: usize = 100;

/// The standard X10 spec list: `SPECS_PER_FAMILY` seeded instances of
/// each of six families, sizes cycling with the seed so one family spans
/// several node counts. `quick` shrinks the graphs, never the instance
/// count — the topology budget is the point of the experiment.
#[must_use]
pub fn standard_topo_specs(quick: bool) -> Vec<GraphSpec> {
    let mut specs = Vec::with_capacity(6 * SPECS_PER_FAMILY);
    for i in 0..SPECS_PER_FAMILY {
        let seed = i as u64;
        // Cycle sizes so each family covers a small range of n.
        let n_small = if quick { 6 + i % 3 } else { 8 + i % 5 };
        let n_er = if quick { 6 + i % 2 } else { 8 + i % 3 };
        let n_reg = if quick {
            6 + 2 * (i % 2)
        } else {
            8 + 2 * (i % 3)
        };
        specs.push(GraphSpec::ScrambledRing(SeededSpec { n: n_small, seed }));
        specs.push(GraphSpec::Tree(SeededSpec { n: n_small, seed }));
        specs.push(GraphSpec::ErdosRenyi(ErdosRenyiSpec {
            n: n_er,
            edge_permille: 300 + 100 * (i as u32 % 3),
            seed,
        }));
        specs.push(GraphSpec::Regular(RegularSpec {
            n: n_reg,
            d: 3,
            seed,
        }));
        specs.push(GraphSpec::permuted(
            GraphSpec::Ring(RingSpec { n: n_small }),
            seed,
        ));
        let (w, h) = if quick { (3, 3) } else { (3, 3 + i % 2) };
        specs.push(GraphSpec::permuted(
            GraphSpec::Torus(TorusSpec { w, h }),
            seed,
        ));
    }
    specs
}

/// Which algorithm a topo sweep runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Algo {
    Cheap,
    Fast,
}

/// Per-piece executor: build the algorithm on the piece's cached graph
/// (`Arc` shared by all of the spec's scenarios) and the pre-resolved
/// explorer (built once per spec by [`build_topo_grid`], shared by both
/// algorithm sweeps — a `DfsMapExplorer` precomputes a walk per node, so
/// rebuilding it per sweep would waste more than the graph cache saves),
/// then sweep through the shared engine with a per-entry schedule cache.
struct AlgoTopoExecutor {
    space: LabelSpace,
    which: Algo,
    /// `spec_index → explorer`, parallel to the topo grid's entries.
    explorers: Arc<Vec<Arc<dyn Explorer>>>,
}

impl AlgoTopoExecutor {
    fn algorithm(&self, entry: &TopoEntry) -> Box<dyn RendezvousAlgorithm> {
        let explorer = Arc::clone(&self.explorers[entry.spec_index]);
        match self.which {
            Algo::Cheap => Box::new(Cheap::new(entry.graph.clone(), explorer, self.space)),
            Algo::Fast => Box::new(Fast::new(entry.graph.clone(), explorer, self.space)),
        }
    }
}

impl PieceExecutor for AlgoTopoExecutor {
    fn run_piece(
        &self,
        runner: &Runner,
        piece: &WorkPiece<'_>,
    ) -> Result<(Vec<ScenarioOutcome>, Option<Bounds>), RunnerError> {
        let entry = piece.entry.expect("topology pieces carry their entry");
        let alg = self.algorithm(entry);
        let bounds = Bounds {
            time: alg.time_bound(),
            cost: alg.cost_bound(),
        };
        // Same engine switch (and telemetry attachment) as
        // `common::sweep_worst`: the batched executor folds at the
        // piece's global offsets, so reports and the shard ledger stay
        // byte-identical either way.
        let session = crate::telemetry::current();
        match crate::engine::current() {
            crate::engine::Engine::Stepped => {
                let mut executor = AlgorithmExecutor::new(alg.as_ref());
                if let Some(metrics) = &session {
                    executor = executor.with_metrics(metrics);
                }
                let outcomes = runner.outcomes(&executor, &piece.scenarios)?;
                Ok((outcomes, Some(bounds)))
            }
            crate::engine::Engine::Batched => {
                let mut executor = BatchExecutor::new(alg.as_ref()).with_bounds(Some(bounds));
                if let Some(metrics) = &session {
                    executor = executor.with_metrics(metrics);
                }
                executor.run_piece(runner, piece)
            }
        }
    }
}

/// Builds the X10 [`TopoGrid`] plus one explorer per spec: the scenario
/// grid uses the spec's own exploration bound `E` for delays and a
/// horizon generous for both algorithms, capped at `cap` scenarios — the
/// fixed per-topology budget that keeps a 600-graph sweep tractable.
///
/// Explorers are built exactly **once** here and shared by both the
/// `Cheap` and `Fast` sweeps (indexed by `spec_index`), mirroring the
/// graph cache one level up.
///
/// # Panics
///
/// Panics if a spec in the standard list fails to build (a bug in the
/// list, not a reportable outcome).
#[must_use]
pub fn build_topo_grid(
    specs: Vec<GraphSpec>,
    l: u64,
    cap: usize,
) -> (TopoGrid, Arc<Vec<Arc<dyn Explorer>>>) {
    let space = LabelSpace::new(l).expect("l >= 2");
    let pairs = standard_label_pairs(l);
    let mut explorers: Vec<Arc<dyn Explorer>> = Vec::new();
    let topo = TopoGrid::build(specs, |spec, graph| {
        let explorer = spec_explorer(spec, graph.clone()).expect("sound recipe");
        let e = explorer.bound() as u64;
        let cheap = Cheap::new(graph.clone(), explorer.clone(), space);
        let fast = Fast::new(graph.clone(), explorer.clone(), space);
        explorers.push(explorer);
        let horizon = 4 * cheap.time_bound().max(fast.time_bound());
        Grid::new(horizon)
            .label_pairs_both_orders(&pairs)
            .delays(&standard_delays(e))
            .all_start_pairs(graph)
            .sample_cap(cap)
    })
    .unwrap_or_else(|e| panic!("standard topo specs must build: {e}"));
    (topo, Arc::new(explorers))
}

/// The context string naming a sweep-service computation of one
/// algorithm (`None` for anything but `cheap`/`fast`). The context is
/// part of the store key, so `experiments serve` and `experiments
/// query --direct` must agree on it to address the same cache entries.
#[must_use]
pub fn serve_context(algorithm: &str) -> Option<&'static str> {
    match algorithm {
        "cheap" => Some("serve cheap"),
        "fast" => Some("serve fast"),
        _ => None,
    }
}

/// Sweeps a **single** seeded topology with one algorithm through the
/// shared recorded-sweep path — the compute side of the sweep service.
/// A served answer and a `query --direct` run both land here with the
/// same [`serve_context`], so they consult (and populate) the same
/// store entry and print byte-identical reports. `None` when
/// `algorithm` is not `cheap`/`fast`.
///
/// # Panics
///
/// Panics if the spec does not build or the grid is degenerate (`l <
/// 2`, `cap == 0`) — the serve front end validates queries before
/// calling, and the CLI treats its own arguments as trusted input.
#[must_use]
pub fn sweep_single_spec(
    algorithm: &str,
    spec: GraphSpec,
    l: u64,
    cap: usize,
    runner: &Runner,
) -> Option<SweepReport> {
    let (which, context) = match algorithm {
        "cheap" => (Algo::Cheap, "serve cheap"),
        "fast" => (Algo::Fast, "serve fast"),
        _ => return None,
    };
    let space = LabelSpace::new(l).expect("l >= 2");
    let (topo, explorers) = build_topo_grid(vec![spec], l, cap);
    let exec = AlgoTopoExecutor {
        space,
        which,
        explorers,
    };
    Some(crate::common::sweep_recorded(context, &topo, &exec, runner))
}

/// Sweeps one algorithm over the topo grid through the shared
/// [`common::sweep_recorded`](crate::common::sweep_recorded)
/// shard/replay path, asserting the paper's bounds held everywhere.
///
/// # Panics
///
/// Panics if any execution fails, if any scenario misses its paper
/// bounds ([`SweepReport::clean`]), or — in replay mode — if the merged
/// ledger came from a different sweep.
fn sweep_topo_worst(
    context: &str,
    topo: &TopoGrid,
    exec: &AlgoTopoExecutor,
    runner: &Runner,
) -> SweepReport {
    let report = crate::common::sweep_recorded(context, topo, exec, runner);
    assert!(
        report.clean(),
        "paper bounds broken on a sampled topology: {} failures, {} violations",
        report.failures(),
        report.violations()
    );
    report
}

/// One row of the X10 table: one family, both algorithms.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Family name.
    pub family: String,
    /// Seeded instances swept in this family.
    pub specs: usize,
    /// Scenarios executed per algorithm in this family.
    pub scenarios: usize,
    /// Worst `Cheap` time anywhere in the family.
    pub cheap_time: u64,
    /// The time bound of the worst-ratio witness, rendered as
    /// `time/bound` (bounds vary per spec, so a single number would lie).
    pub cheap_ratio: String,
    /// Worst `Cheap` cost.
    pub cheap_cost: u64,
    /// Worst `Fast` time.
    pub fast_time: u64,
    /// Worst-ratio witness of `Fast`, as `time/bound`.
    pub fast_ratio: String,
    /// Worst `Fast` cost.
    pub fast_cost: u64,
}

fn ratio_cell(report: &SweepReport, family: &str) -> String {
    match report.group(family).and_then(|f| f.worst_ratio.as_ref()) {
        Some(w) => w.ratio_label(),
        None => "-".into(),
    }
}

/// The result of one X10 run: the per-family table plus the two raw
/// aggregates (kept for tests and for plotting pipelines).
#[derive(Debug, Clone)]
pub struct Report {
    /// One row per family, sorted by family name.
    pub rows: Vec<Row>,
    /// Full `Cheap` aggregates, grouped by family.
    pub cheap: SweepReport,
    /// Full `Fast` aggregates, grouped by family.
    pub fast: SweepReport,
}

/// Runs X10: builds the topo grid over `specs`, sweeps `Cheap` and
/// `Fast`, and folds both into per-family rows.
///
/// # Panics
///
/// Panics if any sampled scenario breaks the paper bounds — that is the
/// claim under test.
#[must_use]
pub fn run(specs: Vec<GraphSpec>, l: u64, cap: usize, runner: &Runner) -> Report {
    let space = LabelSpace::new(l).expect("l >= 2");
    let (topo, explorers) = build_topo_grid(specs, l, cap);
    let cheap = sweep_topo_worst(
        "x10 cheap",
        &topo,
        &AlgoTopoExecutor {
            space,
            which: Algo::Cheap,
            explorers: Arc::clone(&explorers),
        },
        runner,
    );
    let fast = sweep_topo_worst(
        "x10 fast",
        &topo,
        &AlgoTopoExecutor {
            space,
            which: Algo::Fast,
            explorers,
        },
        runner,
    );
    // Family → spec count from the grid itself (identical in direct,
    // shard and replay runs, since all rebuild the same TopoGrid).
    let mut spec_counts: Vec<(String, usize)> = Vec::new();
    for entry in topo.entries() {
        let family = entry.spec.family();
        match spec_counts.binary_search_by(|(f, _)| f.as_str().cmp(&family)) {
            Ok(i) => spec_counts[i].1 += 1,
            Err(i) => spec_counts.insert(i, (family, 1)),
        }
    }
    let rows = spec_counts
        .iter()
        .map(|(family, specs)| {
            let c = cheap.group(family);
            let f = fast.group(family);
            Row {
                family: family.clone(),
                specs: *specs,
                scenarios: c.map_or(0, |s| s.executed),
                cheap_time: c.map_or(0, |s| s.max_time),
                cheap_ratio: ratio_cell(&cheap, family),
                cheap_cost: c.map_or(0, |s| s.max_cost),
                fast_time: f.map_or(0, |s| s.max_time),
                fast_ratio: ratio_cell(&fast, family),
                fast_cost: f.map_or(0, |s| s.max_cost),
            }
        })
        .collect();
    Report { rows, cheap, fast }
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "family",
        "specs",
        "scenarios",
        "cheap time",
        "worst t/bound",
        "cheap cost",
        "fast time",
        "worst t/bound",
        "fast cost",
    ];
    let body = rows
        .iter()
        .map(|r| {
            vec![
                r.family.clone(),
                r.specs.to_string(),
                r.scenarios.to_string(),
                r.cheap_time.to_string(),
                r.cheap_ratio.clone(),
                r.cheap_cost.to_string(),
                r.fast_time.to_string(),
                r.fast_ratio.clone(),
                r.fast_cost.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    markdown_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance sweep: ≥ 100 seeded graphs in every family under a
    /// fixed per-spec scenario cap, every sampled scenario within the
    /// paper's Cheap/Fast bounds computed from that instance's own `E`.
    /// (Kept affordable for debug-mode `cargo test` by a small cap — the
    /// release CI run uses the full quick budget.)
    #[test]
    fn x10_hundred_seeded_graphs_per_family_stay_within_bounds() {
        let specs = standard_topo_specs(true);
        let report = run(specs, 4, 3, &Runner::parallel());
        assert_eq!(report.rows.len(), 6, "six families");
        for row in &report.rows {
            assert!(
                row.specs >= SPECS_PER_FAMILY,
                "{}: only {} seeded instances",
                row.family,
                row.specs
            );
            assert!(row.scenarios >= row.specs, "{}: empty grids", row.family);
        }
        // `run` itself asserts clean(); double-check the aggregates here
        // so the guarantee is visible in the test, not just the harness.
        assert!(report.cheap.clean() && report.fast.clean());
        let families: Vec<&str> = report.rows.iter().map(|r| r.family.as_str()).collect();
        assert_eq!(
            families,
            [
                "erdos-renyi",
                "permuted-ring",
                "permuted-torus",
                "regular",
                "scrambled-ring",
                "tree"
            ]
        );
    }

    /// The spec list itself is stable and fully seeded: rebuilding it
    /// yields identical specs (the sharded CI check depends on every
    /// process enumerating the same topologies).
    #[test]
    fn standard_spec_list_is_deterministic() {
        for quick in [false, true] {
            let a = standard_topo_specs(quick);
            let b = standard_topo_specs(quick);
            assert_eq!(a, b);
            assert_eq!(a.len(), 6 * SPECS_PER_FAMILY);
        }
    }
}
