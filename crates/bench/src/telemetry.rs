//! Process-global telemetry session for the experiments binary.
//!
//! Like the engine selection ([`crate::engine`]) and the sharding
//! session ([`crate::sharding`]), telemetry is a process-global the CLI
//! installs once before any sweep runs: experiment code deep inside
//! `sweep_worst` or the X10 per-piece executor just asks [`current`]
//! at its executor construction points and attaches the sink if one is
//! installed. No sink installed (the default, and every unit test)
//! means zero overhead and — by construction — zero output difference:
//! the sink only ever *observes* sweeps, it never enters a fold.

use rendezvous_telemetry::Metrics;
use std::sync::{Arc, OnceLock};

static METRICS: OnceLock<Arc<Metrics>> = OnceLock::new();

/// Installs (or returns the already-installed) process-wide metrics
/// sink. First call wins; the sink lives for the rest of the process.
pub fn install() -> Arc<Metrics> {
    Arc::clone(METRICS.get_or_init(|| Arc::new(Metrics::new())))
}

/// The installed sink, if the CLI enabled telemetry for this process.
#[must_use]
pub fn current() -> Option<Arc<Metrics>> {
    METRICS.get().map(Arc::clone)
}
