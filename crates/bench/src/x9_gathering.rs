//! Experiment X9 (extension) — gathering `k ≥ 2` agents by
//! merge-and-restart on top of the paper's two-agent algorithms.
//!
//! The paper cites gathering as the natural generalization (§1.4); the
//! merge-and-restart argument (see `rendezvous-core::GatheringAgent`)
//! predicts completion within `(k−1)` pairwise-bound windows. Expected
//! shape: rounds grow at most linearly in `k`, never exceeding
//! `(k−1) · (two-agent time bound + max delay)`.

use crate::common::ring_setup;
use rendezvous_core::{gathering_fleet, Fast, LabelSpace, RendezvousAlgorithm};
use rendezvous_graph::NodeId;
use rendezvous_runner::Runner;
use rendezvous_sim::gathering::run_gathering;
use serde::Serialize;
use std::sync::Arc;

/// One row of the X9 table.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Ring size.
    pub n: usize,
    /// Fleet size.
    pub k: usize,
    /// Rounds until all agents shared a node.
    pub rounds: u64,
    /// The merge-and-restart bound `(k−1)·(time bound + max delay)`.
    pub bound: u64,
    /// Total edge traversals.
    pub cost: u64,
    /// Number of merge events observed (cluster-count decreases).
    pub merges: usize,
}

/// Runs gatherings of increasing fleet size on an `n`-ring with label
/// space `L` (labels and starts spread deterministically; staggered
/// wake-ups).
///
/// # Panics
///
/// Panics if a gathering fails to complete within the analytic bound —
/// a correctness violation of the merge-and-restart argument.
#[must_use]
pub fn run(n: usize, l: u64, ks: &[usize], runner: &Runner) -> Vec<Row> {
    let (g, ex) = ring_setup(n);
    let space = LabelSpace::new(l).expect("l >= 2");
    let alg: Arc<dyn RendezvousAlgorithm> = Arc::new(Fast::new(g.clone(), ex, space));
    runner.map(ks.to_vec(), |_, k| {
        assert!(k >= 2 && k <= n && (k as u64) <= l, "fleet must fit");
        let placements: Vec<(u64, NodeId, u64)> = (0..k)
            .map(|i| {
                let label = 1 + (i as u64 * (l - 1)) / (k as u64 - 1).max(1);
                let start = NodeId::new(i * n / k);
                let delay = (7 * i as u64) % 13;
                (label, start, delay)
            })
            .collect();
        let max_delay = placements.iter().map(|p| p.2).max().unwrap_or(0);
        let bound = (k as u64 - 1) * (alg.time_bound() + max_delay);
        let fleet = gathering_fleet(&alg, &placements).expect("valid placements");
        let out = run_gathering(&g, fleet, 4 * bound).expect("engine ok");
        assert!(out.gathered_all(), "gathering must complete (k = {k})");
        let merges = out
            .cluster_history
            .windows(2)
            .filter(|w| w[1] < w[0])
            .count()
            + 1; // the initial k clusters count as the baseline
        Row {
            n,
            k,
            rounds: out.rounds_executed,
            bound,
            cost: out.cost(),
            merges,
        }
    })
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "n",
        "k",
        "rounds",
        "bound (k-1)(T+d)",
        "cost",
        "merge events",
    ];
    let body = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.k.to_string(),
                r.rounds.to_string(),
                r.bound.to_string(),
                r.cost.to_string(),
                r.merges.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    crate::common::markdown_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x9_gathering_scales_linearly_in_k() {
        let rows = run(12, 32, &[2, 3, 5], &Runner::with_threads(3));
        for r in &rows {
            assert!(r.rounds <= r.bound, "k={}: {} > {}", r.k, r.rounds, r.bound);
        }
        // more agents may take longer but never superlinearly
        assert!(rows[2].rounds <= 4 * rows[0].bound);
    }
}
