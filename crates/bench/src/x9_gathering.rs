//! Experiment X9 (extension) — gathering `k ≥ 2` agents by
//! merge-and-restart on top of the paper's two-agent algorithms.
//!
//! The paper cites gathering as the natural generalization (§1.4); the
//! merge-and-restart argument (see `rendezvous-core::GatheringAgent`)
//! predicts completion within `(k−1)` pairwise-bound windows. Expected
//! shape: rounds grow at most linearly in `k`, never exceeding
//! `(k−1) · (two-agent time bound + max delay)`.
//!
//! Since the `Scenario` redesign, X9 runs **through the Runner's
//! generic workload path**: each fleet size is a [`Grid`] in fleet mode
//! (the standard [`FleetRule`] spread × a delay-phase axis), executed by
//! the [`GatheringExecutor`] and folded into a
//! [`SweepReport`](rendezvous_runner::SweepReport) — which means
//! gathering sweeps shard, merge and replay through the unified ledger
//! exactly like the adversarial pair sweeps of X1–X8.

use crate::common::{ring_setup, sweep_recorded};
use rendezvous_core::{Fast, LabelSpace, RendezvousAlgorithm};
use rendezvous_runner::{FleetRule, GatheringExecutor, Grid, GroupStats, Runner};
use serde::Serialize;
use std::sync::Arc;

/// One row of the X9 table.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Ring size.
    pub n: usize,
    /// Fleet size.
    pub k: usize,
    /// Delay-phase scenarios swept for this fleet size.
    pub scenarios: usize,
    /// Worst rounds-to-gather anywhere in the sweep (`max_time`).
    pub rounds: u64,
    /// The loosest merge-and-restart bound `(k−1)·(time bound + max
    /// delay)` over the sweep's scenarios. Every run met its own
    /// (possibly tighter) bound, so `rounds ≤ bound` always holds.
    pub bound: u64,
    /// The worst `rounds / bound` ratio, rendered as `rounds/bound` (the
    /// bound varies per scenario with the delays, so a single number
    /// would lie) — same semantics as the X11 column.
    pub ratio: String,
    /// Worst total edge traversals anywhere in the sweep.
    pub cost: u64,
    /// Cluster-merge events observed across the sweep (0-based: a run
    /// with no cluster-count decrease contributes nothing).
    pub merges: u64,
}

/// The delay-phase axis of one X9 sweep: each phase shifts the whole
/// stagger pattern through the rule's modulus, so every agent's wake-up
/// moves — the fleet analogue of the pair sweeps' delay axis.
#[must_use]
pub fn standard_phases() -> Vec<u64> {
    vec![0, 3, 9]
}

/// Runs gatherings of increasing fleet size on an `n`-ring with label
/// space `L` (labels and starts spread deterministically by the standard
/// [`FleetRule`]; wake-ups staggered, swept over
/// [`standard_phases`]). One grid sweep per fleet size, through the
/// shared shard/replay path.
///
/// # Panics
///
/// Panics if a gathering fails to complete within the analytic bound —
/// a correctness violation of the merge-and-restart argument.
#[must_use]
pub fn run(n: usize, l: u64, ks: &[usize], runner: &Runner) -> Vec<Row> {
    let (g, ex) = ring_setup(n);
    let space = LabelSpace::new(l).expect("l >= 2");
    let alg: Arc<dyn RendezvousAlgorithm> = Arc::new(Fast::new(g.clone(), ex, space));
    let executor = GatheringExecutor::new(Arc::clone(&alg));
    let rule = FleetRule::spread(&g, l);
    ks.iter()
        .map(|&k| {
            assert!(k >= 2 && k <= n && (k as u64) <= l, "fleet must fit");
            // The loosest phase yields the largest stagger delay; a
            // horizon of 4× that bound is generous for every phase in
            // the axis.
            let worst_bound = (k as u64 - 1) * (alg.time_bound() + rule.max_delay());
            let grid = Grid::new(4 * worst_bound)
                .fleet_sizes(&[k])
                .fleet_rule(rule.clone())
                .delays(&standard_phases());
            // The loosest per-scenario bound actually in the sweep (the
            // phases never reach the stagger's full modulus, so this is
            // tighter than `worst_bound`); identical in direct, shard
            // and replay runs, since all rebuild the same grid.
            let loosest = grid
                .scenarios()
                .iter()
                .map(|s| executor.merge_restart_bound(s))
                .max()
                .expect("non-empty fleet grid");
            let stats = sweep_recorded(&format!("x9 k={k}"), &grid, &executor, runner).solo();
            row(n, k, loosest, &stats)
        })
        .collect()
}

/// Builds one table row from a fleet sweep's aggregates, asserting the
/// merge-and-restart guarantee held on every sampled scenario. The
/// stats may be a shard's **partial** fold (possibly empty — a shard of
/// a 3-scenario grid is legitimately empty for m > 3), whose rows are
/// never emitted; the ratio cell is `-` when no outcome carried one.
fn row(n: usize, k: usize, loosest_bound: u64, stats: &GroupStats) -> Row {
    assert_eq!(
        stats.failures, 0,
        "gathering must complete (k = {k}): {} of {} timed out",
        stats.failures, stats.executed
    );
    assert_eq!(
        stats.time_violations, 0,
        "merge-and-restart bound broken for k = {k}"
    );
    let ratio = stats
        .worst_ratio
        .as_ref()
        .map_or_else(|| "-".into(), rendezvous_runner::Witness::ratio_label);
    Row {
        n,
        k,
        scenarios: stats.executed,
        rounds: stats.max_time,
        bound: loosest_bound,
        ratio,
        cost: stats.max_cost,
        merges: stats.merges,
    }
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "n",
        "k",
        "scenarios",
        "worst rounds",
        "bound (k-1)(T+d)",
        "worst r/bound",
        "worst cost",
        "merge events",
    ];
    let body = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.k.to_string(),
                r.scenarios.to_string(),
                r.rounds.to_string(),
                r.bound.to_string(),
                r.ratio.clone(),
                r.cost.to_string(),
                r.merges.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    crate::common::markdown_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x9_gathering_scales_linearly_in_k() {
        let rows = run(12, 32, &[2, 3, 5], &Runner::with_threads(3));
        for r in &rows {
            assert!(r.rounds <= r.bound, "k={}: {} > {}", r.k, r.rounds, r.bound);
            assert_eq!(r.scenarios, standard_phases().len());
            // Every completed run needs at least one merge event (it must
            // reach a single cluster); a round can merge several clusters
            // at once, so k−1 per run is not guaranteed.
            assert!(
                r.merges >= r.scenarios as u64,
                "k={}: {} merge events over {} gatherings",
                r.k,
                r.merges,
                r.scenarios
            );
        }
        // more agents may take longer but never superlinearly
        assert!(rows[2].rounds <= 4 * rows[0].bound);
    }

    /// Regression (satellite of the fleet redesign): the merge count is
    /// 0-based. A two-agent gathering whose pair meets exactly once must
    /// report exactly one merge event per swept scenario — the old
    /// `windows(2) + 1` count reported two, and reported one for runs
    /// with no cluster-count decrease at all.
    #[test]
    fn x9_merge_count_is_zero_based() {
        let rows = run(8, 8, &[2], &Runner::sequential());
        let r = &rows[0];
        assert_eq!(
            r.merges, r.scenarios as u64,
            "a pair gathers with exactly one merge event per scenario"
        );
    }

    /// Regression: a shard run can hand `row()` a **partial** (even
    /// empty) fold — for m > 3 some shard of every 3-scenario per-k grid
    /// executes nothing. The old code `expect`ed a ratio witness and
    /// crashed the shard emission; partial rows (which are never
    /// emitted) must build cleanly instead.
    #[test]
    fn x9_rows_tolerate_empty_shard_partials() {
        let empty = GroupStats::default();
        let r = row(12, 4, 858, &empty);
        assert_eq!(r.ratio, "-");
        assert_eq!((r.scenarios, r.rounds, r.cost, r.merges), (0, 0, 0, 0));
    }

    /// X9 rides the shard ledger now: a 3-shard split of the same run
    /// merges back to the identical table rows.
    #[test]
    fn x9_shard_merge_reproduces_the_direct_rows() {
        use rendezvous_runner::SweepReport;
        let (n, l, ks) = (9, 16, [2usize, 3]);
        let (g, ex) = ring_setup(n);
        let space = LabelSpace::new(l).unwrap();
        let alg: Arc<dyn RendezvousAlgorithm> = Arc::new(Fast::new(g.clone(), ex, space));
        let executor = GatheringExecutor::new(Arc::clone(&alg));
        let rule = FleetRule::spread(&g, l);
        for &k in &ks {
            let worst_bound = (k as u64 - 1) * (alg.time_bound() + rule.max_delay());
            let grid = Grid::new(4 * worst_bound)
                .fleet_sizes(&[k])
                .fleet_rule(rule.clone())
                .delays(&standard_phases());
            let direct = Runner::sequential().sweep(&grid, &executor).unwrap();
            let mut merged = SweepReport::default();
            for i in 0..3 {
                let shard = Runner::sequential()
                    .sweep_shard(&grid, i, 3, &executor)
                    .unwrap();
                merged = merged.merge(&shard);
            }
            assert_eq!(merged, direct, "k = {k}");
        }
    }
}
