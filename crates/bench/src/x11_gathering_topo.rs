//! Experiment X11 — gathering across the topology grid: the §1.4
//! generalization (`k ≥ 2` agents assembling at one node) swept over
//! **every seeded graph family**.
//!
//! X9 checks merge-and-restart gathering on the oriented ring; X10
//! sweeps the two-agent algorithms over hundreds of seeded topologies.
//! X11 composes the two, which the `Scenario` redesign makes a pure
//! configuration exercise: each [`GraphSpec`]'s entry in the
//! [`TopoGrid`] is a **fleet-mode** [`Grid`] (fleet sizes × start
//! rotations × delay phases, expanded by the standard [`FleetRule`]
//! spread), executed by the [`GatheringExecutor`] and folded into a
//! per-family [`SweepReport`] — worst rounds, worst rounds/bound ratio
//! (against each scenario's own merge-and-restart bound
//! `(k−1)·(time bound + max delay)`, compared by exact `u128`
//! cross-multiplication) and total merge events.
//!
//! The sweep shards across processes exactly like X10:
//! `experiments x11 --shard i/m --emit-shard` / `--merge-shards` carry
//! the per-shard [`SweepReport`]s through the unified shard ledger, and
//! the merged run is byte-identical to a direct one (CI-checked).

use crate::common::{markdown_table, sweep_recorded};
use rendezvous_core::{Fast, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::{spec_explorer, Explorer};
use rendezvous_graph::GraphSpec;
use rendezvous_runner::{
    Bounds, FleetRule, GatheringExecutor, Grid, PieceExecutor, Runner, RunnerError,
    ScenarioOutcome, SweepReport, TopoGrid, WorkPiece,
};
use serde::Serialize;
use std::sync::Arc;

/// Fleet sizes swept per topology; `quick` trims the axis, never the
/// spec count (the topology budget is the point, as in X10).
#[must_use]
pub fn standard_fleet_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![2, 3]
    } else {
        vec![2, 3, 4]
    }
}

/// Delay phases swept per topology (each shifts every agent's staggered
/// wake-up through the rule's modulus).
#[must_use]
pub fn standard_phases(quick: bool) -> Vec<u64> {
    if quick {
        vec![0, 5]
    } else {
        vec![0, 3, 9]
    }
}

/// Per-entry context resolved **once** at grid-build time: the spec's
/// explorer and the entry-level [`Bounds`] — the loosest per-scenario
/// merge-and-restart bound over the entry's capped grid for time, and
/// `k · bound` for cost (each of `k` agents traverses at most one edge
/// per round). Computing these here instead of per `run_entry` call
/// avoids re-enumerating every entry's grid on every sweep (and on
/// every shard piece), and keeps them identical across pieces so
/// sharded sweeps fold byte-identically.
pub struct EntryContext {
    explorer: Arc<dyn Explorer>,
    bounds: Bounds,
}

/// Builds the X11 [`TopoGrid`] plus one [`EntryContext`] per spec: every
/// entry is a fleet-mode grid — the given fleet sizes (clipped to what
/// the graph and label space can hold) × two start rotations × the
/// delay phases — capped at `cap` scenarios, with a horizon generous
/// for the loosest merge-and-restart bound in the entry.
///
/// # Panics
///
/// Panics if a spec fails to build (a bug in the spec list), or if no
/// fleet size fits some graph.
#[must_use]
pub fn build_gathering_topo_grid(
    specs: Vec<GraphSpec>,
    l: u64,
    ks: &[usize],
    phases: &[u64],
    cap: usize,
) -> (TopoGrid, Arc<Vec<EntryContext>>) {
    let space = LabelSpace::new(l).expect("l >= 2");
    let mut contexts: Vec<EntryContext> = Vec::new();
    let topo = TopoGrid::build(specs, |spec, graph| {
        let explorer = spec_explorer(spec, graph.clone()).expect("sound recipe");
        let alg: Arc<dyn RendezvousAlgorithm> =
            Arc::new(Fast::new(graph.clone(), explorer.clone(), space));
        let executor = GatheringExecutor::new(Arc::clone(&alg));
        let fit: Vec<usize> = ks
            .iter()
            .copied()
            .filter(|&k| k <= graph.node_count() && (k as u64) <= l)
            .collect();
        assert!(!fit.is_empty(), "no fleet size fits {spec:?}");
        let k_max = *fit.iter().max().expect("non-empty") as u64;
        let rule = FleetRule::spread(graph, l);
        let loosest_bound = (k_max - 1) * (alg.time_bound() + rule.max_delay());
        let grid = Grid::new(4 * loosest_bound)
            .fleet_sizes(&fit)
            .fleet_rule(rule)
            .fleet_rotations(&[0, 1])
            .delays(phases)
            .sample_cap(cap);
        // Entry-level bounds from the capped grid actually swept —
        // tighter than `loosest_bound`, since the phase axis rarely
        // reaches the stagger's full modulus.
        let mut time_bound = 0u64;
        let mut cost_bound = 0u64;
        for s in grid.scenarios() {
            let b = executor.merge_restart_bound(&s);
            time_bound = time_bound.max(b);
            cost_bound = cost_bound.max(s.k() as u64 * b);
        }
        contexts.push(EntryContext {
            explorer,
            bounds: Bounds {
                time: time_bound,
                cost: cost_bound,
            },
        });
        grid
    })
    .unwrap_or_else(|e| panic!("standard topo specs must build: {e}"));
    (topo, Arc::new(contexts))
}

/// Per-entry gathering executor: builds `Fast` on the entry's cached
/// graph and pre-resolved explorer, wraps it in a [`GatheringExecutor`],
/// and reports the entry-level [`Bounds`] precomputed by
/// [`build_gathering_topo_grid`].
struct GatheringTopoExecutor {
    space: LabelSpace,
    /// `spec_index → (explorer, bounds)`, parallel to the grid's entries.
    contexts: Arc<Vec<EntryContext>>,
}

impl PieceExecutor for GatheringTopoExecutor {
    fn run_piece(
        &self,
        runner: &Runner,
        piece: &WorkPiece<'_>,
    ) -> Result<(Vec<ScenarioOutcome>, Option<Bounds>), RunnerError> {
        let entry = piece.entry.expect("topology pieces carry their entry");
        let context = &self.contexts[entry.spec_index];
        let alg: Arc<dyn RendezvousAlgorithm> = Arc::new(Fast::new(
            entry.graph.clone(),
            Arc::clone(&context.explorer),
            self.space,
        ));
        let outcomes = runner.outcomes(&GatheringExecutor::new(alg), &piece.scenarios)?;
        Ok((outcomes, Some(context.bounds)))
    }
}

/// One row of the X11 table: one family, all sampled fleets.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Family name.
    pub family: String,
    /// Seeded instances swept in this family.
    pub specs: usize,
    /// Gathering scenarios executed in this family.
    pub scenarios: usize,
    /// Worst rounds-to-gather anywhere in the family.
    pub rounds: u64,
    /// The worst `rounds / merge-and-restart bound` ratio, rendered as
    /// `rounds/bound` (the bound varies per scenario with `k` and the
    /// delays, so a single number would lie).
    pub ratio: String,
    /// Worst total edge traversals.
    pub cost: u64,
    /// Cluster-merge events observed across the family.
    pub merges: u64,
}

/// The result of one X11 run: the per-family table plus the raw
/// aggregate (kept for tests and plotting pipelines).
#[derive(Debug, Clone)]
pub struct Report {
    /// One row per family, sorted by family name.
    pub rows: Vec<Row>,
    /// Full gathering aggregates, grouped by family.
    pub stats: SweepReport,
}

/// Runs X11: builds the gathering topo grid over `specs`, sweeps it
/// (honoring an active sharding session), and folds per-family rows.
///
/// # Panics
///
/// Panics if any sampled gathering fails to complete within its
/// merge-and-restart bound `(k−1)·(time bound + max delay)` — that is
/// the claim under test.
#[must_use]
pub fn run(
    specs: Vec<GraphSpec>,
    l: u64,
    ks: &[usize],
    phases: &[u64],
    cap: usize,
    runner: &Runner,
) -> Report {
    let space = LabelSpace::new(l).expect("l >= 2");
    let (topo, contexts) = build_gathering_topo_grid(specs, l, ks, phases, cap);
    let stats = sweep_recorded(
        "x11 gathering",
        &topo,
        &GatheringTopoExecutor { space, contexts },
        runner,
    );
    assert!(
        stats.clean(),
        "merge-and-restart bound broken on a sampled topology: {} failures, {} violations",
        stats.failures(),
        stats.violations()
    );
    // Family → spec count from the grid itself (identical in direct,
    // shard and replay runs, since all rebuild the same TopoGrid).
    let mut spec_counts: Vec<(String, usize)> = Vec::new();
    for entry in topo.entries() {
        let family = entry.spec.family();
        match spec_counts.binary_search_by(|(f, _)| f.as_str().cmp(&family)) {
            Ok(i) => spec_counts[i].1 += 1,
            Err(i) => spec_counts.insert(i, (family, 1)),
        }
    }
    let rows = spec_counts
        .iter()
        .map(|(family, specs)| {
            let f = stats.group(family);
            let ratio = f
                .and_then(|s| s.worst_ratio.as_ref())
                .map_or_else(|| "-".into(), rendezvous_runner::Witness::ratio_label);
            Row {
                family: family.clone(),
                specs: *specs,
                scenarios: f.map_or(0, |s| s.executed),
                rounds: f.map_or(0, |s| s.max_time),
                ratio,
                cost: f.map_or(0, |s| s.max_cost),
                merges: f.map_or(0, |s| s.merges),
            }
        })
        .collect();
    Report { rows, stats }
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "family",
        "specs",
        "scenarios",
        "worst rounds",
        "worst r/bound",
        "worst cost",
        "merge events",
    ];
    let body = rows
        .iter()
        .map(|r| {
            vec![
                r.family.clone(),
                r.specs.to_string(),
                r.scenarios.to_string(),
                r.rounds.to_string(),
                r.ratio.clone(),
                r.cost.to_string(),
                r.merges.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    markdown_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::x10_topologies::standard_topo_specs;

    /// A debug-affordable slice of the acceptance sweep: every family
    /// present, every sampled gathering within its own
    /// merge-and-restart bound. (The release CI run uses the full quick
    /// budget and additionally diffs a 3-shard merge.)
    #[test]
    fn x11_gathering_stays_within_merge_and_restart_bounds_per_family() {
        // The standard list cycles the six families with period 6, so a
        // stride of 7 (coprime to 6) visits every family; 30 specs keep
        // the debug run affordable at 5 seeded instances per family.
        let specs: Vec<GraphSpec> = standard_topo_specs(true)
            .into_iter()
            .step_by(7)
            .take(30)
            .collect();
        let report = run(specs, 4, &[2, 3], &[0, 5], 2, &Runner::parallel());
        assert_eq!(report.rows.len(), 6, "six families");
        for row in &report.rows {
            assert!(row.scenarios > 0, "{}: empty grids", row.family);
            assert!(
                row.merges >= row.scenarios as u64,
                "{}: every gathering merges at least once",
                row.family
            );
        }
        // `run` itself asserts clean(); restate it visibly.
        assert!(report.stats.clean());
    }

    /// Sharded X11 reproduces the direct sweep exactly — the property
    /// the CI end-to-end diff depends on.
    #[test]
    fn x11_shard_merge_equals_direct_topo_stats() {
        let specs: Vec<GraphSpec> = standard_topo_specs(true).into_iter().step_by(40).collect();
        let (topo, contexts) = build_gathering_topo_grid(specs, 4, &[2, 3], &[0, 5], 2);
        let exec = GatheringTopoExecutor {
            space: LabelSpace::new(4).unwrap(),
            contexts,
        };
        let direct = Runner::sequential().sweep(&topo, &exec).unwrap();
        for m in [2usize, 3] {
            let mut merged = SweepReport::default();
            for i in 0..m {
                let shard = Runner::sequential()
                    .sweep_shard(&topo, i, m, &exec)
                    .unwrap();
                merged = merged.merge(&shard);
            }
            assert_eq!(merged, direct, "m = {m}");
        }
    }
}
