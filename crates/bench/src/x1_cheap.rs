//! Experiment X1 — Proposition 2.1: `Cheap` has cost ≤ 3E and time
//! ≤ (2L+1)E; the simultaneous-start variant has cost ≤ E and time
//! ≤ (L−1)E.
//!
//! Sweep `L` at fixed ring size; the expected *shape* is time growing
//! linearly in `L` while cost stays pinned at ≤ 3E (≤ E simultaneous).

use crate::common::{
    all_label_pairs, measure_worst, ring_setup, standard_delays, standard_label_pairs,
};
use rendezvous_core::{Cheap, CheapSimultaneous, LabelSpace, RendezvousAlgorithm};
use rendezvous_runner::Runner;
use serde::Serialize;

/// One row of the X1 table.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Ring size.
    pub n: usize,
    /// Label-space size.
    pub l: u64,
    /// Exploration bound `E = n − 1`.
    pub e: u64,
    /// Measured worst time of `Cheap` (sampled adversary).
    pub cheap_time: u64,
    /// Paper bound `(2L+1)E`.
    pub cheap_time_bound: u64,
    /// Measured worst cost of `Cheap`.
    pub cheap_cost: u64,
    /// Paper bound `3E`.
    pub cheap_cost_bound: u64,
    /// Measured worst time of `CheapSimultaneous` (delay 0 only).
    pub sim_time: u64,
    /// Paper bound `(L−1)E`.
    pub sim_time_bound: u64,
    /// Measured worst cost of `CheapSimultaneous`.
    pub sim_cost: u64,
    /// Paper bound `E` ("cost exactly E" in the worst case).
    pub sim_cost_bound: u64,
}

/// Runs the sweep. `exhaustive_labels` switches between all `C(L,2)` label
/// pairs (slow, small `L`) and the standard adversarial sample.
#[must_use]
pub fn run(n: usize, ls: &[u64], exhaustive_labels: bool, runner: &Runner) -> Vec<Row> {
    let (g, ex) = ring_setup(n);
    let e = (n - 1) as u64;
    let delays = standard_delays(e);
    ls.iter()
        .map(|&l| {
            let space = LabelSpace::new(l).expect("l >= 2");
            let pairs = if exhaustive_labels {
                all_label_pairs(l)
            } else {
                standard_label_pairs(l)
            };
            let cheap = Cheap::new(g.clone(), ex.clone(), space);
            let mc = measure_worst(&cheap, &pairs, &delays, 4 * cheap.time_bound(), runner);
            let sim = CheapSimultaneous::new(g.clone(), ex.clone(), space);
            let ms = measure_worst(&sim, &pairs, &[0], 4 * sim.time_bound() + e, runner);
            Row {
                n,
                l,
                e,
                cheap_time: mc.time,
                cheap_time_bound: cheap.time_bound(),
                cheap_cost: mc.cost,
                cheap_cost_bound: cheap.cost_bound(),
                sim_time: ms.time,
                sim_time_bound: sim.time_bound(),
                sim_cost: ms.cost,
                sim_cost_bound: sim.cost_bound(),
            }
        })
        .collect()
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "n",
        "L",
        "E",
        "cheap time",
        "bound (2L+1)E",
        "cheap cost",
        "bound 3E",
        "sim time",
        "bound (L-1)E",
        "sim cost",
        "bound E",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.l.to_string(),
                r.e.to_string(),
                r.cheap_time.to_string(),
                r.cheap_time_bound.to_string(),
                r.cheap_cost.to_string(),
                r.cheap_cost_bound.to_string(),
                r.sim_time.to_string(),
                r.sim_time_bound.to_string(),
                r.sim_cost.to_string(),
                r.sim_cost_bound.to_string(),
            ]
        })
        .collect();
    crate::common::markdown_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x1_bounds_hold_and_shape_is_linear_in_l() {
        let rows = run(8, &[2, 4, 8], true, &Runner::with_threads(4));
        for r in &rows {
            assert!(r.cheap_time <= r.cheap_time_bound);
            assert!(r.cheap_cost <= r.cheap_cost_bound);
            assert!(r.sim_time <= r.sim_time_bound);
            assert!(r.sim_cost <= r.sim_cost_bound);
            // the simultaneous variant really costs at most one exploration
            assert!(r.sim_cost <= r.e);
        }
        // Shape: worst time grows with L (linearly for Cheap).
        assert!(rows[2].cheap_time > rows[0].cheap_time);
        assert!(rows[2].sim_time > rows[0].sim_time);
        // Cost does NOT grow with L.
        assert!(rows[2].cheap_cost <= rows[0].cheap_cost_bound);
        let t = render(&rows);
        assert!(t.contains("bound 3E"));
    }
}
