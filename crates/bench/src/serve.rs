//! `experiments serve` — the sweep query service over a result store.
//!
//! The server binds a loopback TCP socket and answers length-framed
//! JSON queries (the same wire discipline as the fabric:
//! [`rendezvous_fabric::wire`]) against a content-addressed store
//! directory. A query names a sweep either by its exact store token or
//! by its defining parameters (algorithm + [`GraphSpec`] + grid
//! shape); the answer is the full [`SweepReport`] — served from the
//! store when the entry exists, computed (and recorded) through the
//! ordinary sweep path on a miss. Schema or fingerprint drift in a
//! stored entry produces a *typed refusal*, never a wrong answer: the
//! store's read path treats every inconsistency as a miss, and the
//! token path surfaces the miss kind verbatim.
//!
//! Byte-identity discipline: the compute path is
//! [`sweep_single_spec`](crate::x10_topologies::sweep_single_spec) —
//! the exact path `experiments query --direct` runs locally — so a
//! served report and a direct run print identical bytes (CI diffs
//! them on every push).

use rendezvous_fabric::wire::{read_json_frame, write_json_frame};
use rendezvous_graph::GraphSpec;
use rendezvous_runner::{Runner, SweepReport, Workload};
use rendezvous_store::{Miss, Store, StoreKey, SCHEMA_VERSION};
use serde::{Deserialize, Serialize};
use std::net::{TcpListener, TcpStream};
use std::path::Path;

/// One question to the sweep service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Query {
    /// Fetch a stored entry by its exact store token. Never computes:
    /// a token alone does not describe the workload, so anything but a
    /// clean hit is a refusal.
    Token {
        /// The entry's file name under the store root.
        token: String,
    },
    /// One algorithm's sweep of one seeded topology —
    /// cached-or-computed.
    Grid {
        /// `cheap` or `fast`.
        algorithm: String,
        /// The topology to sweep.
        spec: GraphSpec,
        /// Label-space size (`>= 2`).
        l: u64,
        /// Per-spec scenario sample cap (`>= 1`).
        cap: usize,
    },
    /// Stop the server after a `Bye` reply.
    Shutdown,
}

/// The service's answer to one [`Query`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Reply {
    /// The sweep's full report.
    Report {
        /// `true` when the store already held the entry; `false` when
        /// this query computed (and recorded) it.
        cached: bool,
        /// The store token addressing the entry.
        token: String,
        /// The report — byte-identical to a direct run's.
        report: SweepReport,
    },
    /// Token query for an entry the store does not cleanly hold
    /// (absent or unreadable).
    NotCached {
        /// The miss, verbatim.
        reason: String,
    },
    /// Typed refusal: the entry was written under a different store
    /// schema version.
    SchemaMismatch {
        /// The entry's schema version.
        found: u32,
        /// The version this server speaks.
        expected: u32,
    },
    /// Typed refusal: the entry's recorded fingerprint disagrees with
    /// the one its address demands.
    FingerprintMismatch {
        /// Fingerprint in the entry header.
        found: String,
        /// Fingerprint the token derivation expects.
        expected: String,
    },
    /// The query itself is malformed (unknown algorithm, degenerate
    /// grid, a spec that does not build).
    BadQuery {
        /// What was wrong with it.
        reason: String,
    },
    /// Acknowledges [`Query::Shutdown`].
    Bye,
}

/// Runs the sweep service until a [`Query::Shutdown`] arrives: opens
/// the store at `dir` (installing the process store session so the
/// compute path reads through and writes back), binds a loopback
/// socket, publishes its address to `addr_file` (atomically, for
/// pollers), and answers queries one connection at a time.
///
/// # Errors
///
/// Returns a message when the store, the socket, or the address file
/// cannot be set up, or when `accept` itself fails; a *per-connection*
/// failure (malformed frame, peer gone) is logged to stderr and the
/// server keeps serving.
pub fn serve(dir: &Path, addr_file: Option<&Path>, runner: &Runner) -> Result<(), String> {
    crate::store::begin(dir);
    let store = Store::open(dir).map_err(|e| format!("cannot open the result store: {e}"))?;
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("cannot bind loopback: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("socket has no local address: {e}"))?
        .to_string();
    if let Some(path) = addr_file {
        publish_addr(path, &addr)?;
    }
    eprintln!("serve: answering sweep queries on {addr}");
    loop {
        let (stream, peer) = listener
            .accept()
            .map_err(|e| format!("accept failed: {e}"))?;
        match converse(&store, stream, runner) {
            Ok(true) => return Ok(()),
            Ok(false) => {}
            Err(e) => eprintln!("serve: connection from {peer} failed: {e}"),
        }
    }
}

/// Writes the address file atomically (temp + rename), so a poller
/// never reads a half-written address.
fn publish_addr(path: &Path, addr: &str) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, addr).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot publish {}: {e}", path.display()))?;
    Ok(())
}

/// Answers every query on one connection. `Ok(true)` means a
/// `Shutdown` was served and the whole server should exit; `Ok(false)`
/// is the client closing cleanly.
fn converse(store: &Store, mut stream: TcpStream, runner: &Runner) -> Result<bool, String> {
    loop {
        let query: Option<Query> =
            read_json_frame(&mut stream, "a query").map_err(|e| e.to_string())?;
        let Some(query) = query else {
            return Ok(false);
        };
        let shutdown = matches!(query, Query::Shutdown);
        let reply = answer(store, query, runner);
        write_json_frame(&mut stream, &reply, "a reply").map_err(|e| e.to_string())?;
        if shutdown {
            return Ok(true);
        }
    }
}

fn answer(store: &Store, query: Query, runner: &Runner) -> Reply {
    match query {
        Query::Shutdown => Reply::Bye,
        Query::Token { token } => match store.load_token(&token) {
            Ok(entry) => Reply::Report {
                cached: true,
                token,
                report: entry.report,
            },
            Err(miss) => refuse(miss),
        },
        Query::Grid {
            algorithm,
            spec,
            l,
            cap,
        } => grid_reply(store, &algorithm, spec, l, cap, runner),
    }
}

/// Maps a typed store miss onto the wire refusal of the same shape.
fn refuse(miss: Miss) -> Reply {
    match miss {
        Miss::SchemaMismatch { found } => Reply::SchemaMismatch {
            found,
            expected: SCHEMA_VERSION,
        },
        Miss::FingerprintMismatch { found, expected } => {
            Reply::FingerprintMismatch { found, expected }
        }
        other => Reply::NotCached {
            reason: other.to_string(),
        },
    }
}

/// The cached-or-computed path: validates the query (the compute
/// helpers panic on degenerate grids, so refusal happens here), checks
/// the store for the entry's presence *before* sweeping (that is the
/// `cached` flag in the reply), and runs the same
/// [`sweep_single_spec`](crate::x10_topologies::sweep_single_spec)
/// path a direct run uses — which itself serves from / records into
/// the store session.
fn grid_reply(
    store: &Store,
    algorithm: &str,
    spec: GraphSpec,
    l: u64,
    cap: usize,
    runner: &Runner,
) -> Reply {
    let Some(context) = crate::x10_topologies::serve_context(algorithm) else {
        return Reply::BadQuery {
            reason: format!("unknown algorithm `{algorithm}` (expected cheap or fast)"),
        };
    };
    if l < 2 {
        return Reply::BadQuery {
            reason: format!("l must be >= 2, got {l}"),
        };
    }
    if cap == 0 {
        return Reply::BadQuery {
            reason: "cap must be >= 1".into(),
        };
    }
    if let Err(e) = spec.build() {
        return Reply::BadQuery {
            reason: format!("spec does not build: {e}"),
        };
    }
    let (topo, _) = crate::x10_topologies::build_topo_grid(vec![spec.clone()], l, cap);
    let key = StoreKey::new(context, &topo.meta(), crate::engine::current().name());
    let cached = store.load(&key).is_ok();
    let report = crate::x10_topologies::sweep_single_spec(algorithm, spec, l, cap, runner)
        .expect("algorithm validated above");
    Reply::Report {
        cached,
        token: key.token().to_string(),
        report,
    }
}

/// Client side: one query round-trip against a running server.
///
/// # Errors
///
/// Returns a message when the connection, the send, or the receive
/// fails, or when the server closes without replying.
pub fn ask(addr: &str, query: &Query) -> Result<Reply, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    write_json_frame(&mut stream, query, "a query").map_err(|e| e.to_string())?;
    match read_json_frame(&mut stream, "a reply").map_err(|e| e.to_string())? {
        Some(reply) => Ok(reply),
        None => Err(format!("{addr} closed the connection without replying")),
    }
}
