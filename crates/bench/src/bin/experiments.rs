//! Regenerates the paper's claims as markdown tables (see `DESIGN.md` §4).
//!
//! Usage:
//!
//! ```text
//! experiments [all|x1|x2|...|x9]... [--quick] [--json] [--sequential|--parallel]
//! ```
//!
//! `--quick` shrinks the sweeps (used by CI); the default parameters are
//! the ones recorded in `EXPERIMENTS.md`. `--json` emits the raw rows as
//! JSON (one document per experiment) instead of markdown tables, for
//! plotting pipelines — section headings go to stderr in that mode, so
//! stdout stays a clean JSON stream (`experiments all --json | jq` works).
//!
//! Every experiment executes through the shared `rendezvous-runner`
//! engine. `--parallel` (the default) uses all hardware threads;
//! `--sequential` forces one thread. The two modes produce **identical**
//! tables — the runner folds outcomes in scenario order either way — so
//! diffing the outputs is a quick end-to-end determinism check:
//!
//! ```text
//! diff <(experiments all --quick --sequential) <(experiments all --quick --parallel)
//! ```

use rendezvous_bench::*;
use rendezvous_runner::Runner;

struct Config {
    quick: bool,
    json: bool,
    runner: Runner,
}

/// Emits either the rendered markdown or the serialized rows.
fn emit<R: serde::Serialize>(cfg: &Config, id: &str, rows: &[R], rendered: String) {
    if cfg.json {
        let doc = serde_json::json!({ "experiment": id, "rows": rows });
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).expect("serializable rows")
        );
    } else {
        print!("{rendered}");
    }
}

/// Prints a section heading: to stdout for markdown output, to stderr in
/// `--json` mode so stdout stays a clean JSON stream for pipelines.
fn section(cfg: &Config, heading: &str) {
    if cfg.json {
        eprintln!("{heading}");
    } else {
        println!("{heading}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let sequential = args.iter().any(|a| a == "--sequential");
    let parallel = args.iter().any(|a| a == "--parallel");
    if sequential && parallel {
        eprintln!("--sequential and --parallel are mutually exclusive");
        std::process::exit(2);
    }
    let mut wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if wanted.is_empty() || wanted.contains(&"all") {
        wanted = vec!["x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9"];
    }
    let cfg = Config {
        quick,
        json,
        runner: if sequential {
            Runner::sequential()
        } else {
            Runner::parallel()
        },
    };
    for w in wanted {
        match w {
            "x1" => x1(&cfg),
            "x2" => x2(&cfg),
            "x3" => x3(&cfg),
            "x4" => x4(&cfg),
            "x5" => x5(&cfg),
            "x6" => x6(&cfg),
            "x7" => x7(&cfg),
            "x8" => x8(&cfg),
            "x9" => x9(&cfg),
            other => eprintln!("unknown experiment: {other}"),
        }
    }
}

fn x1(cfg: &Config) {
    section(
        cfg,
        "\n## X1 — Proposition 2.1: Cheap (cost <= 3E, time <= (2L+1)E)\n",
    );
    let (n, ls): (usize, Vec<u64>) = if cfg.quick {
        (8, vec![2, 4, 8])
    } else {
        (12, vec![2, 4, 8, 16, 32])
    };
    let rows = x1_cheap::run(
        n,
        &ls,
        ls.iter().max().copied().unwrap_or(8) <= 8,
        &cfg.runner,
    );
    emit(cfg, "x1", &rows, x1_cheap::render(&rows));
}

fn x2(cfg: &Config) {
    section(
        cfg,
        "\n## X2 — Proposition 2.2: Fast (time and cost O(E log L))\n",
    );
    let (n, ls): (usize, Vec<u64>) = if cfg.quick {
        (8, vec![2, 8, 32])
    } else {
        (12, vec![2, 4, 8, 16, 64, 256])
    };
    let rows = x2_fast::run(n, &ls, false, &cfg.runner);
    emit(cfg, "x2", &rows, x2_fast::render(&rows));
}

fn x3(cfg: &Config) {
    section(
        cfg,
        "\n## X3 — Proposition 2.3 / Corollary 2.1: FastWithRelabeling(w)\n",
    );
    section(cfg, "### Analytic bounds (per E)\n");
    let ls: Vec<u64> = if cfg.quick {
        vec![16, 256]
    } else {
        vec![16, 64, 256, 1024, 4096]
    };
    let rows = x3_relabel::run_bounds(&ls, &[1, 2, 3, 4]);
    emit(cfg, "x3-bounds", &rows, x3_relabel::render_bounds(&rows));
    section(cfg, "\n### Measured on an oriented ring\n");
    let (n, l) = if cfg.quick { (6, 8) } else { (10, 16) };
    let rows = x3_relabel::run_exec(n, l, &[1, 2, 3, 4], &cfg.runner);
    emit(cfg, "x3-exec", &rows, x3_relabel::render_exec(&rows));
}

fn x4(cfg: &Config) {
    section(cfg, "\n## X4 — The time/cost tradeoff frontier\n");
    let (n, l, ws): (usize, u64, Vec<u64>) = if cfg.quick {
        (8, 32, vec![2, 3])
    } else {
        (12, 64, vec![1, 2, 3, 4, 5])
    };
    let points = x4_tradeoff::run(n, l, &ws, &cfg.runner);
    emit(cfg, "x4", &points, x4_tradeoff::render(&points));
}

fn x5(cfg: &Config) {
    section(
        cfg,
        "\n## X5 — Theorem 3.1: cost E + o(E) forces time Omega(EL)\n",
    );
    let (n, ls): (usize, Vec<u64>) = if cfg.quick {
        (12, vec![4, 8])
    } else {
        (12, vec![4, 6, 8, 10, 12, 16])
    };
    let rows = x5_lb_time::run(n, &ls, &cfg.runner);
    emit(cfg, "x5", &rows, x5_lb_time::render(&rows));
}

fn x6(cfg: &Config) {
    section(
        cfg,
        "\n## X6 — Theorem 3.2: time O(E log L) forces cost Omega(E log L)\n",
    );
    let (n, ls): (usize, Vec<u64>) = if cfg.quick {
        (12, vec![4, 8])
    } else {
        (12, vec![4, 8, 16, 32])
    };
    let rows = x6_lb_cost::run(n, &ls, &cfg.runner);
    emit(cfg, "x6", &rows, x6_lb_cost::render(&rows));
}

fn x7(cfg: &Config) {
    section(cfg, "\n## X7 — Graph families and exploration scenarios\n");
    let l = if cfg.quick { 4 } else { 8 };
    let rows = x7_families::run(l, 0xBEEF, &cfg.runner);
    emit(cfg, "x7", &rows, x7_families::render(&rows));
}

fn x8(cfg: &Config) {
    section(
        cfg,
        "\n## X8 — Unknown E: iterated algorithms (Conclusion)\n",
    );
    let ns: Vec<usize> = if cfg.quick { vec![6] } else { vec![6, 12, 24] };
    let rows = x8_iterated::run(&ns, 4, &cfg.runner);
    emit(cfg, "x8", &rows, x8_iterated::render(&rows));
}

fn x9(cfg: &Config) {
    section(
        cfg,
        "\n## X9 — Extension: k-agent gathering by merge-and-restart\n",
    );
    let ks: Vec<usize> = if cfg.quick {
        vec![2, 3]
    } else {
        vec![2, 3, 4, 5, 6]
    };
    let rows = x9_gathering::run(12, 32, &ks, &cfg.runner);
    emit(cfg, "x9", &rows, x9_gathering::render(&rows));
}
