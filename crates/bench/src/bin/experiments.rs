//! Regenerates the paper's claims as markdown tables (see `DESIGN.md` §4).
//!
//! Usage:
//!
//! ```text
//! experiments [all|x1|x2|...|x11]... [--topo] [--quick] [--json]
//!             [--sequential|--parallel] [--engine stepped|batched]
//!             [--progress] [--telemetry FILE] [--plan] [--store DIR]
//!             [--shard i/m [--emit-shard]] [--merge-shards FILE...]
//!             [--spawn-shards m]
//!             [--fabric workers=N [--fabric-checkpoint FILE] [--fabric-kill-one]]
//! experiments serve --store DIR [--addr-file FILE]
//!             [--engine stepped|batched] [--sequential]
//! experiments query (--addr ADDR | --addr-file FILE)
//!             (--token TOKEN | --grid ALGO --spec JSON --l N --cap N | --shutdown)
//! experiments query --direct --store DIR
//!             (--token TOKEN | --grid ALGO --spec JSON --l N --cap N)
//! ```
//!
//! `--quick` shrinks the sweeps (used by CI); the default parameters are
//! the ones recorded in `EXPERIMENTS.md`. `--json` emits the raw rows as
//! JSON (one document per experiment) instead of markdown tables, for
//! plotting pipelines — section headings go to stderr in that mode, so
//! stdout stays a clean JSON stream (`experiments all --json | jq` works).
//!
//! Every experiment executes through the shared `rendezvous-runner`
//! engine. `--parallel` (the default) uses all hardware threads;
//! `--sequential` forces one thread. The two modes produce **identical**
//! tables — the runner folds outcomes in scenario order either way — so
//! diffing the outputs is a quick end-to-end determinism check:
//!
//! ```text
//! diff <(experiments all --quick --sequential) <(experiments all --quick --parallel)
//! ```
//!
//! `--engine batched` swaps the stepped simulator for the delay-batched
//! trajectory solver (`BatchExecutor`) in every pair sweep — same knob
//! shape: the outputs are **byte-identical** to `--engine stepped` (the
//! default), only faster, and CI diffs the two on every push.
//!
//! # Sharded sweeps (multi-process)
//!
//! `--shard i/m --emit-shard` executes only shard `i` of every
//! adversarial grid and prints a JSON ledger of per-sweep partial stats
//! instead of tables; `--merge-shards` merges the `m` ledgers and renders
//! the ordinary output from the merged stats — byte-identical to a
//! single-process run with the same selection and flags:
//!
//! ```text
//! for i in 0 1 2; do experiments x1 --json --shard $i/3 --emit-shard > s$i.json; done
//! experiments x1 --json --merge-shards s0.json s1.json s2.json   # == experiments x1 --json
//! ```
//!
//! `--spawn-shards m` automates the loop above in one invocation: it
//! re-execs this binary `m` times with `--shard i/m`, captures the
//! ledgers in memory, merges them, and renders the ordinary output —
//! still byte-identical to the single-process run.
//!
//! # Observability
//!
//! `--progress` renders a live pieces/scenarios/rate/ETA line to stderr
//! while sweeps execute (stdout untouched); `--telemetry FILE` writes a
//! deterministic `TELEMETRY.json` sidecar after the run — exact
//! counters in sorted sections, wall-clock data quarantined under
//! `timing`. Both compose with `--spawn-shards m`: each child streams
//! `@progress`/`@telemetry` protocol lines over stderr (internal
//! `--progress-stream`/`--telemetry-stream` flags), the parent
//! aggregates the live display and merges the children's snapshots
//! into one sidecar. Neither flag may change the experiment output:
//! CI byte-diffs telemetry-on against telemetry-off on every push.
//! `--telemetry` with `--merge-shards` is rejected — a merge replays
//! recorded sweeps and executes nothing, so its sidecar would be
//! vacuously empty.
//!
//! # Distributed fabric
//!
//! `--fabric workers=N` runs the selection on the coordinator/worker
//! fabric (`rendezvous-fabric`): the driver starts a loopback
//! coordinator, re-execs itself `N` times with the internal
//! `--fabric-worker ADDR` flag, and workers *pull* small lease-sized
//! ranges of every sweep instead of owning fixed stride shards — so
//! uneven pieces balance themselves, and a worker that dies mid-piece
//! (heartbeat silence or a dropped connection) has its in-flight ranges
//! requeued to the survivors. The merged output is byte-identical to
//! the direct run; CI diffs it — with and without a SIGKILL'd worker —
//! on every push. `--fabric-checkpoint FILE` appends one JSONL record
//! per completed range, and a rerun against the same file re-executes
//! zero completed ranges (`--fabric-kill-one` is the chaos switch CI
//! uses: worker 0 SIGKILLs itself after its first completed lease).
//!
//! `--plan` is the zero-cost preview: one line per sweep — context,
//! canonical workload fingerprint, piece count (the fabric's chunking
//! input) — with no scenario executed.
//!
//! # Result store
//!
//! `--store DIR` puts a content-addressed read-through cache in front
//! of every recorded sweep: a hit returns the stored [`SweepReport`]
//! byte-identically and executes **zero** scenarios; a miss computes
//! as usual (through whatever topology the run uses — `--store`
//! composes with `--spawn-shards` and `--fabric`, the flag is
//! forwarded to every child process so all of them skip the same
//! cached sweeps) and writes the full report back. A warm rerun is
//! byte-identical to the cold one, CI-checked. With `--plan` each line
//! gains a `store=cached|miss` column. Shard/merge and fabric runs
//! must all use the same `--store` setting (and store state): the
//! cache changes *which* sweeps produce ledger records, so mixing
//! cached and uncached artifacts in one merge is a diagnosed error.
//!
//! `experiments serve --store DIR` turns the store into a query
//! service: length-framed JSON queries over a loopback socket (the
//! fabric's wire discipline), answered cached-or-computed, with typed
//! refusals for schema/fingerprint drift. `experiments query` is the
//! client; `query --direct` computes the same answer locally, and CI
//! byte-diffs the two.
//!
//! # Topology sweeps
//!
//! `x10` (alias `--topo`) sweeps 100+ **seeded graph instances per
//! family** ([`x10_topologies`]): the graph becomes an adversary axis.
//! `x11` composes that grid with the gathering generalization
//! ([`x11_gathering_topo`]): k-agent fleets gathered on every seeded
//! topology, each run checked against its own merge-and-restart bound.
//! `all` deliberately excludes both (they are the heaviest tables);
//! select them explicitly. Sharding works for them exactly as above —
//! a `TopoGrid` is just another `Workload`, so its per-family reports
//! ride the same unified ledger as every grid sweep.

use rendezvous_bench::*;
use rendezvous_runner::Runner;
use rendezvous_telemetry::{
    telemetry_line, ProgressHub, ProgressReporter, StderrPump, TelemetrySnapshot,
};
use std::sync::Arc;

struct Config {
    quick: bool,
    json: bool,
    /// Shard mode: suppress the ordinary output (the shard ledger goes to
    /// stdout instead).
    emit_shard: bool,
    runner: Runner,
}

/// Emits either the rendered markdown or the serialized rows. In
/// `--emit-shard` mode nothing is emitted: the rows are partial (one
/// shard's worth of scenarios) and stdout is reserved for the ledger.
fn emit<R: serde::Serialize>(cfg: &Config, id: &str, rows: &[R], rendered: String) {
    if cfg.emit_shard {
        return;
    }
    if cfg.json {
        let doc = serde_json::json!({ "experiment": id, "rows": rows });
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).expect("serializable rows")
        );
    } else {
        print!("{rendered}");
    }
}

/// Prints a section heading: to stdout for markdown output, to stderr in
/// `--json` and `--emit-shard` modes so stdout stays a clean JSON stream.
fn section(cfg: &Config, heading: &str) {
    if cfg.json || cfg.emit_shard {
        eprintln!("{heading}");
    } else {
        println!("{heading}");
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Parses `i/m` (as in `--shard 1/3`) into `(shard, of)`.
fn parse_shard_spec(spec: &str) -> (usize, usize) {
    let parsed = spec.split_once('/').and_then(|(i, m)| {
        let shard: usize = i.parse().ok()?;
        let of: usize = m.parse().ok()?;
        (of > 0 && shard < of).then_some((shard, of))
    });
    match parsed {
        Some(pair) => pair,
        None => usage_error(&format!(
            "--shard expects i/m with i < m (e.g. --shard 1/3), got `{spec}`"
        )),
    }
}

/// Re-execs this binary once per shard (same selection and flags plus
/// `--shard i/m`), parses the emitted ledgers, and returns them merged —
/// the driver mode that closes the "spawn the shards and merge
/// automatically" loop without temp files.
///
/// With `progress` the children stream `@progress` protocol lines and
/// the parent renders their aggregated live display; with `telemetry`
/// each child's final `@telemetry` snapshot is captured and the merged
/// snapshot returned (merge order is irrelevant — the fold is
/// associative and commutative, property-tested in the telemetry
/// crate). Every child's stderr is drained on a pump thread either
/// way, so a failed shard's diagnostics still surface verbatim.
fn spawn_shards(
    m: usize,
    passthrough: &[String],
    progress: bool,
    telemetry: bool,
) -> (sharding::MergedLedger, Option<TelemetrySnapshot>) {
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("cannot locate own binary: {e}");
        std::process::exit(1);
    });
    // Launch every child before collecting any, so the shards actually
    // overlap in wall-clock time; collection order is irrelevant to the
    // result (the merge validates and sorts by shard index).
    let hub = ProgressHub::new(m);
    let mut pumps: Vec<StderrPump> = Vec::with_capacity(m);
    let children: Vec<std::process::Child> = (0..m)
        .map(|i| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.args(passthrough)
                .arg("--shard")
                .arg(format!("{i}/{m}"))
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::piped());
            if progress {
                cmd.arg("--progress-stream");
            }
            if telemetry {
                cmd.arg("--telemetry-stream");
            }
            let mut child = cmd.spawn().unwrap_or_else(|e| {
                eprintln!("cannot spawn shard {i}/{m}: {e}");
                std::process::exit(1);
            });
            let stderr = child.stderr.take().expect("child stderr is piped");
            pumps.push(StderrPump::pump(stderr, &hub, i));
            child
        })
        .collect();
    let reporter = progress.then(|| ProgressReporter::aggregate(&hub));
    // Join (and thereby reap) every child before inspecting any status:
    // bailing out on the first failure would orphan the still-running
    // shards mid-sweep. A failed shard is a runtime failure (exit 1),
    // not a usage error.
    let outputs: Vec<std::io::Result<std::process::Output>> = children
        .into_iter()
        .map(std::process::Child::wait_with_output)
        .collect();
    // Children have exited, so the pumps see EOF; join them (and stop
    // the live display) before any diagnostics are printed.
    let drained: Vec<(String, Option<TelemetrySnapshot>)> =
        pumps.into_iter().map(StderrPump::finish).collect();
    if let Some(reporter) = reporter {
        reporter.finish();
    }
    let emissions: Vec<sharding::ShardEmission> = outputs
        .into_iter()
        .enumerate()
        .map(|(i, output)| {
            let output = output.unwrap_or_else(|e| {
                eprintln!("cannot join shard {i}/{m}: {e}");
                std::process::exit(1);
            });
            if !output.status.success() {
                eprintln!(
                    "shard {i}/{m} failed ({}):\n{}",
                    output.status, drained[i].0
                );
                std::process::exit(1);
            }
            let text = String::from_utf8_lossy(&output.stdout);
            serde_json::from_str(&text).unwrap_or_else(|e| {
                eprintln!("shard {i}/{m} emitted an invalid ledger: {e}");
                std::process::exit(1);
            })
        })
        .collect();
    let snapshot = telemetry.then(|| {
        drained
            .iter()
            .enumerate()
            .map(|(i, (_, snap))| {
                snap.as_ref().unwrap_or_else(|| {
                    eprintln!("shard {i}/{m} exited without a telemetry snapshot");
                    std::process::exit(1);
                })
            })
            .fold(TelemetrySnapshot::empty(), |acc, s| acc.merge(s))
    });
    let names: Vec<String> = (0..m).map(|i| format!("spawned shard {i}/{m}")).collect();
    let merged = sharding::merge_emissions(emissions, &names).unwrap_or_else(|e| {
        eprintln!("cannot merge spawned shards: {e}");
        std::process::exit(1);
    });
    (merged, snapshot)
}

/// Runs the selection on the distributed fabric: starts the loopback
/// coordinator, re-execs this binary `workers` times in
/// `--fabric-worker` mode, waits for every worker process, and returns
/// the coordinator's merged per-sweep ledger plus the workers' merged
/// telemetry (delivered over the socket in their `Finished` frames).
///
/// A worker that exits abnormally while the run still completes is a
/// *survived* fault — its leases were reassigned — and is only noted on
/// stderr; the run fails only if ranges remain unfinished or the
/// coordinator recorded a protocol/checkpoint error.
fn run_fabric(
    workers: usize,
    passthrough: &[String],
    progress: bool,
    checkpoint: Option<&str>,
    kill_one: bool,
) -> (
    sharding::MergedLedger,
    TelemetrySnapshot,
    rendezvous_fabric::FabricStats,
) {
    use rendezvous_fabric as fab;
    let resume = match checkpoint {
        Some(path) => fab::checkpoint::load(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot resume fabric run: {e}");
            std::process::exit(1);
        }),
        None => Vec::new(),
    };
    let server = fab::FabricServer::start(fab::ServerConfig {
        coordinator: fab::CoordinatorConfig {
            workers,
            chunk: 0,
            lease_timeout_ms: 5_000,
        },
        checkpoint: checkpoint.map(std::path::PathBuf::from),
        resume,
    })
    .unwrap_or_else(|e| {
        eprintln!("cannot start fabric coordinator: {e}");
        std::process::exit(1);
    });
    let addr = server.addr().to_string();
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("cannot locate own binary: {e}");
        std::process::exit(1);
    });
    let hub = ProgressHub::new(workers);
    let mut pumps: Vec<StderrPump> = Vec::with_capacity(workers);
    let children: Vec<std::process::Child> = (0..workers)
        .map(|i| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.args(passthrough)
                .arg("--fabric-worker")
                .arg(&addr)
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::piped());
            if progress {
                cmd.arg("--progress-stream");
            }
            if kill_one && i == 0 {
                cmd.arg("--fabric-self-kill");
            }
            let mut child = cmd.spawn().unwrap_or_else(|e| {
                eprintln!("cannot spawn fabric worker {i}: {e}");
                std::process::exit(1);
            });
            let stderr = child.stderr.take().expect("worker stderr is piped");
            pumps.push(StderrPump::pump(stderr, &hub, i));
            child
        })
        .collect();
    let reporter = progress.then(|| ProgressReporter::aggregate(&hub));
    let statuses: Vec<std::io::Result<std::process::ExitStatus>> =
        children.into_iter().map(|mut c| c.wait()).collect();
    let drained: Vec<(String, Option<TelemetrySnapshot>)> =
        pumps.into_iter().map(StderrPump::finish).collect();
    if let Some(reporter) = reporter {
        reporter.finish();
    }
    match server.join() {
        Ok(outcome) => {
            for (i, status) in statuses.iter().enumerate() {
                match status {
                    Ok(s) if s.success() => {}
                    Ok(s) => eprintln!(
                        "fabric worker {i} exited abnormally ({s}); its leases were reassigned"
                    ),
                    Err(e) => eprintln!("cannot join fabric worker {i}: {e}"),
                }
            }
            let records: Vec<sharding::LedgerRecord> = outcome
                .sweeps
                .into_iter()
                .map(|(meta, report)| sharding::LedgerRecord::new(meta, report))
                .collect();
            let merged = sharding::MergedLedger {
                records,
                source: format!("fabric coordinator ({workers} workers)"),
            };
            (merged, outcome.telemetry, outcome.stats)
        }
        Err(e) => {
            eprintln!("fabric run failed: {e}");
            for (i, status) in statuses.iter().enumerate() {
                if !matches!(status, Ok(s) if s.success()) {
                    eprintln!("fabric worker {i} diagnostics:\n{}", drained[i].0);
                }
            }
            std::process::exit(1);
        }
    }
}

/// Writes the sidecar document (exact sections sorted, wall-clock data
/// quarantined) to `path`.
fn write_sidecar(path: &str, snapshot: &TelemetrySnapshot) {
    std::fs::write(path, snapshot.render()).unwrap_or_else(|e| {
        eprintln!("cannot write telemetry sidecar {path}: {e}");
        std::process::exit(1);
    });
}

/// `experiments serve`: run the sweep query service until a client
/// sends `Shutdown`.
fn run_serve(args: &[String]) {
    let mut store_dir: Option<String> = None;
    let mut addr_file: Option<String> = None;
    let mut sequential = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--store" => {
                store_dir = Some(
                    iter.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error("--store requires a directory")),
                );
            }
            "--addr-file" => {
                addr_file = Some(
                    iter.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error("--addr-file requires a file path")),
                );
            }
            "--engine" => {
                let name = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--engine requires stepped or batched"));
                match engine::Engine::parse(name) {
                    Some(choice) => engine::set_engine(choice),
                    None => usage_error(&format!(
                        "--engine expects stepped or batched, got `{name}`"
                    )),
                }
            }
            "--sequential" => sequential = true,
            other => usage_error(&format!("unknown serve flag: {other}")),
        }
    }
    let dir = store_dir.unwrap_or_else(|| usage_error("serve requires --store DIR"));
    let runner = if sequential {
        Runner::sequential()
    } else {
        Runner::parallel()
    };
    let result = serve::serve(
        std::path::Path::new(&dir),
        addr_file.as_deref().map(std::path::Path::new),
        &runner,
    );
    if let Err(e) = result {
        eprintln!("serve failed: {e}");
        std::process::exit(1);
    }
}

/// Prints a refusal and exits 3 — distinct from runtime failure (1)
/// and usage errors (2) so CI can assert on the *kind* of refusal.
fn query_refused(msg: &str) -> ! {
    eprintln!("query refused: {msg}");
    std::process::exit(3);
}

/// Renders a server reply: report JSON to stdout (byte-identical to a
/// direct run), everything else as a refusal or stderr note.
fn render_reply(reply: serve::Reply) {
    match reply {
        serve::Reply::Report {
            cached,
            token,
            report,
        } => {
            eprintln!(
                "query: {} {token}",
                if cached { "cached" } else { "computed" }
            );
            println!(
                "{}",
                serde_json::to_string_pretty(&report).expect("serializable report")
            );
        }
        serve::Reply::NotCached { reason } => query_refused(&format!("not cached: {reason}")),
        serve::Reply::SchemaMismatch { found, expected } => query_refused(&format!(
            "schema mismatch: entry is v{found}, this build speaks v{expected}"
        )),
        serve::Reply::FingerprintMismatch { found, expected } => query_refused(&format!(
            "fingerprint mismatch: entry holds {found}, its address demands {expected}"
        )),
        serve::Reply::BadQuery { reason } => query_refused(&format!("bad query: {reason}")),
        serve::Reply::Bye => eprintln!("query: server shut down"),
    }
}

/// `experiments query`: the service client (and, with `--direct`, the
/// reference local computation CI diffs a served answer against).
fn run_query(args: &[String]) {
    let mut addr: Option<String> = None;
    let mut addr_file: Option<String> = None;
    let mut token: Option<String> = None;
    let mut grid_algo: Option<String> = None;
    let mut spec_json: Option<String> = None;
    let mut l: Option<u64> = None;
    let mut cap: Option<usize> = None;
    let mut shutdown = false;
    let mut direct = false;
    let mut store_dir: Option<String> = None;
    let mut sequential = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                addr = Some(
                    iter.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error("--addr requires host:port")),
                );
            }
            "--addr-file" => {
                addr_file = Some(
                    iter.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error("--addr-file requires a file path")),
                );
            }
            "--token" => {
                token = Some(
                    iter.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error("--token requires a store token")),
                );
            }
            "--grid" => {
                grid_algo = Some(
                    iter.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error("--grid requires cheap or fast")),
                );
            }
            "--spec" => {
                spec_json = Some(
                    iter.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error("--spec requires a GraphSpec JSON value")),
                );
            }
            "--l" => {
                l = iter.next().and_then(|s| s.parse().ok());
                if l.is_none() {
                    usage_error("--l requires a label-space size");
                }
            }
            "--cap" => {
                cap = iter.next().and_then(|s| s.parse().ok());
                if cap.is_none() {
                    usage_error("--cap requires a scenario cap");
                }
            }
            "--shutdown" => shutdown = true,
            "--direct" => direct = true,
            "--store" => {
                store_dir = Some(
                    iter.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error("--store requires a directory")),
                );
            }
            "--engine" => {
                let name = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--engine requires stepped or batched"));
                match engine::Engine::parse(name) {
                    Some(choice) => engine::set_engine(choice),
                    None => usage_error(&format!(
                        "--engine expects stepped or batched, got `{name}`"
                    )),
                }
            }
            "--sequential" => sequential = true,
            other => usage_error(&format!("unknown query flag: {other}")),
        }
    }
    let grid = grid_algo.map(|algorithm| {
        let spec_json = spec_json.unwrap_or_else(|| usage_error("--grid requires --spec JSON"));
        let spec: rendezvous_graph::GraphSpec = serde_json::from_str(&spec_json)
            .unwrap_or_else(|e| usage_error(&format!("--spec is not a GraphSpec: {e}")));
        serve::Query::Grid {
            algorithm,
            spec,
            l: l.unwrap_or_else(|| usage_error("--grid requires --l N")),
            cap: cap.unwrap_or_else(|| usage_error("--grid requires --cap N")),
        }
    });
    let query = match (token, grid, shutdown) {
        (Some(token), None, false) => serve::Query::Token { token },
        (None, Some(grid), false) => grid,
        (None, None, true) => serve::Query::Shutdown,
        _ => usage_error("query needs exactly one of --token, --grid, or --shutdown"),
    };
    if direct {
        if shutdown {
            usage_error("--shutdown needs a server; it cannot combine with --direct");
        }
        let runner = if sequential {
            Runner::sequential()
        } else {
            Runner::parallel()
        };
        match query {
            serve::Query::Token { token } => {
                let dir = store_dir
                    .unwrap_or_else(|| usage_error("query --direct --token requires --store DIR"));
                let store = rendezvous_store::Store::open(std::path::Path::new(&dir))
                    .unwrap_or_else(|e| {
                        eprintln!("cannot open the result store: {e}");
                        std::process::exit(1);
                    });
                match store.load_token(&token) {
                    Ok(entry) => {
                        eprintln!("query: cached {token}");
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&entry.report)
                                .expect("serializable report")
                        );
                    }
                    Err(miss) => query_refused(&miss.to_string()),
                }
            }
            serve::Query::Grid {
                algorithm,
                spec,
                l,
                cap,
            } => {
                if let Some(dir) = &store_dir {
                    store::begin(std::path::Path::new(dir));
                }
                let report = x10_topologies::sweep_single_spec(&algorithm, spec, l, cap, &runner)
                    .unwrap_or_else(|| {
                        usage_error(&format!(
                            "unknown algorithm `{algorithm}` (expected cheap or fast)"
                        ))
                    });
                println!(
                    "{}",
                    serde_json::to_string_pretty(&report).expect("serializable report")
                );
            }
            serve::Query::Shutdown => unreachable!("rejected above"),
        }
        return;
    }
    let addr = match (addr, addr_file) {
        (Some(addr), None) => addr,
        (None, Some(path)) => std::fs::read_to_string(&path)
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|e| usage_error(&format!("cannot read --addr-file {path}: {e}"))),
        _ => usage_error("query needs exactly one of --addr or --addr-file (or --direct)"),
    };
    match serve::ask(&addr, &query) {
        Ok(reply) => render_reply(reply),
        Err(e) => {
            eprintln!("query failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => return run_serve(&args[1..]),
        Some("query") => return run_query(&args[1..]),
        _ => {}
    }
    let mut quick = false;
    let mut json = false;
    let mut sequential = false;
    let mut parallel = false;
    let mut emit_shard = false;
    let mut topo = false;
    let mut progress = false;
    let mut progress_stream = false;
    let mut telemetry_stream = false;
    let mut telemetry_path: Option<String> = None;
    let mut shard: Option<(usize, usize)> = None;
    let mut spawn: Option<usize> = None;
    let mut merge_files: Option<Vec<String>> = None;
    let mut plan = false;
    let mut fabric_workers: Option<usize> = None;
    let mut fabric_worker_addr: Option<String> = None;
    let mut fabric_checkpoint: Option<String> = None;
    let mut fabric_kill_one = false;
    let mut fabric_self_kill = false;
    let mut store_dir: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    // Args minus the --spawn-shards directive itself: what each spawned
    // child re-runs (with its --shard i/m appended).
    let mut passthrough: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut forward = true;
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--sequential" => sequential = true,
            "--parallel" => parallel = true,
            "--emit-shard" => emit_shard = true,
            "--topo" => topo = true,
            // Not forwarded: the spawn driver renders the aggregate
            // display itself and hands children the stream flags below.
            "--progress" => {
                progress = true;
                forward = false;
            }
            // Not forwarded: each child would clobber the parent's
            // sidecar; the driver merges child snapshots instead.
            "--telemetry" => {
                telemetry_path = Some(
                    iter.next()
                        .unwrap_or_else(|| usage_error("--telemetry requires a file path")),
                );
                continue;
            }
            // Internal (spawned-child) flags: emit `@progress` /
            // `@telemetry` protocol lines on stderr for the parent.
            "--progress-stream" => {
                progress_stream = true;
                forward = false;
            }
            "--telemetry-stream" => {
                telemetry_stream = true;
                forward = false;
            }
            // Not forwarded: --shard cannot combine with --spawn-shards
            // (rejected below), so passthrough never carries a shard spec.
            "--shard" => {
                let spec = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--shard requires an i/m argument"));
                shard = Some(parse_shard_spec(&spec));
                continue;
            }
            // Forwarded (flag and value) so spawned shards sweep through
            // the same engine as the parent.
            "--engine" => {
                let name = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--engine requires stepped or batched"));
                match engine::Engine::parse(&name) {
                    Some(choice) => engine::set_engine(choice),
                    None => usage_error(&format!(
                        "--engine expects stepped or batched, got `{name}`"
                    )),
                }
                passthrough.push(arg);
                passthrough.push(name);
                continue;
            }
            // Forwarded (flag and value): every process of a run —
            // spawned shards, fabric workers, the driver — must open
            // the same store so all of them skip the same cached
            // sweeps and their ledgers/cursors stay aligned.
            "--store" => {
                let dir = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--store requires a directory"));
                store_dir = Some(dir.clone());
                passthrough.push(arg);
                passthrough.push(dir);
                continue;
            }
            "--spawn-shards" => {
                let count = iter
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&m| m > 0)
                    .unwrap_or_else(|| {
                        usage_error("--spawn-shards requires a positive shard count")
                    });
                spawn = Some(count);
                forward = false;
            }
            "--merge-shards" => {
                // Everything after --merge-shards is a shard ledger file;
                // experiment ids go before the flag.
                merge_files = Some(iter.by_ref().collect());
                continue;
            }
            // Not forwarded: workers get --fabric-worker ADDR instead.
            "--fabric" => {
                let spec = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--fabric requires workers=N"));
                let count = spec
                    .strip_prefix("workers=")
                    .and_then(|n| n.parse::<usize>().ok())
                    .filter(|&n| n > 0);
                match count {
                    Some(n) => fabric_workers = Some(n),
                    None => usage_error(&format!(
                        "--fabric expects workers=N with N > 0, got `{spec}`"
                    )),
                }
                continue;
            }
            // Internal (fabric-worker) flag: pull leases from ADDR.
            "--fabric-worker" => {
                fabric_worker_addr = Some(
                    iter.next()
                        .unwrap_or_else(|| usage_error("--fabric-worker requires an address")),
                );
                continue;
            }
            // Driver-side only: the coordinator owns the checkpoint file.
            "--fabric-checkpoint" => {
                fabric_checkpoint =
                    Some(iter.next().unwrap_or_else(|| {
                        usage_error("--fabric-checkpoint requires a file path")
                    }));
                continue;
            }
            "--fabric-kill-one" => {
                fabric_kill_one = true;
                forward = false;
            }
            // Internal chaos hook, set by the driver on worker 0 under
            // --fabric-kill-one.
            "--fabric-self-kill" => {
                fabric_self_kill = true;
                forward = false;
            }
            "--plan" => {
                plan = true;
                forward = false;
            }
            other if other.starts_with("--") => {
                usage_error(&format!("unknown flag: {other}"));
            }
            id => wanted.push(id.to_string()),
        }
        if forward {
            passthrough.push(arg);
        }
    }
    if sequential && parallel {
        usage_error("--sequential and --parallel are mutually exclusive");
    }
    if emit_shard && shard.is_none() {
        usage_error("--emit-shard requires --shard i/m");
    }
    // --shard implies --emit-shard: a shard run's rows are partial (one
    // shard's worth of scenarios) and would be indistinguishable from full
    // results, so the only meaningful stdout for a shard run is the ledger.
    let emit_shard = emit_shard || shard.is_some();
    if merge_files.is_some() && (shard.is_some() || emit_shard) {
        usage_error("--merge-shards cannot be combined with --shard/--emit-shard");
    }
    if spawn.is_some() && (shard.is_some() || emit_shard || merge_files.is_some()) {
        usage_error("--spawn-shards cannot be combined with --shard/--emit-shard/--merge-shards");
    }
    if telemetry_path.is_some() && merge_files.is_some() {
        usage_error(
            "--telemetry cannot be combined with --merge-shards: a merge replays recorded \
             sweeps and executes nothing, so the sidecar would be vacuously empty",
        );
    }
    // One execution topology per invocation: the fabric, the shard
    // machinery, and the plan dry-run are mutually exclusive modes.
    let sharded = shard.is_some() || emit_shard || spawn.is_some() || merge_files.is_some();
    if fabric_workers.is_some() && (sharded || fabric_worker_addr.is_some()) {
        usage_error("--fabric cannot be combined with --shard/--spawn-shards/--merge-shards");
    }
    if fabric_worker_addr.is_some() && sharded {
        usage_error("--fabric-worker cannot be combined with the shard flags");
    }
    if (fabric_checkpoint.is_some() || fabric_kill_one) && fabric_workers.is_none() {
        usage_error("--fabric-checkpoint/--fabric-kill-one require --fabric workers=N");
    }
    if fabric_kill_one && fabric_workers.is_some_and(|n| n < 2) {
        usage_error("--fabric-kill-one needs workers=2 or more to have survivors");
    }
    if fabric_self_kill && fabric_worker_addr.is_none() {
        usage_error("--fabric-self-kill is internal to fabric workers");
    }
    if plan && (sharded || fabric_workers.is_some() || fabric_worker_addr.is_some()) {
        usage_error("--plan executes nothing and cannot combine with shard or fabric modes");
    }
    if plan && telemetry_path.is_some() {
        usage_error("--telemetry with --plan would write a vacuously empty sidecar");
    }
    // `all` stays x1..x9: the topology sweeps (x10/x11) are the heaviest
    // tables and are selected explicitly. `--topo` is a selector — alone
    // it runs just x10; next to ids (or `all`) it adds x10 to them. An
    // explicit `x10`/`x11` id survives an `all` expansion for the same
    // reason.
    let topo = topo || wanted.iter().any(|w| w == "x10");
    if wanted.iter().any(|w| w == "all") || (wanted.is_empty() && !topo) {
        let explicit_x11 = wanted.iter().any(|w| w == "x11");
        wanted = ["x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9"]
            .map(String::from)
            .to_vec();
        if explicit_x11 {
            wanted.push("x11".into());
        }
    }
    if topo && !wanted.iter().any(|w| w == "x10") {
        wanted.push("x10".into());
    }
    // Telemetry session: installed only in processes that *execute*
    // sweeps. The spawn and fabric drivers replay their children's
    // merged ledgers, so observability flags translate into child
    // stream flags instead of a local sink; a spawned child always has
    // the stream flags, and a fabric worker always installs a sink —
    // its snapshot rides the socket in its `Finished` frame.
    let wants_local_telemetry = progress_stream
        || telemetry_stream
        || fabric_worker_addr.is_some()
        || (spawn.is_none()
            && fabric_workers.is_none()
            && !plan
            && (progress || telemetry_path.is_some()));
    let session = wants_local_telemetry.then(telemetry::install);
    let mut runner = if sequential {
        Runner::sequential()
    } else {
        Runner::parallel()
    };
    if let Some(metrics) = &session {
        runner = runner.with_metrics(Arc::clone(metrics));
    }
    // Fabric workers and plan runs suppress ordinary emission exactly
    // like shard runs: their rows are partial (or absent), so stdout
    // carries only the mode's own stream (nothing for a worker, the
    // plan lines for --plan).
    let cfg = Config {
        quick,
        json,
        emit_shard: emit_shard || fabric_worker_addr.is_some() || plan,
        runner,
    };

    // The read-through result store, installed before any execution
    // mode: the cache consultation happens per sweep inside
    // `sweep_recorded`, upstream of the shard/fabric/replay machinery.
    if let Some(dir) = &store_dir {
        store::begin(std::path::Path::new(dir));
    }

    // The spawn/fabric drivers' merged child snapshot (written after the
    // replayed render below, so a failed replay never leaves a sidecar).
    let mut spawned_snapshot: Option<TelemetrySnapshot> = None;
    if let Some((i, m)) = shard {
        sharding::begin_shard(i, m);
    } else if let Some(m) = spawn {
        let (merged, snapshot) = spawn_shards(m, &passthrough, progress, telemetry_path.is_some());
        spawned_snapshot = snapshot;
        sharding::begin_replay(merged.records, merged.source);
    } else if let Some(m) = fabric_workers {
        let (merged, snapshot, stats) = run_fabric(
            m,
            &passthrough,
            progress,
            fabric_checkpoint.as_deref(),
            fabric_kill_one,
        );
        if stats.reassigned > 0 || stats.duplicates > 0 || stats.resumed > 0 {
            eprintln!(
                "fabric: {} range(s) reassigned, {} duplicate result(s) discarded, \
                 {} range(s) resumed from checkpoint",
                stats.reassigned, stats.duplicates, stats.resumed
            );
        }
        if telemetry_path.is_some() {
            spawned_snapshot = Some(snapshot);
        }
        sharding::begin_replay(merged.records, merged.source);
    } else if let Some(addr) = &fabric_worker_addr {
        fabric::begin_worker(addr, fabric_self_kill);
    } else if plan {
        plan::enable();
    } else if let Some(files) = &merge_files {
        let emissions: Vec<sharding::ShardEmission> = files
            .iter()
            .map(|path| {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| usage_error(&format!("cannot read {path}: {e}")));
                serde_json::from_str(&text)
                    .unwrap_or_else(|e| usage_error(&format!("{path} is not a shard ledger: {e}")))
            })
            .collect();
        let merged = sharding::merge_emissions(emissions, files)
            .unwrap_or_else(|e| usage_error(&format!("cannot merge shards: {e}")));
        sharding::begin_replay(merged.records, merged.source);
    }

    // Live progress over the local session: `--progress-stream`
    // (machine lines for a parent driver) wins over `--progress`
    // (human display) — a spawned child never renders its own display.
    let reporter = match &session {
        Some(metrics) if progress_stream => Some(ProgressReporter::stream(metrics)),
        Some(metrics) if progress => Some(ProgressReporter::human(metrics)),
        _ => None,
    };

    for w in &wanted {
        match w.as_str() {
            "x1" => x1(&cfg),
            "x2" => x2(&cfg),
            "x3" => x3(&cfg),
            "x4" => x4(&cfg),
            "x5" => x5(&cfg),
            "x6" => x6(&cfg),
            "x7" => x7(&cfg),
            "x8" => x8(&cfg),
            "x9" => x9(&cfg),
            "x10" => x10(&cfg),
            "x11" => x11(&cfg),
            other => eprintln!("unknown experiment: {other}"),
        }
    }

    if let Some(reporter) = reporter {
        reporter.finish();
    }
    if shard.is_some() {
        let emission = sharding::finish_shard();
        println!(
            "{}",
            serde_json::to_string_pretty(&emission).expect("serializable ledger")
        );
    } else if spawn.is_some() || merge_files.is_some() || fabric_workers.is_some() {
        sharding::finish_replay();
    }
    // A fabric worker's last act: deliver its telemetry snapshot over
    // the socket and half-close, letting the coordinator's handler see
    // a clean end of conversation.
    if fabric_worker_addr.is_some() {
        fabric::finish_worker();
    }
    // Telemetry emission, after every exact byte of output is out: the
    // final `@telemetry` protocol line for a parent driver, the sidecar
    // file for a local session, the merged child sidecar for the spawn
    // driver.
    if let Some(metrics) = &session {
        if telemetry_stream {
            eprintln!("{}", telemetry_line(&metrics.snapshot()));
        }
        if let Some(path) = &telemetry_path {
            write_sidecar(path, &metrics.snapshot());
        }
    }
    if let (Some(path), Some(snapshot)) = (&telemetry_path, &spawned_snapshot) {
        write_sidecar(path, snapshot);
    }
}

fn x1(cfg: &Config) {
    section(
        cfg,
        "\n## X1 — Proposition 2.1: Cheap (cost <= 3E, time <= (2L+1)E)\n",
    );
    let (n, ls): (usize, Vec<u64>) = if cfg.quick {
        (8, vec![2, 4, 8])
    } else {
        (12, vec![2, 4, 8, 16, 32])
    };
    let rows = x1_cheap::run(
        n,
        &ls,
        ls.iter().max().copied().unwrap_or(8) <= 8,
        &cfg.runner,
    );
    emit(cfg, "x1", &rows, x1_cheap::render(&rows));
}

fn x2(cfg: &Config) {
    section(
        cfg,
        "\n## X2 — Proposition 2.2: Fast (time and cost O(E log L))\n",
    );
    let (n, ls): (usize, Vec<u64>) = if cfg.quick {
        (8, vec![2, 8, 32])
    } else {
        (12, vec![2, 4, 8, 16, 64, 256])
    };
    let rows = x2_fast::run(n, &ls, false, &cfg.runner);
    emit(cfg, "x2", &rows, x2_fast::render(&rows));
}

fn x3(cfg: &Config) {
    section(
        cfg,
        "\n## X3 — Proposition 2.3 / Corollary 2.1: FastWithRelabeling(w)\n",
    );
    section(cfg, "### Analytic bounds (per E)\n");
    let ls: Vec<u64> = if cfg.quick {
        vec![16, 256]
    } else {
        vec![16, 64, 256, 1024, 4096]
    };
    let rows = x3_relabel::run_bounds(&ls, &[1, 2, 3, 4]);
    emit(cfg, "x3-bounds", &rows, x3_relabel::render_bounds(&rows));
    section(cfg, "\n### Measured on an oriented ring\n");
    let (n, l) = if cfg.quick { (6, 8) } else { (10, 16) };
    let rows = x3_relabel::run_exec(n, l, &[1, 2, 3, 4], &cfg.runner);
    emit(cfg, "x3-exec", &rows, x3_relabel::render_exec(&rows));
}

fn x4(cfg: &Config) {
    section(cfg, "\n## X4 — The time/cost tradeoff frontier\n");
    let (n, l, ws): (usize, u64, Vec<u64>) = if cfg.quick {
        (8, 32, vec![2, 3])
    } else {
        (12, 64, vec![1, 2, 3, 4, 5])
    };
    let points = x4_tradeoff::run(n, l, &ws, &cfg.runner);
    emit(cfg, "x4", &points, x4_tradeoff::render(&points));
}

fn x5(cfg: &Config) {
    section(
        cfg,
        "\n## X5 — Theorem 3.1: cost E + o(E) forces time Omega(EL)\n",
    );
    let (n, ls): (usize, Vec<u64>) = if cfg.quick {
        (12, vec![4, 8])
    } else {
        (12, vec![4, 6, 8, 10, 12, 16])
    };
    let rows = x5_lb_time::run(n, &ls, &cfg.runner);
    emit(cfg, "x5", &rows, x5_lb_time::render(&rows));
}

fn x6(cfg: &Config) {
    section(
        cfg,
        "\n## X6 — Theorem 3.2: time O(E log L) forces cost Omega(E log L)\n",
    );
    let (n, ls): (usize, Vec<u64>) = if cfg.quick {
        (12, vec![4, 8])
    } else {
        (12, vec![4, 8, 16, 32])
    };
    let rows = x6_lb_cost::run(n, &ls, &cfg.runner);
    emit(cfg, "x6", &rows, x6_lb_cost::render(&rows));
}

fn x7(cfg: &Config) {
    section(cfg, "\n## X7 — Graph families and exploration scenarios\n");
    let l = if cfg.quick { 4 } else { 8 };
    let rows = x7_families::run(l, 0xBEEF, &cfg.runner);
    emit(cfg, "x7", &rows, x7_families::render(&rows));
}

fn x8(cfg: &Config) {
    section(
        cfg,
        "\n## X8 — Unknown E: iterated algorithms (Conclusion)\n",
    );
    let ns: Vec<usize> = if cfg.quick { vec![6] } else { vec![6, 12, 24] };
    let rows = x8_iterated::run(&ns, 4, &cfg.runner);
    emit(cfg, "x8", &rows, x8_iterated::render(&rows));
}

fn x10(cfg: &Config) {
    section(
        cfg,
        "\n## X10 — Topology sweep: 100+ seeded graphs per family\n",
    );
    let (l, cap) = if cfg.quick { (4, 6) } else { (6, 24) };
    let specs = x10_topologies::standard_topo_specs(cfg.quick);
    let report = x10_topologies::run(specs, l, cap, &cfg.runner);
    emit(
        cfg,
        "x10",
        &report.rows,
        x10_topologies::render(&report.rows),
    );
}

fn x11(cfg: &Config) {
    section(
        cfg,
        "\n## X11 — Gathering fleets across the topology grid\n",
    );
    let (l, cap) = if cfg.quick { (4, 4) } else { (6, 8) };
    let specs = x10_topologies::standard_topo_specs(cfg.quick);
    let report = x11_gathering_topo::run(
        specs,
        l,
        &x11_gathering_topo::standard_fleet_sizes(cfg.quick),
        &x11_gathering_topo::standard_phases(cfg.quick),
        cap,
        &cfg.runner,
    );
    emit(
        cfg,
        "x11",
        &report.rows,
        x11_gathering_topo::render(&report.rows),
    );
}

fn x9(cfg: &Config) {
    section(
        cfg,
        "\n## X9 — Extension: k-agent gathering by merge-and-restart\n",
    );
    let ks: Vec<usize> = if cfg.quick {
        vec![2, 3]
    } else {
        vec![2, 3, 4, 5, 6]
    };
    let rows = x9_gathering::run(12, 32, &ks, &cfg.runner);
    emit(cfg, "x9", &rows, x9_gathering::render(&rows));
}
