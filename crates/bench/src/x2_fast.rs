//! Experiment X2 — Proposition 2.2: `Fast` has time ≤ (4⌊log(L−1)⌋+9)E
//! and cost ≤ twice that.
//!
//! Expected shape: both metrics grow logarithmically in `L`.

use crate::common::{
    all_label_pairs, measure_worst, ring_setup, standard_delays, standard_label_pairs,
};
use rendezvous_core::{Fast, LabelSpace, RendezvousAlgorithm};
use rendezvous_runner::Runner;
use serde::Serialize;

/// One row of the X2 table.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Ring size.
    pub n: usize,
    /// Label-space size.
    pub l: u64,
    /// Exploration bound.
    pub e: u64,
    /// Measured worst time.
    pub time: u64,
    /// Paper bound `(4⌊log(L−1)⌋+9)E`.
    pub time_bound: u64,
    /// Measured worst cost.
    pub cost: u64,
    /// Paper bound `(8⌊log(L−1)⌋+18)E`.
    pub cost_bound: u64,
}

/// Runs the sweep (see [`crate::x1_cheap::run`] for the flags).
#[must_use]
pub fn run(n: usize, ls: &[u64], exhaustive_labels: bool, runner: &Runner) -> Vec<Row> {
    let (g, ex) = ring_setup(n);
    let e = (n - 1) as u64;
    let delays = standard_delays(e);
    ls.iter()
        .map(|&l| {
            let space = LabelSpace::new(l).expect("l >= 2");
            let pairs = if exhaustive_labels {
                all_label_pairs(l)
            } else {
                standard_label_pairs(l)
            };
            let alg = Fast::new(g.clone(), ex.clone(), space);
            let m = measure_worst(&alg, &pairs, &delays, 4 * alg.time_bound(), runner);
            Row {
                n,
                l,
                e,
                time: m.time,
                time_bound: alg.time_bound(),
                cost: m.cost,
                cost_bound: alg.cost_bound(),
            }
        })
        .collect()
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "n",
        "L",
        "E",
        "time",
        "bound (4logL+9)E",
        "cost",
        "bound 2x",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.l.to_string(),
                r.e.to_string(),
                r.time.to_string(),
                r.time_bound.to_string(),
                r.cost.to_string(),
                r.cost_bound.to_string(),
            ]
        })
        .collect();
    crate::common::markdown_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x2_bounds_hold_and_growth_is_logarithmic() {
        let rows = run(8, &[2, 8, 64], false, &Runner::with_threads(4));
        for r in &rows {
            assert!(r.time <= r.time_bound, "time {} > {}", r.time, r.time_bound);
            assert!(r.cost <= r.cost_bound);
        }
        // Shape: going from L=8 to L=64 (8x) increases time by far less
        // than 8x (logarithmic growth).
        let growth = rows[2].time as f64 / rows[1].time as f64;
        assert!(growth < 4.0, "growth {growth} not logarithmic");
    }
}
