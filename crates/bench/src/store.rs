//! The experiments binary's side of the result store: a process-global
//! read-through cache session.
//!
//! With `--store DIR` active, every recorded sweep consults the
//! content-addressed store *before* any execution plan (sharding,
//! fabric, direct) gets a say: a hit returns the cached
//! [`SweepReport`] byte-identically and executes **zero** scenarios; a
//! miss falls through to whatever topology the run was going to use —
//! including `--fabric workers=N`, so novel sweeps schedule onto the
//! worker fleet — and the finished full report is written back.
//!
//! The determinism discipline across processes is subtraction, not
//! coordination: every process of a run (driver, spawned shards, fabric
//! workers) opens the same store directory and derives the same
//! [`StoreKey`] per sweep, so all of them see the same hit/miss
//! pattern and skip the same sweeps — shard ledgers and fabric sweep
//! numbering stay aligned with the driver's replay cursor without any
//! messages about the cache ever crossing a process boundary. Only
//! *full* reports are written back (the direct-execution and
//! merged-replay paths in
//! [`sweep_recorded`](crate::common::sweep_recorded)); shard and worker
//! processes hold partial folds and never populate.

use rendezvous_runner::{SweepReport, WorkloadMeta};
use rendezvous_store::{Miss, Store, StoreKey};
use rendezvous_telemetry::Scope;
use std::path::Path;
use std::sync::OnceLock;

static SESSION: OnceLock<Store> = OnceLock::new();

/// Opens the store at `dir` (creating it if needed) and installs it for
/// the rest of the process.
///
/// # Panics
///
/// Panics if the directory cannot be created or a session is already
/// installed.
pub fn begin(dir: &Path) {
    let store = Store::open(dir).unwrap_or_else(|e| panic!("cannot open the result store: {e}"));
    assert!(SESSION.set(store).is_ok(), "store session already active");
}

/// True when the CLI enabled `--store`.
#[must_use]
pub fn active() -> bool {
    SESSION.get().is_some()
}

/// The key addressing `context`'s sweep of `meta` under the process's
/// current engine — one derivation for lookups, write-backs and the
/// `--plan` store column.
fn key_of(context: &str, meta: &WorkloadMeta) -> StoreKey {
    StoreKey::new(context, meta, crate::engine::current().name())
}

/// Consults the store for a cached report. `None` when no session is
/// active or on any typed miss (absent, corrupt, schema drift,
/// fingerprint drift) — the caller executes, exactly as without a
/// store. A hit counts `store_hits`, a miss `store_misses`, under the
/// process scope (cache behavior is a property of this run's store,
/// not of the swept space).
#[must_use]
pub fn lookup(context: &str, meta: &WorkloadMeta) -> Option<SweepReport> {
    let store = SESSION.get()?;
    match store.load(&key_of(context, meta)) {
        Ok(report) => {
            if let Some(metrics) = crate::telemetry::current() {
                metrics.counter(Scope::Process, "store_hits").inc();
            }
            Some(report)
        }
        Err(miss) => {
            if let Some(metrics) = crate::telemetry::current() {
                metrics.counter(Scope::Process, "store_misses").inc();
            }
            // A demoted entry (anything but plain absence) is worth a
            // visible note on stderr — the run recomputes either way,
            // but silent corruption would make `store verify` the only
            // way to ever learn about it.
            if miss != Miss::Absent {
                eprintln!("store: recomputing {context}: {miss}");
            }
            None
        }
    }
}

/// Writes a **full** sweep report back to the store. Callers guarantee
/// completeness (the direct-execution and merged-replay paths do;
/// shard/worker partials must never reach here).
///
/// # Panics
///
/// Panics if the write fails — a cache that silently stops recording
/// would make cold and warm runs diverge in what they execute.
pub fn record(context: &str, meta: &WorkloadMeta, report: &SweepReport) {
    let Some(store) = SESSION.get() else {
        return;
    };
    let key = key_of(context, meta);
    store
        .save(&key, context, crate::engine::current().name(), meta, report)
        .unwrap_or_else(|e| panic!("cannot record {context} in the result store: {e}"));
}

/// The `--plan` store column: `Some("cached")` / `Some("miss")` when a
/// session is active, `None` otherwise (the line then omits the
/// column). Uses the same lookup as a real run, so the plan's
/// prediction is exact.
#[must_use]
pub fn plan_status(context: &str, meta: &WorkloadMeta) -> Option<&'static str> {
    let store = SESSION.get()?;
    match store.load(&key_of(context, meta)) {
        Ok(_) => Some("cached"),
        Err(_) => Some("miss"),
    }
}
