//! Experiment X5 — Theorem 3.1, numerically: any algorithm of cost
//! `E + o(E)` needs time `Ω(EL)`.
//!
//! We run the paper's own construction (trim → eager tournament → Rédei
//! path → execution chain) against `CheapSimultaneous` (cost exactly ≤ E,
//! so `φ = 0`) and report, per `L`: the Fact 3.8 witness
//! `(⌊L/2⌋−1)(F−3φ)/2`, the measured final chain time, and the paper's
//! matching upper bound — the time really does grow linearly in `L`.

use crate::common::ring_setup;
use rendezvous_core::{CheapSimultaneous, LabelSpace, RendezvousAlgorithm};
use rendezvous_lower_bounds::eager_chain_audit;
use rendezvous_runner::Runner;
use serde::Serialize;

/// One row of the X5 table.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Ring size.
    pub n: usize,
    /// Label-space size.
    pub l: u64,
    /// `F = ⌈E/2⌉`.
    pub f: u64,
    /// Measured cost slack `φ` (0 for the cheap variant).
    pub phi: u64,
    /// Number of heavy-side agents in the tournament.
    pub heavy: usize,
    /// Fact 3.8 witness `(⌊L/2⌋−1)(F−3φ)/2`.
    pub witness: u64,
    /// Measured final chain execution time.
    pub chain_time: u64,
    /// Fact 3.7: chain strictly increasing.
    pub increasing: bool,
    /// Algorithm's own worst-case time bound `(L−1)E` for context.
    pub upper_bound: u64,
}

/// Runs the audit for each `L` on an `n`-ring.
///
/// # Panics
///
/// Panics if the audit fails (it cannot, for `CheapSimultaneous`).
#[must_use]
pub fn run(n: usize, ls: &[u64], runner: &Runner) -> Vec<Row> {
    runner.map(ls.to_vec(), |_, l| {
        let (g, ex) = ring_setup(n);
        let alg = CheapSimultaneous::new(g, ex, LabelSpace::new(l).expect("l >= 2"));
        let report = eager_chain_audit(&alg, 20 * alg.time_bound()).expect("audit must succeed");
        Row {
            n,
            l,
            f: report.f,
            phi: report.phi,
            heavy: report.heavy.len(),
            witness: report.witness,
            chain_time: report.chain_final_time(),
            increasing: report.strictly_increasing,
            upper_bound: alg.time_bound(),
        }
    })
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "n",
        "L",
        "F",
        "phi",
        "heavy",
        "witness (L/2-1)(F-3phi)/2",
        "measured chain time",
        "increasing",
        "upper bound (L-1)E",
    ];
    let body = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.l.to_string(),
                r.f.to_string(),
                r.phi.to_string(),
                r.heavy.to_string(),
                r.witness.to_string(),
                r.chain_time.to_string(),
                r.increasing.to_string(),
                r.upper_bound.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    crate::common::markdown_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x5_witness_grows_linearly_and_holds() {
        let rows = run(12, &[4, 8, 12], &Runner::with_threads(3));
        for r in &rows {
            assert_eq!(r.phi, 0);
            assert!(r.increasing, "Fact 3.7 violated at L={}", r.l);
            assert!(
                r.chain_time >= r.witness,
                "L={}: chain {} < witness {}",
                r.l,
                r.chain_time,
                r.witness
            );
            assert!(r.chain_time <= r.upper_bound);
        }
        // Linear growth of the witness in L (the Ω(EL) shape).
        assert!(rows[2].witness >= 2 * rows[0].witness);
        assert!(rows[2].chain_time > rows[0].chain_time);
    }
}
