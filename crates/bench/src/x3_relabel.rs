//! Experiment X3 — Proposition 2.3 and Corollary 2.1:
//! `FastWithRelabeling(w)` has cost `O(wE)` (flat in `L`) and time
//! `≤ (4t+5)E ∈ O(L^{1/w} E)` for constant `w`.
//!
//! Two parts: an analytic sweep of `t` and the bounds over large `L`
//! (verifying the `L^{1/w}` scaling), and an execution sweep on a small
//! ring checking measured ≤ bound.

use crate::common::{all_label_pairs, measure_worst, ring_setup, standard_delays};
use rendezvous_core::{
    corollary_t_prime, smallest_t, FastWithRelabeling, LabelSpace, RendezvousAlgorithm,
};
use rendezvous_runner::Runner;
use serde::Serialize;

/// Analytic row: the bound structure for one `(L, w)`.
#[derive(Debug, Clone, Serialize)]
pub struct BoundRow {
    /// Label-space size.
    pub l: u64,
    /// Relabeling weight.
    pub w: u64,
    /// `t = min{t : C(t,w) ≥ L}`.
    pub t: u64,
    /// Proposition 2.3 time bound `(4t+5)E` in units of `E`.
    pub time_bound_per_e: u64,
    /// Corollary 2.1 envelope `(4⌈w·L^{1/w}⌉+5)` in units of `E`.
    pub corollary_per_e: u64,
    /// Provable cost bound `(4w+2)` in units of `E`.
    pub cost_bound_per_e: u64,
}

/// Execution row: measured versus bound for one `(L, w)` on a ring.
#[derive(Debug, Clone, Serialize)]
pub struct ExecRow {
    /// Ring size.
    pub n: usize,
    /// Label-space size.
    pub l: u64,
    /// Relabeling weight.
    pub w: u64,
    /// Measured worst time.
    pub time: u64,
    /// Proposition 2.3 bound.
    pub time_bound: u64,
    /// Measured worst cost.
    pub cost: u64,
    /// Provable cost bound `(4w+2)E`.
    pub cost_bound: u64,
}

/// Analytic sweep (no simulation; arbitrary `L`).
#[must_use]
pub fn run_bounds(ls: &[u64], ws: &[u64]) -> Vec<BoundRow> {
    let mut rows = Vec::new();
    for &l in ls {
        for &w in ws {
            if w > l {
                continue;
            }
            let t = smallest_t(w, l);
            let cor = 4 * corollary_t_prime(w, l) + 5;
            rows.push(BoundRow {
                l,
                w,
                t,
                time_bound_per_e: 4 * t + 5,
                corollary_per_e: cor,
                cost_bound_per_e: 4 * w + 2,
            });
        }
    }
    rows
}

/// Execution sweep on an oriented ring, exhaustive over label pairs.
#[must_use]
pub fn run_exec(n: usize, l: u64, ws: &[u64], runner: &Runner) -> Vec<ExecRow> {
    let (g, ex) = ring_setup(n);
    let e = (n - 1) as u64;
    let delays = standard_delays(e);
    let pairs = all_label_pairs(l);
    ws.iter()
        .filter(|&&w| w <= l)
        .map(|&w| {
            let alg = FastWithRelabeling::new(
                g.clone(),
                ex.clone(),
                LabelSpace::new(l).expect("l >= 2"),
                w,
            )
            .expect("valid weight");
            let m = measure_worst(&alg, &pairs, &delays, 4 * alg.time_bound(), runner);
            ExecRow {
                n,
                l,
                w,
                time: m.time,
                time_bound: alg.time_bound(),
                cost: m.cost,
                cost_bound: alg.cost_bound(),
            }
        })
        .collect()
}

/// Renders the analytic table.
#[must_use]
pub fn render_bounds(rows: &[BoundRow]) -> String {
    let header = [
        "L",
        "w",
        "t",
        "time/(E) = 4t+5",
        "corollary 4wL^(1/w)+5",
        "cost/(E) = 4w+2",
    ];
    let body = rows
        .iter()
        .map(|r| {
            vec![
                r.l.to_string(),
                r.w.to_string(),
                r.t.to_string(),
                r.time_bound_per_e.to_string(),
                r.corollary_per_e.to_string(),
                r.cost_bound_per_e.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    crate::common::markdown_table(&header, &body)
}

/// Renders the execution table.
#[must_use]
pub fn render_exec(rows: &[ExecRow]) -> String {
    let header = [
        "n",
        "L",
        "w",
        "time",
        "bound (4t+5)E",
        "cost",
        "bound (4w+2)E",
    ];
    let body = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.l.to_string(),
                r.w.to_string(),
                r.time.to_string(),
                r.time_bound.to_string(),
                r.cost.to_string(),
                r.cost_bound.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    crate::common::markdown_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x3_bounds_scale_as_l_to_one_over_w() {
        let rows = run_bounds(&[64, 4096], &[1, 2, 3]);
        let at = |l: u64, w: u64| {
            rows.iter()
                .find(|r| r.l == l && r.w == w)
                .unwrap()
                .time_bound_per_e
        };
        // w=1: time ~ L (64 -> 4096 is 64x).
        assert!(at(4096, 1) > 40 * at(64, 1) / 2);
        // w=2: time ~ sqrt(L) (64x more labels -> ~8x more time).
        let g2 = at(4096, 2) as f64 / at(64, 2) as f64;
        assert!(g2 < 12.0 && g2 > 4.0, "sqrt scaling, got {g2}");
        // proposition bound always within the corollary envelope
        for r in &rows {
            assert!(r.time_bound_per_e <= r.corollary_per_e);
        }
    }

    #[test]
    fn x3_exec_within_bounds() {
        let rows = run_exec(6, 8, &[1, 2, 3], &Runner::with_threads(4));
        for r in &rows {
            assert!(r.time <= r.time_bound);
            assert!(r.cost <= r.cost_bound);
        }
        // cost is flat-ish in w... increasing w increases the cost cap:
        assert!(rows[0].cost_bound < rows[2].cost_bound);
    }
}
