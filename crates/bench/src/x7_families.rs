//! Experiment X7 — generality: the algorithms work on arbitrary connected
//! graphs with whatever exploration procedure (and bound `E`) is available
//! (§1.2's scenarios).
//!
//! One row per (graph family, explorer): run `Cheap` and `Fast`, check the
//! bounds hold with the family-specific `E`.

use crate::common::{measure_worst, standard_delays};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rendezvous_core::{Cheap, Fast, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::{
    DfsMapExplorer, EulerianExplorer, Explorer, HamiltonianExplorer, OrientedRingExplorer,
    TrialDfsExplorer, UxsExplorer,
};
use rendezvous_graph::{generators, HamiltonianCycle, PortLabeledGraph};
use rendezvous_runner::Runner;
use serde::Serialize;
use std::sync::Arc;

/// One row of the X7 table.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Family label.
    pub family: String,
    /// Explorer used.
    pub explorer: &'static str,
    /// Nodes.
    pub n: usize,
    /// Edges.
    pub e_edges: usize,
    /// Exploration bound `E`.
    pub e_bound: u64,
    /// Measured worst `Cheap` time / its bound.
    pub cheap_time: u64,
    /// `(2L+1)E`.
    pub cheap_time_bound: u64,
    /// Measured worst `Cheap` cost (bound `3E`).
    pub cheap_cost: u64,
    /// Measured worst `Fast` time / its bound.
    pub fast_time: u64,
    /// `(4⌊log(L−1)⌋+9)E`.
    pub fast_time_bound: u64,
    /// Measured worst `Fast` cost.
    pub fast_cost: u64,
}

fn families(seed: u64) -> Vec<(String, Arc<PortLabeledGraph>, Arc<dyn Explorer>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<(String, Arc<PortLabeledGraph>, Arc<dyn Explorer>)> = Vec::new();

    let ring = Arc::new(generators::oriented_ring(10).expect("ring"));
    out.push((
        "oriented ring(10)".into(),
        ring.clone(),
        Arc::new(OrientedRingExplorer::new(ring.clone()).expect("ring explorer")),
    ));

    let star = Arc::new(generators::star(7).expect("star"));
    out.push((
        "star(7 leaves)".into(),
        star.clone(),
        Arc::new(DfsMapExplorer::new(star.clone())),
    ));

    let tree = Arc::new(generators::random_tree(12, &mut rng).expect("tree"));
    out.push((
        "random tree(12)".into(),
        tree.clone(),
        Arc::new(DfsMapExplorer::new(tree.clone())),
    ));

    let grid = Arc::new(generators::grid(3, 4).expect("grid"));
    out.push((
        "grid(3x4)".into(),
        grid.clone(),
        Arc::new(DfsMapExplorer::new(grid.clone())),
    ));

    let cube = Arc::new(generators::hypercube(3).expect("hypercube"));
    let cycle = HamiltonianCycle::known_hypercube(&cube).expect("gray code");
    out.push((
        "hypercube(3)".into(),
        cube.clone(),
        Arc::new(HamiltonianExplorer::new(cube.clone(), cycle).expect("hamiltonian")),
    ));

    let torus = Arc::new(generators::torus(3, 3).expect("torus"));
    out.push((
        "torus(3x3)".into(),
        torus.clone(),
        Arc::new(EulerianExplorer::new(torus.clone()).expect("eulerian")),
    ));

    let er = Arc::new(generators::erdos_renyi_connected(9, 0.3, &mut rng).expect("er"));
    out.push((
        "erdos-renyi(9, 0.3)".into(),
        er.clone(),
        Arc::new(TrialDfsExplorer::new(er.clone()).expect("trial dfs")),
    ));

    let scrambled = Arc::new(generators::scrambled_ring(8, &mut rng).expect("scrambled"));
    out.push((
        "scrambled ring(8)".into(),
        scrambled.clone(),
        Arc::new(UxsExplorer::search(scrambled.clone(), 4_000, &mut rng).expect("uxs")),
    ));

    out
}

/// Runs `Cheap` and `Fast` with label space `L` over every family.
#[must_use]
pub fn run(l: u64, seed: u64, runner: &Runner) -> Vec<Row> {
    let space = LabelSpace::new(l).expect("l >= 2");
    let pairs = crate::common::standard_label_pairs(l);
    families(seed)
        .into_iter()
        .map(|(family, graph, explorer)| {
            let e = explorer.bound() as u64;
            let delays = standard_delays(e);
            let cheap = Cheap::new(graph.clone(), explorer.clone(), space);
            let mc = measure_worst(&cheap, &pairs, &delays, 4 * cheap.time_bound(), runner);
            let fast = Fast::new(graph.clone(), explorer.clone(), space);
            let mf = measure_worst(&fast, &pairs, &delays, 4 * fast.time_bound(), runner);
            Row {
                family,
                explorer: explorer.name(),
                n: graph.node_count(),
                e_edges: graph.edge_count(),
                e_bound: e,
                cheap_time: mc.time,
                cheap_time_bound: cheap.time_bound(),
                cheap_cost: mc.cost,
                fast_time: mf.time,
                fast_time_bound: fast.time_bound(),
                fast_cost: mf.cost,
            }
        })
        .collect()
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "family",
        "explorer",
        "n",
        "edges",
        "E",
        "cheap time",
        "bound",
        "cheap cost",
        "fast time",
        "bound",
        "fast cost",
    ];
    let body = rows
        .iter()
        .map(|r| {
            vec![
                r.family.clone(),
                r.explorer.to_string(),
                r.n.to_string(),
                r.e_edges.to_string(),
                r.e_bound.to_string(),
                r.cheap_time.to_string(),
                r.cheap_time_bound.to_string(),
                r.cheap_cost.to_string(),
                r.fast_time.to_string(),
                r.fast_time_bound.to_string(),
                r.fast_cost.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    crate::common::markdown_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x7_all_families_meet_within_bounds() {
        let rows = run(6, 0xBEEF, &Runner::with_threads(4));
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(
                r.cheap_time <= r.cheap_time_bound,
                "{}: cheap {} > {}",
                r.family,
                r.cheap_time,
                r.cheap_time_bound
            );
            assert!(r.cheap_cost <= 3 * r.e_bound, "{}: cheap cost", r.family);
            assert!(
                r.fast_time <= r.fast_time_bound,
                "{}: fast {} > {}",
                r.family,
                r.fast_time,
                r.fast_time_bound
            );
            assert!(r.fast_cost <= 2 * r.fast_time_bound);
        }
    }
}
