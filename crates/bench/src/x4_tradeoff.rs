//! Experiment X4 — the paper's central message as one figure: the
//! time/cost tradeoff frontier.
//!
//! All algorithms on one `(E, L)` instance, each contributing a
//! `(time, cost)` point (both measured and paper-bound). Expected shape:
//! `Cheap` anchors the low-cost/high-time corner, `Fast` the low-time/
//! high-cost corner, and `FastWithRelabeling(w)` sweeps monotonically
//! between them as `w` grows.

use crate::common::{measure_worst, ring_setup, standard_delays, standard_label_pairs};
use rendezvous_core::{
    Cheap, CheapSimultaneous, Fast, FastWithRelabeling, LabelSpace, RendezvousAlgorithm,
};
use rendezvous_runner::Runner;
use serde::Serialize;

/// One point of the frontier.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Algorithm name (with parameter, e.g. `fwr(w=2)`).
    pub algorithm: String,
    /// Measured worst time.
    pub time: u64,
    /// Paper time bound.
    pub time_bound: u64,
    /// Measured worst cost.
    pub cost: u64,
    /// Paper cost bound.
    pub cost_bound: u64,
}

/// Runs every algorithm on an `n`-ring with label space `L`.
#[must_use]
pub fn run(n: usize, l: u64, ws: &[u64], runner: &Runner) -> Vec<Point> {
    let (g, ex) = ring_setup(n);
    let e = (n - 1) as u64;
    let space = LabelSpace::new(l).expect("l >= 2");
    let pairs = standard_label_pairs(l);
    let delays = standard_delays(e);
    let mut points = Vec::new();

    let sim = CheapSimultaneous::new(g.clone(), ex.clone(), space);
    let m = measure_worst(&sim, &pairs, &[0], 4 * sim.time_bound() + e, runner);
    points.push(Point {
        algorithm: "cheap-simultaneous".into(),
        time: m.time,
        time_bound: sim.time_bound(),
        cost: m.cost,
        cost_bound: sim.cost_bound(),
    });

    let cheap = Cheap::new(g.clone(), ex.clone(), space);
    let m = measure_worst(&cheap, &pairs, &delays, 4 * cheap.time_bound(), runner);
    points.push(Point {
        algorithm: "cheap".into(),
        time: m.time,
        time_bound: cheap.time_bound(),
        cost: m.cost,
        cost_bound: cheap.cost_bound(),
    });

    for &w in ws {
        if w > l {
            continue;
        }
        let alg = FastWithRelabeling::new(g.clone(), ex.clone(), space, w).expect("valid w");
        let m = measure_worst(&alg, &pairs, &delays, 4 * alg.time_bound(), runner);
        points.push(Point {
            algorithm: format!("fwr(w={w})"),
            time: m.time,
            time_bound: alg.time_bound(),
            cost: m.cost,
            cost_bound: alg.cost_bound(),
        });
    }

    let fast = Fast::new(g, ex, space);
    let m = measure_worst(&fast, &pairs, &delays, 4 * fast.time_bound(), runner);
    points.push(Point {
        algorithm: "fast".into(),
        time: m.time,
        time_bound: fast.time_bound(),
        cost: m.cost,
        cost_bound: fast.cost_bound(),
    });

    points
}

/// Renders the frontier as a table ordered from cheap to fast.
#[must_use]
pub fn render(points: &[Point]) -> String {
    let header = ["algorithm", "time", "time bound", "cost", "cost bound"];
    let body = points
        .iter()
        .map(|p| {
            vec![
                p.algorithm.clone(),
                p.time.to_string(),
                p.time_bound.to_string(),
                p.cost.to_string(),
                p.cost_bound.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    crate::common::markdown_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x4_frontier_shape() {
        let points = run(8, 32, &[2, 3], &Runner::with_threads(4));
        let by_name = |n: &str| points.iter().find(|p| p.algorithm == n).unwrap();
        let cheap = by_name("cheap");
        let fast = by_name("fast");
        let fwr2 = by_name("fwr(w=2)");
        // Frontier ends: Fast strictly faster (bound-wise), Cheap strictly
        // cheaper.
        assert!(fast.time_bound < cheap.time_bound);
        assert!(cheap.cost_bound < fast.cost_bound);
        // The interior point sits between the ends on both axes.
        assert!(fwr2.time_bound < cheap.time_bound);
        assert!(fwr2.cost_bound < fast.cost_bound);
        // Measured values respect the bounds everywhere.
        for p in &points {
            assert!(
                p.time <= p.time_bound,
                "{}: {} > {}",
                p.algorithm,
                p.time,
                p.time_bound
            );
            assert!(p.cost <= p.cost_bound);
        }
    }
}
