//! Experiment X8 — Conclusion: iterating the algorithms over a doubling
//! exploration family preserves their complexities (telescoping), so no
//! upper bound on the network size needs to be known.
//!
//! For each ring size: compare the iterated algorithm (which does *not*
//! know `n`) against the plain algorithm (which does). Expected shape: the
//! iterated versions pay a small constant factor, not an asymptotic one.

use crate::common::{measure_worst, ring_setup, standard_delays, standard_label_pairs};
use rendezvous_core::{BaseAlgorithm, Cheap, Fast, Iterated, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::{ExplorationFamily, RingDoublingFamily};
use rendezvous_runner::Runner;
use serde::Serialize;
use std::sync::Arc;

/// One row of the X8 table.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Ring size (unknown to the iterated agents).
    pub n: usize,
    /// Base algorithm iterated.
    pub base: &'static str,
    /// Measured worst time of the iterated version.
    pub iter_time: u64,
    /// Measured worst cost of the iterated version.
    pub iter_cost: u64,
    /// Measured worst time of the known-`E` version.
    pub plain_time: u64,
    /// Measured worst cost of the known-`E` version.
    pub plain_cost: u64,
    /// time ratio iterated / plain.
    // analyze: allow(d3) — display-only ratio column; the table sorts and the suite
    // asserts on the exact integer fields
    pub time_ratio: f64,
    /// cost ratio iterated / plain.
    // analyze: allow(d3) — display-only ratio column, as `time_ratio`
    pub cost_ratio: f64,
}

/// Runs the comparison on an `n`-ring with label space `L`.
#[must_use]
pub fn run(ns: &[usize], l: u64, runner: &Runner) -> Vec<Row> {
    let space = LabelSpace::new(l).expect("l >= 2");
    let pairs = standard_label_pairs(l);
    let mut rows = Vec::new();
    for &n in ns {
        let (g, ex) = ring_setup(n);
        let e = (n - 1) as u64;
        let delays = standard_delays(e);
        let fam = Arc::new(RingDoublingFamily::new());
        let top = fam.level_for(n);
        for (base, name) in [
            (BaseAlgorithm::Fast, "fast"),
            (BaseAlgorithm::Cheap, "cheap"),
        ] {
            let iter =
                Iterated::new(g.clone(), fam.clone(), space, base, 1..=top).expect("valid levels");
            let mi = measure_worst(&iter, &pairs, &delays, 8 * iter.time_bound(), runner);
            let (plain_time, plain_cost) = match base {
                BaseAlgorithm::Fast => {
                    let plain = Fast::new(g.clone(), ex.clone(), space);
                    let m = measure_worst(&plain, &pairs, &delays, 4 * plain.time_bound(), runner);
                    (m.time, m.cost)
                }
                _ => {
                    let plain = Cheap::new(g.clone(), ex.clone(), space);
                    let m = measure_worst(&plain, &pairs, &delays, 4 * plain.time_bound(), runner);
                    (m.time, m.cost)
                }
            };
            rows.push(Row {
                n,
                base: name,
                iter_time: mi.time,
                iter_cost: mi.cost,
                plain_time,
                plain_cost,
                // analyze: allow(d3) — display-only ratio from exact integer measurements
                time_ratio: mi.time as f64 / plain_time as f64,
                // analyze: allow(d3) — display-only ratio from exact integer measurements
                cost_ratio: mi.cost as f64 / plain_cost.max(1) as f64,
            });
        }
    }
    rows
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "n",
        "base",
        "iterated time",
        "plain time",
        "ratio",
        "iterated cost",
        "plain cost",
        "ratio",
    ];
    let body = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.base.to_string(),
                r.iter_time.to_string(),
                r.plain_time.to_string(),
                format!("{:.2}", r.time_ratio),
                r.iter_cost.to_string(),
                r.plain_cost.to_string(),
                format!("{:.2}", r.cost_ratio),
            ]
        })
        .collect::<Vec<_>>();
    crate::common::markdown_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x8_iterated_pays_only_a_constant_factor() {
        let rows = run(&[6, 12], 4, &Runner::with_threads(4));
        for r in &rows {
            // Telescoping: a modest constant factor, not an n- or L-factor.
            assert!(
                r.time_ratio <= 16.0,
                "n={} base={}: time ratio {}",
                r.n,
                r.base,
                r.time_ratio
            );
            assert!(r.cost_ratio <= 16.0);
        }
    }
}
