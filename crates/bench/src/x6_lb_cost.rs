//! Experiment X6 — Theorem 3.2, numerically: any algorithm with time
//! `O(E log L)` has cost `Ω(E log L)`.
//!
//! We run the sector/block construction (aggregate vectors →
//! `DefineProgress` → pigeonhole group → Fact 3.17 witnesses) against
//! `Fast` and report, per `L`: the maximum progress-vector weight in the
//! group and the induced cost witness `k · n/6`. The expected shape is the
//! witness growing with `log L` while `Fast`'s time bound also grows with
//! `log L` — you cannot be fast and cheap at once.

use crate::common::ring_setup;
use rendezvous_core::{Fast, LabelSpace, RendezvousAlgorithm};
use rendezvous_lower_bounds::progress_audit;
use rendezvous_runner::Runner;
use serde::Serialize;

/// One row of the X6 table.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Ring size (divisible by 6).
    pub n: usize,
    /// Label-space size.
    pub l: u64,
    /// `⌈log₂ L⌉`, the growth driver.
    pub log2_l: u32,
    /// Size of the pigeonhole group analyzed.
    pub group_size: usize,
    /// The group's shared final block index `M`.
    pub m_blocks: usize,
    /// All progress vectors distinct (Fact 3.15 requirement)?
    pub distinct: bool,
    /// Maximum non-zero entries over the group's progress vectors.
    pub max_nonzero: usize,
    /// Fact 3.17 cost witness `(max_nonzero/2) · (n/6)`.
    pub cost_witness: u64,
    /// Per-agent Fact 3.17 checks all passed?
    pub witnesses_hold: bool,
    /// Measured worst cost across the trim executions, for context.
    pub measured_cost: u64,
}

/// Runs the audit for each `L` on an `n`-ring (`6 | n`).
///
/// # Panics
///
/// Panics if the audit fails (wrong ring size or a non-meeting execution).
#[must_use]
pub fn run(n: usize, ls: &[u64], runner: &Runner) -> Vec<Row> {
    assert_eq!(n % 6, 0, "X6 needs 6 | n");
    runner.map(ls.to_vec(), |_, l| {
        let (g, ex) = ring_setup(n);
        let alg = Fast::new(g, ex, LabelSpace::new(l).expect("l >= 2"));
        let report = progress_audit(&alg, 4 * alg.time_bound()).expect("audit must succeed");
        Row {
            n,
            l,
            log2_l: l.next_power_of_two().trailing_zeros(),
            group_size: report.group.len(),
            m_blocks: report.m_blocks,
            distinct: report.all_distinct,
            max_nonzero: report.max_nonzero,
            cost_witness: report.cost_witness,
            witnesses_hold: report.witnesses_hold,
            measured_cost: report.trimmed.max_cost,
        }
    })
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let header = [
        "n",
        "L",
        "log2 L",
        "group",
        "M",
        "distinct",
        "max nonzero",
        "cost witness k*n/6",
        "fact 3.17 holds",
        "measured cost",
    ];
    let body = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.l.to_string(),
                r.log2_l.to_string(),
                r.group_size.to_string(),
                r.m_blocks.to_string(),
                r.distinct.to_string(),
                r.max_nonzero.to_string(),
                r.cost_witness.to_string(),
                r.witnesses_hold.to_string(),
                r.measured_cost.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    crate::common::markdown_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x6_witnesses_hold_and_cost_tracks_log_l() {
        let rows = run(12, &[4, 16], &Runner::with_threads(2));
        for r in &rows {
            assert!(r.witnesses_hold, "Fact 3.17 violated at L={}", r.l);
            assert!(r.max_nonzero >= 1);
            assert!(r.measured_cost >= r.cost_witness);
        }
        // More labels -> Fast schedules get longer -> measured cost grows.
        assert!(rows[1].measured_cost >= rows[0].measured_cost);
    }
}
