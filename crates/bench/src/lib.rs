//! Experiment harness regenerating every claim of Miller & Pelc (PODC
//! 2014). The paper is pure theory (no numeric tables), so each
//! proposition/theorem/corollary is reproduced as a measured table — see
//! `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for the
//! recorded outputs.
//!
//! | experiment | claim |
//! |---|---|
//! | [`x1_cheap`] | Prop 2.1 (and the simultaneous-start variant) |
//! | [`x2_fast`] | Prop 2.2 |
//! | [`x3_relabel`] | Prop 2.3 + Corollary 2.1 |
//! | [`x4_tradeoff`] | the time/cost frontier |
//! | [`x5_lb_time`] | Theorem 3.1 (Ω(EL) chain) |
//! | [`x6_lb_cost`] | Theorem 3.2 (Ω(E log L) progress weight) |
//! | [`x7_families`] | generality over graph families / explorers |
//! | [`x8_iterated`] | Conclusion (unknown `E`, telescoping) |
//! | [`x9_gathering`] | extension: k-agent gathering by merge-and-restart |
//! | [`x10_topologies`] | topology sweep: 100+ seeded graphs per family |
//! | [`x11_gathering_topo`] | gathering fleets × the topology grid |
//!
//! Run `cargo run -p rendezvous-bench --release --bin experiments -- all`
//! to regenerate everything, or pass experiment ids (`x1 x5 …`). `x10`
//! (alias `--topo`) is opt-in: it sweeps hundreds of seeded topologies
//! and is the heaviest table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod engine;
pub mod fabric;
pub mod plan;
pub mod serve;
pub mod sharding;
pub mod store;
pub mod telemetry;
pub mod x10_topologies;
pub mod x11_gathering_topo;
pub mod x1_cheap;
pub mod x2_fast;
pub mod x3_relabel;
pub mod x4_tradeoff;
pub mod x5_lb_time;
pub mod x6_lb_cost;
pub mod x7_families;
pub mod x8_iterated;
pub mod x9_gathering;
