//! Process-wide sweep-engine selection: the stepped simulator or the
//! delay-batched trajectory solver.
//!
//! Both engines produce byte-identical experiment outputs (that is
//! CI-enforced); the choice is purely a throughput knob, surfaced as
//! `experiments --engine {stepped,batched}`. Like the sharding session
//! ([`crate::sharding`]), the selection is a process-global set once by
//! the CLI before any sweep runs — experiment code just asks
//! [`current`] at its executor switch points ([`crate::common::sweep_worst`]
//! and the `x10` per-piece executor).

use std::sync::atomic::{AtomicU8, Ordering};

/// Which executor pair sweeps run through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Round-by-round simulation ([`rendezvous_runner::AlgorithmExecutor`])
    /// — the semantic reference.
    #[default]
    Stepped,
    /// Delay-batched trajectory solving
    /// ([`rendezvous_runner::BatchExecutor`]) — O(T+D) per (labels,
    /// starts) group instead of O(D·T).
    Batched,
}

impl Engine {
    /// Parses a `--engine` argument value.
    #[must_use]
    pub fn parse(name: &str) -> Option<Engine> {
        match name {
            "stepped" => Some(Engine::Stepped),
            "batched" => Some(Engine::Batched),
            _ => None,
        }
    }

    /// The CLI name of the engine.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Stepped => "stepped",
            Engine::Batched => "batched",
        }
    }
}

static ENGINE: AtomicU8 = AtomicU8::new(0);

/// Selects the engine for every subsequent sweep in this process.
pub fn set_engine(engine: Engine) {
    ENGINE.store(engine as u8, Ordering::Relaxed);
}

/// The currently selected engine (default [`Engine::Stepped`]).
#[must_use]
pub fn current() -> Engine {
    match ENGINE.load(Ordering::Relaxed) {
        1 => Engine::Batched,
        _ => Engine::Stepped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_roundtrip() {
        assert_eq!(Engine::parse("stepped"), Some(Engine::Stepped));
        assert_eq!(Engine::parse("batched"), Some(Engine::Batched));
        assert_eq!(Engine::parse("turbo"), None);
        assert_eq!(Engine::Stepped.name(), "stepped");
        assert_eq!(Engine::Batched.name(), "batched");
        // Default selection is the stepped reference engine. (Other
        // tests never touch the global, so this is race-free.)
        assert_eq!(current(), Engine::Stepped);
    }
}
