//! `--plan` dry-run mode: enumerate every sweep's shape without
//! executing a single scenario.
//!
//! Like the shard and fabric sessions, plan mode is a process-global
//! the CLI enables before any experiment runs. With it active,
//! [`sweep_recorded`](crate::common::sweep_recorded) prints one line
//! per sweep — its position in the sweep sequence, its context, its
//! canonical workload fingerprint
//! ([`WorkloadMeta::fingerprint`]), and its piece count — and returns
//! an empty report. This is exactly the identity the fabric coordinator
//! checks leases against and the result store addresses entries by, so
//! `--plan` answers "what would `--fabric` be scheduling?" before
//! committing any compute; with `--store` it also answers "what would a
//! real run actually execute?", marking each sweep `cached` or `miss`.

use rendezvous_runner::WorkloadMeta;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static ACTIVE: AtomicBool = AtomicBool::new(false);
static CURSOR: AtomicUsize = AtomicUsize::new(0);

/// Turns plan mode on for the rest of the process.
pub fn enable() {
    ACTIVE.store(true, Ordering::SeqCst);
}

/// True when the CLI enabled `--plan`.
#[must_use]
pub fn active() -> bool {
    ACTIVE.load(Ordering::SeqCst)
}

/// Prints one sweep's plan line (stdout — the plan *is* the output in
/// this mode) and advances the sweep cursor. When a store session is
/// active the line gains a `store=` column predicting exactly what a
/// real run would do: serve the entry (`cached`) or execute (`miss`).
pub fn note(context: &str, meta: &WorkloadMeta, pieces: usize) {
    let sweep = CURSOR.fetch_add(1, Ordering::SeqCst);
    let store = match crate::store::plan_status(context, meta) {
        Some(status) => format!(" store={status}"),
        None => String::new(),
    };
    println!(
        "plan: sweep #{sweep}: {context} fingerprint={} pieces={pieces}{store}",
        meta.fingerprint()
    );
}
