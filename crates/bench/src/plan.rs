//! `--plan` dry-run mode: enumerate every sweep's shape without
//! executing a single scenario.
//!
//! Like the shard and fabric sessions, plan mode is a process-global
//! the CLI enables before any experiment runs. With it active,
//! [`sweep_recorded`](crate::common::sweep_recorded) prints one line
//! per sweep — its position in the sweep sequence, its context, its
//! workload fingerprint, and its piece count — and returns an empty
//! report. This is exactly the information the fabric coordinator
//! chunks from (fingerprint + capped size), so `--plan` answers "what
//! would `--fabric` be scheduling?" before committing any compute; it
//! is also a quick standalone census of a selection's total work.

use rendezvous_runner::WorkloadMeta;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static ACTIVE: AtomicBool = AtomicBool::new(false);
static CURSOR: AtomicUsize = AtomicUsize::new(0);

/// Turns plan mode on for the rest of the process.
pub fn enable() {
    ACTIVE.store(true, Ordering::SeqCst);
}

/// True when the CLI enabled `--plan`.
#[must_use]
pub fn active() -> bool {
    ACTIVE.load(Ordering::SeqCst)
}

/// Prints one sweep's plan line (stdout — the plan *is* the output in
/// this mode) and advances the sweep cursor.
pub fn note(context: &str, meta: &WorkloadMeta, pieces: usize) {
    let sweep = CURSOR.fetch_add(1, Ordering::SeqCst);
    println!(
        "plan: sweep #{sweep}: {context} kind={} full_size={} size={} pieces={pieces}",
        meta.kind, meta.full_size, meta.size
    );
}
