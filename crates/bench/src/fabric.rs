//! The experiments binary's side of the sweep fabric: the process-global
//! worker session.
//!
//! A fabric worker process (`experiments … --fabric-worker ADDR`) runs
//! the *same* experiment sequence as a direct run — same selection,
//! same workload construction, same engine — but every sweep inside
//! [`sweep_recorded`](crate::common::sweep_recorded) detours through
//! [`sweep_via_fabric`]: instead of executing `[0, size())`, the worker
//! pulls lease ranges from the coordinator and executes exactly those
//! through [`Runner::sweep_range`]. Because every worker walks the
//! sweep sequence in the same order, the position of a sweep in that
//! walk is its identity on the wire; the workload fingerprint sent with
//! every request catches any process that disagrees.
//!
//! The session also hosts the chaos hook behind `--fabric-kill-one`:
//! a worker launched with the internal `--fabric-self-kill` flag
//! SIGKILLs itself upon being *granted* a lease after completing at
//! least one — mid-piece from the coordinator's point of view, which is
//! precisely the window lease reassignment exists for.

use rendezvous_fabric::WorkerClient;
use rendezvous_runner::{PieceExecutor, Runner, SweepReport, Workload};
use rendezvous_telemetry::TelemetrySnapshot;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

struct WorkerSession {
    /// `None` after [`finish_worker`] hands the connection its snapshot.
    client: Mutex<Option<WorkerClient>>,
    /// Position of the *next* sweep in the walk — sweep identity.
    cursor: AtomicUsize,
    /// Leases completed by this process, across all sweeps.
    completed: AtomicUsize,
    /// The `--fabric-self-kill` chaos hook.
    self_kill: bool,
}

static SESSION: OnceLock<WorkerSession> = OnceLock::new();

/// Connects this process to the coordinator at `addr` and installs the
/// worker session. The worker's wire identity is its process id.
///
/// # Panics
///
/// Panics if the connection fails or a session is already installed.
pub fn begin_worker(addr: &str, self_kill: bool) {
    let client = WorkerClient::connect(addr, u64::from(std::process::id()))
        .unwrap_or_else(|e| panic!("cannot join the fabric at {addr}: {e}"));
    let installed = SESSION.set(WorkerSession {
        client: Mutex::new(Some(client)),
        cursor: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        self_kill,
    });
    assert!(installed.is_ok(), "fabric worker session already active");
}

/// True when this process is a fabric worker.
#[must_use]
pub fn active() -> bool {
    SESSION.get().is_some()
}

/// Ends the worker's conversation: sends the process's telemetry
/// snapshot (empty if no sink is installed) and half-closes the socket.
///
/// # Panics
///
/// Panics if the final frame cannot be written or the session was
/// already finished.
pub fn finish_worker() {
    let Some(session) = SESSION.get() else {
        return;
    };
    let client = session
        .client
        .lock()
        .expect("fabric client lock")
        .take()
        .expect("fabric worker session finished twice");
    let snapshot =
        crate::telemetry::current().map_or_else(TelemetrySnapshot::empty, |m| m.snapshot());
    client
        .finish(snapshot)
        .unwrap_or_else(|e| panic!("fabric worker cannot deliver its snapshot: {e}"));
}

/// The fabric worker's sweep loop, or `None` when this process is not a
/// worker (the caller then executes normally).
///
/// Pulls leases for the walk's next sweep until the coordinator reports
/// it complete, executing each granted range through
/// [`Runner::sweep_range`] and submitting its fold. Returns the local
/// merge of this worker's own ranges — partial, and possibly empty on a
/// resume of a finished checkpoint; output emission is suppressed in
/// worker mode exactly as in `--emit-shard` mode, so partial rows never
/// reach stdout.
///
/// # Panics
///
/// Panics on execution errors, wire failures, or coordinator faults —
/// the worker exits nonzero, the coordinator sees the connection drop
/// and requeues its leases, and the driver surfaces the diagnostics.
pub fn sweep_via_fabric<W, E>(
    context: &str,
    workload: &W,
    executor: &E,
    runner: &Runner,
) -> Option<SweepReport>
where
    W: Workload + ?Sized,
    E: PieceExecutor + ?Sized,
{
    let session = SESSION.get()?;
    let sweep = session.cursor.fetch_add(1, Ordering::SeqCst);
    let meta = workload.meta();
    let mut merged = SweepReport::default();
    loop {
        let lease = {
            let mut slot = session.client.lock().expect("fabric client lock");
            let client = slot
                .as_mut()
                .expect("sweep after the fabric session finished");
            client.next_lease(sweep, meta)
        };
        match lease {
            Ok(Some((lo, hi))) => {
                session.maybe_self_kill();
                let partial = runner
                    .sweep_range(workload, lo, hi, executor)
                    .unwrap_or_else(|e| {
                        panic!("fabric sweep failed for {context} on [{lo}, {hi}): {e}")
                    });
                {
                    let mut slot = session.client.lock().expect("fabric client lock");
                    let client = slot
                        .as_mut()
                        .expect("sweep after the fabric session finished");
                    client
                        .submit(sweep, lo, hi, partial.clone())
                        .unwrap_or_else(|e| {
                            panic!("fabric worker cannot submit [{lo}, {hi}): {e}")
                        });
                }
                session.completed.fetch_add(1, Ordering::SeqCst);
                merged = merged.merge(&partial);
            }
            Ok(None) => break,
            Err(e) => panic!("fabric worker lost its coordinator during {context}: {e}"),
        }
    }
    Some(merged)
}

impl WorkerSession {
    /// The `--fabric-self-kill` hook: once at least one lease has
    /// completed, dying on the *next* grant leaves that lease in flight
    /// — the reassignment path under test. SIGKILL (not a clean exit)
    /// so the coordinator learns only from the socket closing.
    fn maybe_self_kill(&self) {
        if self.self_kill && self.completed.load(Ordering::SeqCst) >= 1 {
            let pid = std::process::id().to_string();
            let _ = std::process::Command::new("kill")
                .args(["-9", &pid])
                .status();
            // `kill` missing (non-POSIX environment): abort is the
            // closest thing to an unannounced death available in std.
            std::process::abort();
        }
    }
}
