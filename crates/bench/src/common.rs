//! Shared plumbing for the experiments: standard setups, adversarial
//! measurement over sampled label pairs, and table rendering.

use rendezvous_core::{Label, RendezvousAlgorithm};
use rendezvous_explore::{Explorer, OrientedRingExplorer};
use rendezvous_graph::{generators, PortLabeledGraph};
use rendezvous_sim::adversary::{worst_case_search, Objective, WorstCase};
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Arc;

/// An oriented ring plus its optimal explorer — the standard substrate of
/// the paper's analysis (`E = n − 1`).
#[must_use]
pub fn ring_setup(n: usize) -> (Arc<PortLabeledGraph>, Arc<dyn Explorer>) {
    let g = Arc::new(generators::oriented_ring(n).expect("n >= 3"));
    let ex: Arc<dyn Explorer> =
        Arc::new(OrientedRingExplorer::new(g.clone()).expect("oriented ring"));
    (g, ex)
}

/// Measured worst case of one algorithm over a set of label pairs, all
/// start-position pairs, and a set of wake-up delays for the second agent.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Measured {
    /// Worst observed time (rounds from the earlier agent's start).
    pub time: u64,
    /// Worst observed cost (total edge traversals).
    pub cost: u64,
}

/// Exhausts positions × delays for each given label pair (both role
/// orders) and returns the worst time and cost observed anywhere.
///
/// # Panics
///
/// Panics if any execution fails to meet within `horizon` — the paper's
/// algorithms always meet within their bounds, so this is a correctness
/// alarm, not a reportable outcome.
#[must_use]
pub fn measure_worst(
    algorithm: &dyn RendezvousAlgorithm,
    label_pairs: &[(u64, u64)],
    delays: &[u64],
    horizon: u64,
    threads: usize,
) -> Measured {
    let mut worst_time = 0u64;
    let mut worst_cost = 0u64;
    for &(la, lb) in label_pairs {
        for (first, second) in [(la, lb), (lb, la)] {
            let factory = move |pa: rendezvous_graph::NodeId, pb: rendezvous_graph::NodeId| {
                let a = algorithm
                    .agent(Label::new(first).expect(">0"), pa)
                    .expect("label in space");
                let b = algorithm
                    .agent(Label::new(second).expect(">0"), pb)
                    .expect("label in space");
                (
                    Box::new(a) as Box<dyn rendezvous_sim::AgentBehavior>,
                    Box::new(b) as Box<dyn rendezvous_sim::AgentBehavior>,
                )
            };
            let wc: Option<WorstCase> = worst_case_search(
                algorithm.graph(),
                &factory,
                delays,
                Objective::Time,
                horizon,
                threads,
            );
            let wc = wc.expect("graphs have >= 2 nodes");
            assert_ne!(
                wc.value,
                u64::MAX,
                "algorithm {} failed to meet for labels ({first},{second})",
                algorithm.name()
            );
            worst_time = worst_time.max(wc.time);
            // A second sweep maximizing cost (cost maximum can occur at a
            // different adversarial choice than the time maximum).
            let wc_cost = worst_case_search(
                algorithm.graph(),
                &factory,
                delays,
                Objective::Cost,
                horizon,
                threads,
            )
            .expect("graphs have >= 2 nodes");
            worst_cost = worst_cost.max(wc_cost.cost);
        }
    }
    Measured {
        time: worst_time,
        cost: worst_cost,
    }
}

/// The standard adversarial label-pair sample for a space of size `l`:
/// the extremes and a middle pair (for `Cheap` the worst pair has the
/// largest *smaller* label; for `Fast` the longest shared prefix).
#[must_use]
pub fn standard_label_pairs(l: u64) -> Vec<(u64, u64)> {
    let mut pairs = vec![(1, 2), (l - 1, l), (1, l)];
    if l >= 6 {
        pairs.push((l / 2, l / 2 + 1));
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// All `C(L, 2)` label pairs (exhaustive; use only for small `L`).
#[must_use]
pub fn all_label_pairs(l: u64) -> Vec<(u64, u64)> {
    (1..=l)
        .flat_map(|a| ((a + 1)..=l).map(move |b| (a, b)))
        .collect()
}

/// The delay sample `{0, 1, E, E+1, 2E}`: beyond `E` the earlier agent's
/// first exploration finds the sleeping partner, so larger delays add
/// nothing (cf. the `τ > E` case in Propositions 2.1/2.2).
#[must_use]
pub fn standard_delays(e: u64) -> Vec<u64> {
    let mut d = vec![0, 1, e, e + 1, 2 * e];
    d.dedup();
    d
}

/// Renders rows of `(name, values…)` as a GitHub-flavoured markdown table.
#[must_use]
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_core::{Cheap, LabelSpace};

    #[test]
    fn label_pair_samples() {
        assert_eq!(standard_label_pairs(2), vec![(1, 2)]);
        let p = standard_label_pairs(8);
        assert!(p.contains(&(7, 8)) && p.contains(&(1, 8)) && p.contains(&(4, 5)));
        assert_eq!(all_label_pairs(4).len(), 6);
    }

    #[test]
    fn measure_worst_respects_bounds_on_cheap() {
        let (g, ex) = ring_setup(6);
        let alg = Cheap::new(g, ex, LabelSpace::new(4).unwrap());
        let m = measure_worst(
            &alg,
            &all_label_pairs(4),
            &standard_delays(5),
            4 * alg.time_bound(),
            2,
        );
        assert!(m.time <= alg.time_bound());
        assert!(m.cost <= alg.cost_bound());
        assert!(m.time >= alg.exploration_bound());
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(t.lines().count(), 4);
        assert!(t.contains("| 1 | 2 |"));
    }
}
