//! Shared plumbing for the experiments: standard setups, adversarial
//! sweeps through the shared [`rendezvous_runner`] engine, and table
//! rendering.

use rendezvous_core::RendezvousAlgorithm;
use rendezvous_explore::{Explorer, OrientedRingExplorer};
use rendezvous_graph::{generators, PortLabeledGraph};
use rendezvous_runner::{
    AlgorithmExecutor, BatchExecutor, Bounded, Bounds, Grid, GroupStats, PieceExecutor, Runner,
    SweepReport, Workload,
};
use rendezvous_telemetry::Scope;
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Arc;

/// An oriented ring plus its optimal explorer — the standard substrate of
/// the paper's analysis (`E = n − 1`).
#[must_use]
pub fn ring_setup(n: usize) -> (Arc<PortLabeledGraph>, Arc<dyn Explorer>) {
    let g = Arc::new(generators::oriented_ring(n).expect("n >= 3"));
    let ex: Arc<dyn Explorer> =
        Arc::new(OrientedRingExplorer::new(g.clone()).expect("oriented ring"));
    (g, ex)
}

/// Measured worst case of one algorithm over a set of label pairs, all
/// start-position pairs, and a set of wake-up delays for the second agent.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Measured {
    /// Worst observed time (rounds from the earlier agent's start).
    pub time: u64,
    /// Worst observed cost (total edge traversals).
    pub cost: u64,
}

/// The standard adversarial grid of one algorithm: every given label pair
/// in both role orders × all ordered start pairs × the given delays.
#[must_use]
pub fn adversarial_grid(
    algorithm: &dyn RendezvousAlgorithm,
    label_pairs: &[(u64, u64)],
    delays: &[u64],
    horizon: u64,
) -> Grid {
    Grid::new(horizon)
        .label_pairs_both_orders(label_pairs)
        .delays(delays)
        .all_start_pairs(algorithm.graph())
}

/// Sweeps any [`Workload`] through a [`PieceExecutor`], honoring an
/// active sharding session (see [`crate::sharding`]): in shard mode only
/// this process's shard of the workload executes and the partial
/// [`SweepReport`] is recorded to the ledger; in replay mode a
/// previously merged record stands in for execution — both transparently
/// to callers. This is the **single** workload→report path of the
/// experiments binary: the pair grids of X1–X8 ([`sweep_worst`]), the
/// gathering fleet grids of X9, and the topology sweeps of X10/X11 all
/// run through it, so `--shard`/`--merge-shards`/`--spawn-shards` ride
/// one code path for every experiment — as do the fabric worker mode
/// (lease-ranged execution via [`crate::fabric`]) and the `--plan` dry
/// run (describe, don't execute, via [`crate::plan`]).
///
/// # Panics
///
/// Panics on any execution error, on an empty workload (`context` names
/// the sweep in the message) and — in replay mode — when the merged
/// ledger's next record disagrees with this run's workload (kind or size
/// fingerprint).
pub fn sweep_recorded<W, E>(
    context: &str,
    workload: &W,
    executor: &E,
    runner: &Runner,
) -> SweepReport
where
    W: Workload + ?Sized,
    E: PieceExecutor + ?Sized,
{
    let meta = workload.meta();
    // `--plan` dry run: describe the sweep, execute nothing. The empty
    // report is safe downstream for the same reason empty shard folds
    // are — every experiment tolerates partial stats, and emission is
    // suppressed in plan mode.
    if crate::plan::active() {
        crate::plan::note(context, &meta, workload.pieces(0, workload.size()).len());
        return SweepReport::default();
    }
    // Result store: a cached full report stands in for the whole sweep
    // — zero scenarios execute, no sweep is counted, and every
    // downstream topology (sharding, fabric, replay) is simply never
    // consulted. Every process of a run derives the same key from the
    // same store, so driver, shards and workers all skip the same
    // sweeps and their cursors stay aligned.
    if let Some(report) = crate::store::lookup(context, &meta) {
        return report;
    }
    // Sweeps *executed* here (Full and Shard plans); a replayed record
    // stands in for execution, so it deliberately counts nothing.
    let count_sweep = || {
        if let Some(metrics) = crate::telemetry::current() {
            metrics.counter(Scope::Process, "sweeps").inc();
        }
    };
    // Fabric worker: pull lease ranges from the coordinator instead of
    // sweeping `[0, size())`. The returned report is this worker's own
    // partial merge (possibly empty on a checkpoint resume), so the
    // whole-sweep non-emptiness check does not apply — and, being
    // partial, it must never reach the store.
    if let Some(report) = crate::fabric::sweep_via_fabric(context, workload, executor, runner) {
        count_sweep();
        return report;
    }
    let report = match crate::sharding::plan_sweep(&meta) {
        crate::sharding::SweepPlan::Full => {
            count_sweep();
            runner
                .sweep(workload, executor)
                .unwrap_or_else(|e| panic!("adversarial sweep failed for {context}: {e}"))
        }
        crate::sharding::SweepPlan::Shard { shard, of } => {
            count_sweep();
            let report = runner
                .sweep_shard(workload, shard, of, executor)
                .unwrap_or_else(|e| panic!("adversarial shard sweep failed for {context}: {e}"));
            crate::sharding::record_sweep(crate::sharding::LedgerRecord::new(meta, report.clone()));
            // A shard of a small workload may legitimately be empty, so
            // the non-emptiness sanity check applies only to the whole
            // space. Shard folds are partial: no store write-back.
            assert!(workload.size() > 0, "empty adversarial sweep for {context}");
            return report;
        }
        crate::sharding::SweepPlan::Replay(record) => record.report().clone(),
    };
    assert!(
        report.executed() > 0,
        "empty adversarial sweep for {context} — misconfigured workload \
         (no label pairs, no delays, or a graph without distinct start pairs)"
    );
    // The two full-report paths (direct execution and merged replay —
    // the latter is how `--spawn-shards` and `--fabric` drivers see
    // their children's work) populate the cache for the next run.
    crate::store::record(context, &meta, &report);
    report
}

/// Sweeps the standard adversarial grid through the shared [`Runner`] and
/// returns the full aggregate statistics, checked against the algorithm's
/// paper bounds. Sharding sessions are honored via [`sweep_recorded`].
///
/// # Panics
///
/// Panics if any execution fails to meet within `horizon` — the paper's
/// algorithms always meet within their bounds, so this is a correctness
/// alarm, not a reportable outcome.
#[must_use]
pub fn sweep_worst(
    algorithm: &dyn RendezvousAlgorithm,
    label_pairs: &[(u64, u64)],
    delays: &[u64],
    horizon: u64,
    runner: &Runner,
) -> GroupStats {
    let grid = adversarial_grid(algorithm, label_pairs, delays, horizon);
    let bounds = Some(Bounds {
        time: algorithm.time_bound(),
        cost: algorithm.cost_bound(),
    });
    // Both engines fold byte-identical reports (CI diffs them on every
    // push); `--engine batched` collapses the delay axis per start pair.
    // An installed telemetry session observes either engine's executor —
    // plan-cache hit rates and batch classification — without entering
    // the fold (CI also diffs telemetry-on against telemetry-off).
    let session = crate::telemetry::current();
    let report = match crate::engine::current() {
        crate::engine::Engine::Stepped => {
            let mut executor = AlgorithmExecutor::new(algorithm);
            if let Some(metrics) = &session {
                executor = executor.with_metrics(metrics);
            }
            sweep_recorded(
                algorithm.name(),
                &grid,
                &Bounded::new(&executor, bounds),
                runner,
            )
        }
        crate::engine::Engine::Batched => {
            let mut executor = BatchExecutor::new(algorithm).with_bounds(bounds);
            if let Some(metrics) = &session {
                executor = executor.with_metrics(metrics);
            }
            sweep_recorded(algorithm.name(), &grid, &executor, runner)
        }
    };
    check_failures(algorithm, report.solo())
}

/// Asserts the paper's always-meets guarantee over (possibly partial)
/// sweep stats and passes them through.
fn check_failures(algorithm: &dyn RendezvousAlgorithm, stats: GroupStats) -> GroupStats {
    assert_eq!(
        stats.failures,
        0,
        "algorithm {} failed to meet in {} of {} configurations",
        algorithm.name(),
        stats.failures,
        stats.executed
    );
    stats
}

/// [`sweep_worst`] reduced to the worst time and cost observed anywhere —
/// the measurement every experiment table reports.
#[must_use]
pub fn measure_worst(
    algorithm: &dyn RendezvousAlgorithm,
    label_pairs: &[(u64, u64)],
    delays: &[u64],
    horizon: u64,
    runner: &Runner,
) -> Measured {
    let stats = sweep_worst(algorithm, label_pairs, delays, horizon, runner);
    Measured {
        time: stats.max_time,
        cost: stats.max_cost,
    }
}

/// The standard adversarial label-pair sample for a space of size `l`:
/// the extremes and a middle pair (for `Cheap` the worst pair has the
/// largest *smaller* label; for `Fast` the longest shared prefix).
///
/// # Panics
///
/// Panics on `l < 2`: a rendezvous label space needs two distinct labels,
/// and `l - 1` would otherwise wrap in release builds, producing label 0
/// deep inside a sweep where `Label::new` rejects it with a far less
/// useful message.
#[must_use]
pub fn standard_label_pairs(l: u64) -> Vec<(u64, u64)> {
    assert!(
        l >= 2,
        "label space of size {l} cannot hold two distinct labels (need l >= 2)"
    );
    let mut pairs = vec![(1, 2), (l - 1, l), (1, l)];
    if l >= 6 {
        pairs.push((l / 2, l / 2 + 1));
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// All `C(L, 2)` label pairs (exhaustive; use only for small `L`).
#[must_use]
pub fn all_label_pairs(l: u64) -> Vec<(u64, u64)> {
    (1..=l)
        .flat_map(|a| ((a + 1)..=l).map(move |b| (a, b)))
        .collect()
}

/// The delay sample `{0, 1, E, E+1, 2E}`: beyond `E` the earlier agent's
/// first exploration finds the sleeping partner, so larger delays add
/// nothing (cf. the `τ > E` case in Propositions 2.1/2.2).
#[must_use]
pub fn standard_delays(e: u64) -> Vec<u64> {
    let mut d = vec![0, 1, e, e + 1, 2 * e];
    // `dedup` only removes *adjacent* duplicates, and for e <= 1 the list
    // is not sorted (e.g. e = 0 gives [0, 1, 0, 1, 0]) — without sorting
    // first, duplicate delays survive and silently inflate every sweep.
    d.sort_unstable();
    d.dedup();
    d
}

/// Renders rows of `(name, values…)` as a GitHub-flavoured markdown table.
#[must_use]
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_core::{Cheap, LabelSpace};

    #[test]
    fn label_pair_samples() {
        assert_eq!(standard_label_pairs(2), vec![(1, 2)]);
        let p = standard_label_pairs(8);
        assert!(p.contains(&(7, 8)) && p.contains(&(1, 8)) && p.contains(&(4, 5)));
        assert_eq!(all_label_pairs(4).len(), 6);
    }

    /// Regression: `l - 1` used to wrap for `l < 2` in release builds,
    /// producing label 0 and a cryptic `Label::new` rejection deep inside
    /// the sweep; now the boundary rejects it with a clear message.
    #[test]
    #[should_panic(expected = "cannot hold two distinct labels")]
    fn label_pairs_reject_spaces_too_small_for_rendezvous() {
        let _ = standard_label_pairs(1);
    }

    #[test]
    #[should_panic(expected = "cannot hold two distinct labels")]
    fn label_pairs_reject_the_empty_space() {
        let _ = standard_label_pairs(0);
    }

    /// Regression: `standard_delays` called `dedup()` on an unsorted list
    /// for `e <= 1`, leaving duplicate delays that silently inflated every
    /// sweep (`e = 0` yielded `[0, 1, 0, 1, 0]`).
    #[test]
    fn standard_delays_are_strictly_increasing_and_duplicate_free() {
        assert_eq!(standard_delays(0), vec![0, 1]);
        assert_eq!(standard_delays(1), vec![0, 1, 2]);
        assert_eq!(standard_delays(2), vec![0, 1, 2, 3, 4]);
        assert_eq!(standard_delays(5), vec![0, 1, 5, 6, 10]);
        for e in 0..40 {
            let d = standard_delays(e);
            assert!(
                d.windows(2).all(|w| w[0] < w[1]),
                "delays for e = {e} are not strictly increasing: {d:?}"
            );
            assert!(d.contains(&0) && d.contains(&(2 * e).max(1)));
        }
    }

    #[test]
    fn measure_worst_respects_bounds_on_cheap() {
        let (g, ex) = ring_setup(6);
        let alg = Cheap::new(g, ex, LabelSpace::new(4).unwrap());
        let runner = Runner::with_threads(2);
        let m = measure_worst(
            &alg,
            &all_label_pairs(4),
            &standard_delays(5),
            4 * alg.time_bound(),
            &runner,
        );
        assert!(m.time <= alg.time_bound());
        assert!(m.cost <= alg.cost_bound());
        assert!(m.time >= alg.exploration_bound());
    }

    #[test]
    fn sweep_worst_reports_clean_stats_within_bounds() {
        let (g, ex) = ring_setup(6);
        let alg = Cheap::new(g, ex, LabelSpace::new(4).unwrap());
        let stats = sweep_worst(
            &alg,
            &all_label_pairs(4),
            &standard_delays(5),
            4 * alg.time_bound(),
            &Runner::sequential(),
        );
        assert!(stats.clean(), "Cheap must stay within its paper bounds");
        assert_eq!(
            stats.executed,
            all_label_pairs(4).len() * 2 * 30 * standard_delays(5).len(),
            "both label orders x ordered start pairs x delays"
        );
        assert!(stats.mean_time() <= stats.max_time as f64);
        assert!(stats.worst_time.is_some() && stats.worst_cost.is_some());
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(t.lines().count(), 4);
        assert!(t.contains("| 1 | 2 |"));
    }
}
