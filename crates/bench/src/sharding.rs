//! Multi-process sweep sharding for the experiments binary.
//!
//! One experiment run performs a deterministic *sequence* of workload
//! sweeps (every [`common::sweep_recorded`](crate::common::sweep_recorded)
//! call — the pair grids of X1–X8, the gathering fleet grids of X9, and
//! the topology sweeps of X10/X11 alike, all through the one generic
//! [`Workload`](rendezvous_runner::Workload) pipeline). Sharding splits
//! each sweep in that sequence across `m` independent processes and
//! reassembles the exact single-process result:
//!
//! 1. **Shard pass** (`experiments --shard i/m --emit-shard`, run once per
//!    `i`): every sweep executes only shard `i` of its workload
//!    ([`Workload::shard`](rendezvous_runner::Workload::shard)), and the
//!    partial [`SweepReport`] is appended to one ledger — a single
//!    [`LedgerRecord`] stream in call order, whatever mix of grid and
//!    topology sweeps the selection runs — emitted as JSON.
//! 2. **Merge pass** (`experiments --merge-shards a.json b.json …`): the
//!    emitted ledgers are merged position-wise with
//!    [`SweepReport::merge`] and the experiments replay against the merged
//!    ledger instead of executing — producing output byte-identical to an
//!    unsharded run.
//!
//! Each record is **self-describing**: it carries the workload kind and
//! size fingerprint next to the partial report, so a merge or replay
//! against ledgers from a *different* experiment selection fails with a
//! diagnostic naming the sweep position, the expected versus found record
//! kind, and where the ledger came from — instead of folding garbage.
//!
//! The mode lives in a process-wide session (the experiments binary is
//! single-threaded at the sweep-sequence level, and sweeps themselves may
//! parallelize freely underneath); library users never touch it, and when
//! no session is active [`plan_sweep`] says [`SweepPlan::Full`] — the
//! ordinary single-process path.

use rendezvous_runner::{SweepReport, WorkloadKind, WorkloadMeta};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// One sweep's entry in a shard ledger: the workload's self-description
/// (kind + size fingerprint, used to detect mismatched shard runs at
/// merge and replay time) plus the shard's partial report — or, after
/// merging, the full one.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[must_use = "a ledger record exists to be serialized or merged; dropping it loses the shard"]
pub enum LedgerRecord {
    /// A scenario-grid sweep (pair or fleet mode) on one graph.
    Grid {
        /// Content digest of the swept space's defining parameters —
        /// sizes can coincide across different grids, and this
        /// disambiguates.
        digest: u64,
        /// Pre-cap size of the swept grid.
        full_size: usize,
        /// Post-cap size (what a full sweep executes).
        size: usize,
        /// The (partial or merged) fold.
        report: SweepReport,
    },
    /// A topology sweep: per-spec grids concatenated over many graphs.
    Topo {
        /// Content digest of the spec list and per-spec grids.
        digest: u64,
        /// Pre-cap size of the concatenated per-spec spaces (saturating
        /// sum) — post-cap totals can coincide across different spec
        /// lists or caps, and this disambiguates, exactly as for `Grid`.
        full_size: usize,
        /// Total (spec × scenario) size of the swept `TopoGrid`.
        size: usize,
        /// The (partial or merged) per-family fold.
        report: SweepReport,
    },
}

impl LedgerRecord {
    /// Builds the record of one workload's (partial) fold.
    pub fn new(meta: WorkloadMeta, report: SweepReport) -> LedgerRecord {
        match meta.kind {
            WorkloadKind::Grid => LedgerRecord::Grid {
                digest: meta.digest,
                full_size: meta.full_size,
                size: meta.size,
                report,
            },
            WorkloadKind::Topo => LedgerRecord::Topo {
                digest: meta.digest,
                full_size: meta.full_size,
                size: meta.size,
                report,
            },
        }
    }

    /// Which workload kind produced this record.
    #[must_use]
    pub fn kind(&self) -> WorkloadKind {
        match self {
            LedgerRecord::Grid { .. } => WorkloadKind::Grid,
            LedgerRecord::Topo { .. } => WorkloadKind::Topo,
        }
    }

    /// The recorded post-cap workload size.
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            LedgerRecord::Grid { size, .. } | LedgerRecord::Topo { size, .. } => *size,
        }
    }

    /// The recorded report.
    pub fn report(&self) -> &SweepReport {
        match self {
            LedgerRecord::Grid { report, .. } | LedgerRecord::Topo { report, .. } => report,
        }
    }

    /// Returns `true` when this record's fingerprint matches `meta` —
    /// same kind, same post-cap size, same pre-cap space.
    #[must_use]
    pub fn matches(&self, meta: &WorkloadMeta) -> bool {
        self.meta() == *meta
    }

    /// The recorded fingerprint as a [`WorkloadMeta`].
    #[must_use]
    pub fn meta(&self) -> WorkloadMeta {
        let (kind, digest, full_size, size) = match self {
            LedgerRecord::Grid {
                digest,
                full_size,
                size,
                ..
            } => (WorkloadKind::Grid, *digest, *full_size, *size),
            LedgerRecord::Topo {
                digest,
                full_size,
                size,
                ..
            } => (WorkloadKind::Topo, *digest, *full_size, *size),
        };
        WorkloadMeta {
            kind,
            digest,
            full_size,
            size,
        }
    }

    /// One-line fingerprint description for diagnostics.
    #[must_use]
    pub fn describe(&self) -> String {
        describe_meta(&self.meta())
    }
}

/// Fingerprint description of a workload (or recorded sweep), for
/// diagnostics — the single phrasing both sides of every
/// expected-versus-found message use.
fn describe_meta(meta: &WorkloadMeta) -> String {
    match meta.kind {
        WorkloadKind::Grid => format!(
            "grid sweep of {} scenarios ({} pre-cap)",
            meta.size, meta.full_size
        ),
        WorkloadKind::Topo => format!(
            "topo sweep of {} (spec × scenario) units ({} pre-cap)",
            meta.size, meta.full_size
        ),
    }
}

/// The JSON document one `--emit-shard` run prints: which shard it was
/// plus its ledger — one record per sweep, in call order, grid and
/// topology sweeps interleaved exactly as the selection ran them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardEmission {
    /// Shard index of this run.
    pub shard: usize,
    /// Total shard count of the sharded sweep.
    pub of: usize,
    /// One record per `sweep_recorded` call, in call order.
    pub records: Vec<LedgerRecord>,
}

/// What `sweep_recorded` should do for the next sweep.
#[derive(Debug)]
pub(crate) enum SweepPlan {
    /// No session: execute the whole workload (the ordinary path).
    Full,
    /// Execute only this shard of the workload and record the partials.
    Shard {
        /// Shard index.
        shard: usize,
        /// Shard count.
        of: usize,
    },
    /// Skip execution; this merged record is the sweep's result. (Boxed:
    /// a record is an order of magnitude larger than the other variants.)
    Replay(Box<LedgerRecord>),
}

enum Session {
    Shard {
        shard: usize,
        of: usize,
        ledger: Vec<LedgerRecord>,
    },
    Replay {
        records: Vec<LedgerRecord>,
        cursor: usize,
        /// Where the merged ledger came from (file list or spawn
        /// description) — named in every replay diagnostic.
        source: String,
    },
}

static SESSION: Mutex<Option<Session>> = Mutex::new(None);

/// Switches this process into shard mode: every subsequent sweep executes
/// only shard `shard` of `of` and records its partial report.
///
/// # Panics
///
/// Panics if `shard >= of`, `of == 0` or a session is already active.
pub fn begin_shard(shard: usize, of: usize) {
    assert!(of > 0 && shard < of, "invalid shard {shard}/{of}");
    let mut session = SESSION.lock().expect("shard session poisoned");
    assert!(session.is_none(), "a sweep session is already active");
    *session = Some(Session::Shard {
        shard,
        of,
        ledger: Vec::new(),
    });
}

/// Ends shard mode and returns the emission document to print.
///
/// # Panics
///
/// Panics if no shard session is active.
pub fn finish_shard() -> ShardEmission {
    let mut session = SESSION.lock().expect("shard session poisoned");
    match session.take() {
        Some(Session::Shard { shard, of, ledger }) => ShardEmission {
            shard,
            of,
            records: ledger,
        },
        _ => panic!("finish_shard without an active shard session"),
    }
}

/// Switches this process into replay mode over merged records: every
/// subsequent sweep consumes the ledger's next record instead of
/// executing. `source` says where the ledger came from (the merged file
/// names, or a spawn description) and is named in every diagnostic.
///
/// # Panics
///
/// Panics if a session is already active.
pub fn begin_replay(records: Vec<LedgerRecord>, source: String) {
    let mut session = SESSION.lock().expect("shard session poisoned");
    assert!(session.is_none(), "a sweep session is already active");
    *session = Some(Session::Replay {
        records,
        cursor: 0,
        source,
    });
}

/// Ends replay mode, verifying every merged record was consumed (a
/// leftover means the merge inputs came from a different experiment
/// selection than the replay run).
///
/// # Panics
///
/// Panics if records remain unconsumed or no replay session is active.
pub fn finish_replay() {
    let mut session = SESSION.lock().expect("shard session poisoned");
    match session.take() {
        Some(Session::Replay {
            records,
            cursor,
            source,
        }) => {
            assert_eq!(
                cursor,
                records.len(),
                "replay consumed {cursor} of {} merged sweeps from {source} — \
                 the shard runs covered a different experiment selection than \
                 this merge run",
                records.len()
            );
        }
        _ => panic!("finish_replay without an active replay session"),
    }
}

/// Decides how the next sweep runs; called by
/// [`common::sweep_recorded`](crate::common::sweep_recorded) once per
/// sweep. `meta` is the fingerprint of the workload about to sweep — in
/// replay mode the ledger's next record must match it.
///
/// # Panics
///
/// Panics in replay mode when the merged ledger is exhausted or its next
/// record came from a different kind (or size) of sweep; the message
/// names the sweep's position in the sequence, the expected versus found
/// record, and the ledger's source.
pub(crate) fn plan_sweep(meta: &WorkloadMeta) -> SweepPlan {
    let mut session = SESSION.lock().expect("shard session poisoned");
    // Diagnose inside the lock, panic outside it: a poisoned session
    // would mask the actual diagnostic in every later caller.
    let planned: Result<SweepPlan, String> = match session.as_mut() {
        None => Ok(SweepPlan::Full),
        Some(Session::Shard { shard, of, .. }) => Ok(SweepPlan::Shard {
            shard: *shard,
            of: *of,
        }),
        Some(Session::Replay {
            records,
            cursor,
            source,
        }) => match records.get(*cursor) {
            None => Err(format!(
                "sweep #{} ({}) requested but the merged ledger from {source} \
                 holds only {} records — the shard runs covered a different \
                 experiment selection",
                *cursor,
                describe_meta(meta),
                records.len()
            )),
            Some(record) if !record.matches(meta) => Err(format!(
                "sweep #{} expected a {} but the merged ledger from {source} \
                 recorded a {} — shard and merge runs must use identical \
                 experiment selections and flags",
                *cursor,
                describe_meta(meta),
                record.describe()
            )),
            Some(record) => {
                let plan = SweepPlan::Replay(Box::new(record.clone()));
                *cursor += 1;
                Ok(plan)
            }
        },
    };
    drop(session);
    planned.unwrap_or_else(|msg| panic!("{msg}"))
}

/// Unconditionally clears any active session — the test-harness escape
/// hatch for exercising replay **diagnostics**: a caught diagnostic
/// panic leaves the (deliberately un-poisoned) session installed, and
/// neither `finish_shard` nor `finish_replay` can retire it cleanly.
/// The experiments binary never needs this.
#[doc(hidden)]
pub fn reset_session() {
    *SESSION.lock().expect("shard session poisoned") = None;
}

/// Records one sweep's partial report in shard mode; no-op outside it.
pub(crate) fn record_sweep(record: LedgerRecord) {
    let mut session = SESSION.lock().expect("shard session poisoned");
    if let Some(Session::Shard { ledger, .. }) = session.as_mut() {
        ledger.push(record);
    }
}

/// The merged ledger of all shards of one run: one full-sweep record per
/// sweep, in call order, plus the provenance string replay diagnostics
/// name.
#[derive(Debug, Clone, Default)]
pub struct MergedLedger {
    /// One full-sweep record per `sweep_recorded` call.
    pub records: Vec<LedgerRecord>,
    /// Where the emissions came from (file names or spawn description).
    pub source: String,
}

/// Merges the emissions of all `of` shards into one full-sweep ledger,
/// validating that the inputs are exactly shards `0..of` of the same
/// sweep sequence. `names[i]` labels emission `i` (its file name, or a
/// spawn description) so every inconsistency names the offending input.
///
/// # Errors
///
/// A human-readable description of any inconsistency: wrong shard set,
/// disagreeing shard counts, or ledgers from different sweep sequences.
///
/// # Panics
///
/// Panics if `names.len() != emissions.len()` (a caller bug).
pub fn merge_emissions(
    emissions: Vec<ShardEmission>,
    names: &[String],
) -> Result<MergedLedger, String> {
    assert_eq!(
        emissions.len(),
        names.len(),
        "one name per emission, got {} names for {} emissions",
        names.len(),
        emissions.len()
    );
    let Some(first) = emissions.first() else {
        return Err("no shard files given".into());
    };
    let of = first.of;
    if emissions.len() != of {
        return Err(format!(
            "expected {of} shard files (one per shard), got {}",
            emissions.len()
        ));
    }
    let mut emissions: Vec<(ShardEmission, &String)> =
        emissions.into_iter().zip(names.iter()).collect();
    emissions.sort_by_key(|(e, _)| e.shard);
    let (first, _) = &emissions[0];
    let expected_len = first.records.len();
    for (i, (e, name)) in emissions.iter().enumerate() {
        if e.of != of {
            return Err(format!(
                "{name} says {} shards, another emission says {of}",
                e.of
            ));
        }
        if e.shard != i {
            return Err(format!(
                "shard set is not exactly 0..{of}: found shard {} ({name}) where \
                 {i} was expected (missing or duplicate emission)",
                e.shard
            ));
        }
        if e.records.len() != expected_len {
            return Err(format!(
                "{name} (shard {}) recorded {} sweeps but shard 0 recorded {} — \
                 the runs used different experiment selections or flags",
                e.shard,
                e.records.len(),
                expected_len
            ));
        }
    }
    let mut merged = MergedLedger {
        records: Vec::with_capacity(expected_len),
        source: names.join(", "),
    };
    for sweep_idx in 0..expected_len {
        let template = &emissions[0].0.records[sweep_idx];
        let mut report = SweepReport::default();
        for (e, name) in &emissions {
            let record = &e.records[sweep_idx];
            if !record.matches(&template.meta()) {
                return Err(format!(
                    "sweep #{sweep_idx}: {name} (shard {}) recorded a {} but shard 0 \
                     recorded a {} — the runs used different parameters",
                    e.shard,
                    record.describe(),
                    template.describe()
                ));
            }
            report = report.merge(record.report());
        }
        if report.executed() != template.size() {
            return Err(format!(
                "sweep #{sweep_idx} ({}): merged shards executed {} of {} units — \
                 a shard is missing coverage",
                template.describe(),
                report.executed(),
                template.size()
            ));
        }
        merged
            .records
            .push(LedgerRecord::new(template.meta(), report));
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_runner::{GroupStats, Scenario, ScenarioOutcome};

    fn grid_record(executed: usize, size: usize) -> LedgerRecord {
        let mut report = SweepReport::default();
        if executed > 0 {
            report.groups.push(GroupStats {
                executed,
                meetings: executed,
                ..GroupStats::default()
            });
        }
        LedgerRecord::Grid {
            digest: 7,
            full_size: size,
            size,
            report,
        }
    }

    fn topo_record(per_family: &[(&str, usize)], size: usize) -> LedgerRecord {
        let mut report = SweepReport::default();
        for &(family, executed) in per_family {
            report.groups.push(GroupStats {
                key: family.into(),
                executed,
                meetings: executed,
                ..GroupStats::default()
            });
        }
        report.groups.sort_by(|a, b| a.key.cmp(&b.key));
        LedgerRecord::Topo {
            digest: 7,
            full_size: size,
            size,
            report,
        }
    }

    fn emission(shard: usize, of: usize, records: Vec<LedgerRecord>) -> ShardEmission {
        ShardEmission { shard, of, records }
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("s{i}.json")).collect()
    }

    #[test]
    fn merge_rejects_inconsistent_emissions() {
        // Wrong file count for the declared shard total.
        let e = emission(0, 3, vec![]);
        assert!(merge_emissions(vec![e], &names(1))
            .unwrap_err()
            .contains("expected 3"));
        // Duplicate shard indices — the error names the file.
        let dup = vec![emission(0, 2, vec![]), emission(0, 2, vec![])];
        let err = merge_emissions(dup, &names(2)).unwrap_err();
        assert!(
            err.contains("not exactly") && err.contains("s1.json"),
            "{err}"
        );
        // Mismatched sweep counts.
        let uneven = vec![
            emission(0, 2, vec![grid_record(1, 2)]),
            emission(1, 2, vec![]),
        ];
        assert!(merge_emissions(uneven, &names(2))
            .unwrap_err()
            .contains("different experiment"));
        // A grid sweep in one ledger facing a topo sweep in another.
        let crossed = vec![
            emission(0, 2, vec![grid_record(1, 2)]),
            emission(1, 2, vec![topo_record(&[("ring", 1)], 2)]),
        ];
        let err = merge_emissions(crossed, &names(2)).unwrap_err();
        assert!(
            err.contains("topo sweep") && err.contains("grid sweep"),
            "kind mismatch must name both kinds: {err}"
        );
        // Coverage hole: shards together executed fewer than the grid.
        let hole = vec![
            emission(0, 2, vec![grid_record(1, 4)]),
            emission(1, 2, vec![grid_record(1, 4)]),
        ];
        assert!(merge_emissions(hole, &names(2))
            .unwrap_err()
            .contains("missing coverage"));
        // And a consistent pair merges.
        let good = vec![
            emission(0, 2, vec![grid_record(2, 4)]),
            emission(1, 2, vec![grid_record(2, 4)]),
        ];
        let merged = merge_emissions(good, &names(2)).unwrap();
        assert_eq!(merged.records.len(), 1);
        assert_eq!(merged.records[0].report().executed(), 4);
        assert_eq!(merged.source, "s0.json, s1.json");
    }

    #[test]
    fn merge_handles_mixed_grid_and_topo_ledgers_in_call_order() {
        // One emission stream holding a pair-grid sweep, a topo sweep and
        // a fleet-grid sweep — the x1–x11 shape in miniature.
        let left = emission(
            0,
            2,
            vec![
                grid_record(2, 4),
                topo_record(&[("ring", 2), ("tree", 1)], 6),
                grid_record(1, 2),
            ],
        );
        let right = emission(
            1,
            2,
            vec![
                grid_record(2, 4),
                topo_record(&[("tree", 3)], 6),
                grid_record(1, 2),
            ],
        );
        let merged = merge_emissions(vec![left, right], &names(2)).unwrap();
        assert_eq!(merged.records.len(), 3);
        assert_eq!(merged.records[0].kind(), WorkloadKind::Grid);
        assert_eq!(merged.records[1].kind(), WorkloadKind::Topo);
        let topo = merged.records[1].report();
        assert_eq!(topo.executed(), 6);
        assert_eq!(topo.group("ring").unwrap().executed, 2);
        assert_eq!(topo.group("tree").unwrap().executed, 4);
        assert_eq!(merged.records[2].report().executed(), 2);
    }

    // Replay diagnostics (ledger exhaustion, record-kind mismatch) are
    // covered in `crates/bench/tests/ledger.rs`: they install the
    // process-global session, which would race the other lib tests that
    // sweep through `plan_sweep` concurrently in this binary.

    #[test]
    fn emission_serde_round_trip_is_byte_identical() {
        let mut fleet_report = SweepReport::default();
        fleet_report.absorb(
            "",
            9,
            None,
            &ScenarioOutcome {
                scenario: Scenario::pair(
                    1,
                    2,
                    rendezvous_graph::NodeId::new(0),
                    rendezvous_graph::NodeId::new(1),
                    0,
                    50,
                ),
                time: Some(31),
                cost: 64,
                crossings: 0,
                time_bound: Some(90),
                merges: 3,
            },
            None,
        );
        let e = emission(
            1,
            3,
            vec![
                grid_record(5, 15),
                LedgerRecord::Grid {
                    digest: 7,
                    full_size: 40,
                    size: 12,
                    report: fleet_report,
                },
                topo_record(&[("ring", 4)], 12),
            ],
        );
        let text = serde_json::to_string_pretty(&e).unwrap();
        let back: ShardEmission = serde_json::from_str(&text).unwrap();
        assert_eq!(serde_json::to_string_pretty(&back).unwrap(), text);
        assert_eq!(back.shard, 1);
        assert_eq!(back.of, 3);
        assert_eq!(back.records.len(), 3);
        assert_eq!(back.records[1].report().solo().merges, 3);
        assert_eq!(back.records[2].report().group("ring").unwrap().executed, 4);
    }
}
