//! Multi-process sweep sharding for the experiments binary.
//!
//! One experiment run performs a deterministic *sequence* of adversarial
//! sweeps (every [`common::sweep_recorded`](crate::common::sweep_recorded)
//! call — the pair grids of X1–X8 and the gathering fleet grids of X9
//! alike). Sharding splits each sweep in that sequence across `m`
//! independent processes and reassembles the exact single-process result:
//!
//! 1. **Shard pass** (`experiments --shard i/m --emit-shard`, run once per
//!    `i`): every sweep executes only shard `i` of its grid
//!    ([`Grid::shard`](rendezvous_runner::Grid::shard)), and the partial
//!    [`SweepStats`] are appended to a ledger that is emitted as JSON.
//! 2. **Merge pass** (`experiments --merge-shards a.json b.json …`): the
//!    emitted ledgers are merged position-wise with
//!    [`SweepStats::merge`] and the experiments replay against the merged
//!    ledger instead of executing — producing output byte-identical to an
//!    unsharded run.
//!
//! Topology sweeps (`x10` and the gathering sweep `x11`) ride the same
//! pipeline: each ledger carries a parallel `topo` section of per-sweep
//! [`TopoStats`] partials with its own call-order cursor, merged
//! position-wise with [`TopoStats::merge`].
//!
//! The mode lives in a process-wide session (the experiments binary is
//! single-threaded at the sweep-sequence level, and sweeps themselves may
//! parallelize freely underneath); library users never touch it, and when
//! no session is active [`plan_sweep`] says [`SweepPlan::Full`] — the
//! ordinary single-process path.

use rendezvous_runner::{SweepStats, TopoStats};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// One sweep's entry in a shard ledger: the shard's partial stats plus
/// the grid fingerprint used to detect mismatched shard runs at merge
/// time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepRecord {
    /// Pre-cap size of the swept grid.
    pub full_size: usize,
    /// Post-cap size of the swept grid (what a full sweep executes).
    pub size: usize,
    /// The shard's partial stats (or, after merging, the full stats).
    pub stats: SweepStats,
}

/// One **topology** sweep's entry in a shard ledger — the topo analogue
/// of [`SweepRecord`], produced by the
/// [`common::sweep_topo_recorded`](crate::common::sweep_topo_recorded)
/// calls of X10/X11 and carried through the same emission/merge/replay
/// pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopoRecord {
    /// Total (spec × scenario) size of the swept `TopoGrid`.
    pub size: usize,
    /// The shard's partial per-family stats (after merging, the full
    /// stats).
    pub stats: TopoStats,
}

/// The JSON document one `--emit-shard` run prints: which shard it was
/// plus its per-sweep ledgers (scenario sweeps and topology sweeps keep
/// separate call-order cursors).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardEmission {
    /// Shard index of this run.
    pub shard: usize,
    /// Total shard count of the sharded sweep.
    pub of: usize,
    /// One record per `sweep_worst` call, in call order.
    pub sweeps: Vec<SweepRecord>,
    /// One record per topology sweep, in call order.
    pub topo: Vec<TopoRecord>,
}

/// What `sweep_worst` should do for the next sweep.
pub(crate) enum SweepPlan {
    /// No session: execute the whole grid (the ordinary path).
    Full,
    /// Execute only this shard of the grid and record the partial stats.
    Shard {
        /// Shard index.
        shard: usize,
        /// Shard count.
        of: usize,
    },
    /// Skip execution; this merged record is the sweep's result. (Boxed:
    /// a record is an order of magnitude larger than the other variants.)
    Replay(Box<SweepRecord>),
}

/// What a topology sweep should do next — mirrors [`SweepPlan`] with the
/// topo ledger's record type.
pub(crate) enum TopoPlan {
    /// No session: execute the whole topo grid.
    Full,
    /// Execute only this shard of the topo grid and record the partials.
    Shard {
        /// Shard index.
        shard: usize,
        /// Shard count.
        of: usize,
    },
    /// Skip execution; this merged record is the sweep's result.
    Replay(Box<TopoRecord>),
}

enum Session {
    Shard {
        shard: usize,
        of: usize,
        ledger: Vec<SweepRecord>,
        topo_ledger: Vec<TopoRecord>,
    },
    Replay {
        records: Vec<SweepRecord>,
        cursor: usize,
        topo_records: Vec<TopoRecord>,
        topo_cursor: usize,
    },
}

static SESSION: Mutex<Option<Session>> = Mutex::new(None);

/// Switches this process into shard mode: every subsequent sweep executes
/// only shard `shard` of `of` and records its partial stats.
///
/// # Panics
///
/// Panics if `shard >= of`, `of == 0` or a session is already active.
pub fn begin_shard(shard: usize, of: usize) {
    assert!(of > 0 && shard < of, "invalid shard {shard}/{of}");
    let mut session = SESSION.lock().expect("shard session poisoned");
    assert!(session.is_none(), "a sweep session is already active");
    *session = Some(Session::Shard {
        shard,
        of,
        ledger: Vec::new(),
        topo_ledger: Vec::new(),
    });
}

/// Ends shard mode and returns the emission document to print.
///
/// # Panics
///
/// Panics if no shard session is active.
pub fn finish_shard() -> ShardEmission {
    let mut session = SESSION.lock().expect("shard session poisoned");
    match session.take() {
        Some(Session::Shard {
            shard,
            of,
            ledger,
            topo_ledger,
        }) => ShardEmission {
            shard,
            of,
            sweeps: ledger,
            topo: topo_ledger,
        },
        _ => panic!("finish_shard without an active shard session"),
    }
}

/// Switches this process into replay mode over merged sweep records:
/// every subsequent sweep (scenario or topology) consumes its ledger's
/// next record instead of executing.
///
/// # Panics
///
/// Panics if a session is already active.
pub fn begin_replay(records: Vec<SweepRecord>, topo_records: Vec<TopoRecord>) {
    let mut session = SESSION.lock().expect("shard session poisoned");
    assert!(session.is_none(), "a sweep session is already active");
    *session = Some(Session::Replay {
        records,
        cursor: 0,
        topo_records,
        topo_cursor: 0,
    });
}

/// Ends replay mode, verifying every merged record was consumed (a
/// leftover means the merge inputs came from a different experiment
/// selection than the replay run).
///
/// # Panics
///
/// Panics if records remain unconsumed or no replay session is active.
pub fn finish_replay() {
    let mut session = SESSION.lock().expect("shard session poisoned");
    match session.take() {
        Some(Session::Replay {
            records,
            cursor,
            topo_records,
            topo_cursor,
        }) => {
            assert_eq!(
                cursor,
                records.len(),
                "replay consumed {cursor} of {} merged sweeps — the shard runs \
                 covered a different experiment selection than this merge run",
                records.len()
            );
            assert_eq!(
                topo_cursor,
                topo_records.len(),
                "replay consumed {topo_cursor} of {} merged topology sweeps — \
                 the shard runs covered a different experiment selection than \
                 this merge run",
                topo_records.len()
            );
        }
        _ => panic!("finish_replay without an active replay session"),
    }
}

/// Decides how the next sweep runs; called by `sweep_worst` once per sweep.
///
/// # Panics
///
/// Panics in replay mode when the merged ledger is exhausted.
pub(crate) fn plan_sweep() -> SweepPlan {
    let mut session = SESSION.lock().expect("shard session poisoned");
    match session.as_mut() {
        None => SweepPlan::Full,
        Some(Session::Shard { shard, of, .. }) => SweepPlan::Shard {
            shard: *shard,
            of: *of,
        },
        Some(Session::Replay {
            records, cursor, ..
        }) => {
            let record = records.get(*cursor).unwrap_or_else(|| {
                panic!(
                    "sweep #{} requested but the merged ledger holds only {} — \
                     the shard runs covered a different experiment selection",
                    *cursor,
                    records.len()
                )
            });
            *cursor += 1;
            SweepPlan::Replay(Box::new(record.clone()))
        }
    }
}

/// Decides how the next **topology** sweep runs; called by the `x10`
/// experiment once per topo sweep.
///
/// # Panics
///
/// Panics in replay mode when the merged topo ledger is exhausted.
pub(crate) fn plan_topo_sweep() -> TopoPlan {
    let mut session = SESSION.lock().expect("shard session poisoned");
    match session.as_mut() {
        None => TopoPlan::Full,
        Some(Session::Shard { shard, of, .. }) => TopoPlan::Shard {
            shard: *shard,
            of: *of,
        },
        Some(Session::Replay {
            topo_records,
            topo_cursor,
            ..
        }) => {
            let record = topo_records.get(*topo_cursor).unwrap_or_else(|| {
                panic!(
                    "topology sweep #{} requested but the merged ledger holds \
                     only {} — the shard runs covered a different experiment \
                     selection",
                    *topo_cursor,
                    topo_records.len()
                )
            });
            *topo_cursor += 1;
            TopoPlan::Replay(Box::new(record.clone()))
        }
    }
}

/// Records one sweep's partial stats in shard mode; no-op outside it.
pub(crate) fn record_shard_sweep(record: SweepRecord) {
    let mut session = SESSION.lock().expect("shard session poisoned");
    if let Some(Session::Shard { ledger, .. }) = session.as_mut() {
        ledger.push(record);
    }
}

/// Records one topology sweep's partial stats in shard mode; no-op
/// outside it.
pub(crate) fn record_topo_sweep(record: TopoRecord) {
    let mut session = SESSION.lock().expect("shard session poisoned");
    if let Some(Session::Shard { topo_ledger, .. }) = session.as_mut() {
        topo_ledger.push(record);
    }
}

/// The merged ledgers of all shards of one run: scenario sweeps and
/// topology sweeps, each in call order.
#[derive(Debug, Clone, Default)]
pub struct MergedLedgers {
    /// One full-sweep record per `sweep_worst` call.
    pub sweeps: Vec<SweepRecord>,
    /// One full-sweep record per topology sweep.
    pub topo: Vec<TopoRecord>,
}

/// Merges the emissions of all `of` shards into one full-sweep ledger,
/// validating that the inputs are exactly shards `0..of` of the same
/// sweep sequence.
///
/// # Errors
///
/// A human-readable description of any inconsistency: wrong shard set,
/// disagreeing shard counts, or ledgers from different sweep sequences.
pub fn merge_emissions(mut emissions: Vec<ShardEmission>) -> Result<MergedLedgers, String> {
    let Some(first) = emissions.first() else {
        return Err("no shard files given".into());
    };
    let of = first.of;
    if emissions.len() != of {
        return Err(format!(
            "expected {of} shard files (one per shard), got {}",
            emissions.len()
        ));
    }
    emissions.sort_by_key(|e| e.shard);
    let first = &emissions[0];
    for (i, e) in emissions.iter().enumerate() {
        if e.of != of {
            return Err(format!(
                "shard file {i} says {} shards, another says {of}",
                e.of
            ));
        }
        if e.shard != i {
            return Err(format!(
                "shard set is not exactly 0..{of}: found shard {} where {i} was expected \
                 (missing or duplicate emission)",
                e.shard
            ));
        }
        if e.sweeps.len() != first.sweeps.len() {
            return Err(format!(
                "shard {} recorded {} sweeps but shard 0 recorded {} — \
                 the runs used different experiment selections or flags",
                e.shard,
                e.sweeps.len(),
                first.sweeps.len()
            ));
        }
        if e.topo.len() != first.topo.len() {
            return Err(format!(
                "shard {} recorded {} topology sweeps but shard 0 recorded {} — \
                 the runs used different experiment selections or flags",
                e.shard,
                e.topo.len(),
                first.topo.len()
            ));
        }
    }
    let mut merged = MergedLedgers {
        sweeps: Vec::with_capacity(first.sweeps.len()),
        topo: Vec::with_capacity(first.topo.len()),
    };
    for sweep_idx in 0..first.sweeps.len() {
        let template = &emissions[0].sweeps[sweep_idx];
        let mut stats = SweepStats::default();
        for e in &emissions {
            let record = &e.sweeps[sweep_idx];
            if record.full_size != template.full_size || record.size != template.size {
                return Err(format!(
                    "sweep #{sweep_idx}: shard {} swept a {}-scenario grid but shard 0 \
                     swept {} — the runs used different parameters",
                    e.shard, record.size, template.size
                ));
            }
            stats = stats.merge(&record.stats);
        }
        if stats.executed != template.size {
            return Err(format!(
                "sweep #{sweep_idx}: merged shards executed {} of {} scenarios — \
                 a shard is missing coverage",
                stats.executed, template.size
            ));
        }
        merged.sweeps.push(SweepRecord {
            full_size: template.full_size,
            size: template.size,
            stats,
        });
    }
    for topo_idx in 0..first.topo.len() {
        let template = &emissions[0].topo[topo_idx];
        let mut stats = TopoStats::default();
        for e in &emissions {
            let record = &e.topo[topo_idx];
            if record.size != template.size {
                return Err(format!(
                    "topology sweep #{topo_idx}: shard {} swept a {}-scenario topo \
                     grid but shard 0 swept {} — the runs used different parameters",
                    e.shard, record.size, template.size
                ));
            }
            stats = stats.merge(&record.stats);
        }
        if stats.executed() != template.size {
            return Err(format!(
                "topology sweep #{topo_idx}: merged shards executed {} of {} \
                 scenarios — a shard is missing coverage",
                stats.executed(),
                template.size
            ));
        }
        merged.topo.push(TopoRecord {
            size: template.size,
            stats,
        });
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(executed: usize, size: usize) -> SweepRecord {
        SweepRecord {
            full_size: size,
            size,
            stats: SweepStats {
                executed,
                meetings: executed,
                ..Default::default()
            },
        }
    }

    fn emission(shard: usize, of: usize, sweeps: Vec<SweepRecord>) -> ShardEmission {
        ShardEmission {
            shard,
            of,
            sweeps,
            topo: vec![],
        }
    }

    fn topo_record(per_family: &[(&str, usize)], size: usize) -> TopoRecord {
        use rendezvous_runner::FamilyStats;
        let mut stats = TopoStats::default();
        for &(family, executed) in per_family {
            stats.families.push(FamilyStats {
                family: family.into(),
                executed,
                meetings: executed,
                failures: 0,
                max_time: 0,
                max_cost: 0,
                merges: 0,
                time_violations: 0,
                cost_violations: 0,
                worst_time: None,
                worst_cost: None,
                worst_ratio: None,
            });
        }
        stats.families.sort_by(|a, b| a.family.cmp(&b.family));
        TopoRecord { size, stats }
    }

    #[test]
    fn merge_rejects_inconsistent_emissions() {
        // Wrong file count for the declared shard total.
        let e = emission(0, 3, vec![]);
        assert!(merge_emissions(vec![e]).unwrap_err().contains("expected 3"));
        // Duplicate shard indices.
        let dup = vec![emission(0, 2, vec![]), emission(0, 2, vec![])];
        assert!(merge_emissions(dup).unwrap_err().contains("not exactly"));
        // Mismatched sweep counts.
        let uneven = vec![emission(0, 2, vec![record(1, 2)]), emission(1, 2, vec![])];
        assert!(merge_emissions(uneven)
            .unwrap_err()
            .contains("different experiment"));
        // Coverage hole: shards together executed fewer than the grid.
        let hole = vec![
            emission(0, 2, vec![record(1, 4)]),
            emission(1, 2, vec![record(1, 4)]),
        ];
        assert!(merge_emissions(hole)
            .unwrap_err()
            .contains("missing coverage"));
        // And a consistent pair merges.
        let good = vec![
            emission(0, 2, vec![record(2, 4)]),
            emission(1, 2, vec![record(2, 4)]),
        ];
        let merged = merge_emissions(good).unwrap();
        assert_eq!(merged.sweeps.len(), 1);
        assert_eq!(merged.sweeps[0].stats.executed, 4);
        assert!(merged.topo.is_empty());
    }

    #[test]
    fn merge_validates_and_merges_topo_ledgers() {
        // Mismatched topo sweep counts across shards.
        let mut a = emission(0, 2, vec![]);
        a.topo = vec![topo_record(&[("ring", 2)], 6)];
        let b = emission(1, 2, vec![]);
        assert!(merge_emissions(vec![a.clone(), b])
            .unwrap_err()
            .contains("topology sweeps"));
        // Coverage hole in the topo ledger.
        let mut short = emission(1, 2, vec![]);
        short.topo = vec![topo_record(&[("ring", 2)], 6)];
        assert!(merge_emissions(vec![a.clone(), short])
            .unwrap_err()
            .contains("missing coverage"));
        // Consistent pair: families union, counts sum, size checks out.
        let mut left = emission(0, 2, vec![]);
        left.topo = vec![topo_record(&[("ring", 2), ("tree", 1)], 6)];
        let mut right = emission(1, 2, vec![]);
        right.topo = vec![topo_record(&[("tree", 3)], 6)];
        let merged = merge_emissions(vec![left, right]).unwrap();
        assert_eq!(merged.topo.len(), 1);
        let stats = &merged.topo[0].stats;
        assert_eq!(stats.executed(), 6);
        assert_eq!(stats.family("ring").unwrap().executed, 2);
        assert_eq!(stats.family("tree").unwrap().executed, 4);
    }

    #[test]
    fn emission_serde_round_trip() {
        let mut e = emission(1, 3, vec![record(5, 15), record(7, 21)]);
        e.topo = vec![topo_record(&[("ring", 4)], 12)];
        let text = serde_json::to_string_pretty(&e).unwrap();
        let back: ShardEmission = serde_json::from_str(&text).unwrap();
        assert_eq!(back.shard, 1);
        assert_eq!(back.of, 3);
        assert_eq!(back.sweeps.len(), 2);
        assert_eq!(back.sweeps[1].stats.executed, 7);
        assert_eq!(back.topo.len(), 1);
        assert_eq!(back.topo[0].stats.family("ring").unwrap().executed, 4);
    }
}
