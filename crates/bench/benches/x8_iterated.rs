//! Bench X8 — regenerates the unknown-E telescoping comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use rendezvous_bench::x8_iterated;
use rendezvous_runner::Runner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("x8/iterated_n6", |b| {
        b.iter(|| {
            let rows = x8_iterated::run(&[6], 4, &Runner::with_threads(2));
            for r in &rows {
                assert!(r.time_ratio <= 16.0);
            }
            black_box(rows.len())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
