//! Bench X4 — regenerates the time/cost frontier.

use criterion::{criterion_group, criterion_main, Criterion};
use rendezvous_bench::x4_tradeoff;
use rendezvous_runner::Runner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("x4/frontier_n8_l32", |b| {
        b.iter(|| {
            let points = x4_tradeoff::run(8, 32, &[2, 3], &Runner::with_threads(2));
            for p in &points {
                assert!(p.time <= p.time_bound);
                assert!(p.cost <= p.cost_bound);
            }
            black_box(points.len())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
