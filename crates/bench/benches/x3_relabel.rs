//! Bench X3 — regenerates the Proposition 2.3 / Corollary 2.1 tables.

use criterion::{criterion_group, criterion_main, Criterion};
use rendezvous_bench::x3_relabel;
use rendezvous_runner::Runner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("x3/bounds_sweep", |b| {
        b.iter(|| {
            black_box(x3_relabel::run_bounds(
                &[16, 64, 256, 1024, 4096],
                &[1, 2, 3, 4],
            ))
        });
    });
    c.bench_function("x3/exec_ring6", |b| {
        b.iter(|| {
            let rows = x3_relabel::run_exec(6, 8, &[1, 2, 3], &Runner::with_threads(2));
            for r in &rows {
                assert!(r.time <= r.time_bound);
                assert!(r.cost <= r.cost_bound);
            }
            black_box(rows.len())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
