//! Bench X1 — regenerates the Proposition 2.1 table (Cheap) at bench
//! scale and asserts the paper bounds on every sample.

use criterion::{criterion_group, criterion_main, Criterion};
use rendezvous_bench::x1_cheap;
use rendezvous_runner::Runner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("x1/cheap_table_n8", |b| {
        b.iter(|| {
            let rows = x1_cheap::run(8, &[2, 4, 8], true, &Runner::with_threads(2));
            for r in &rows {
                assert!(r.cheap_time <= r.cheap_time_bound);
                assert!(r.cheap_cost <= r.cheap_cost_bound);
                assert!(r.sim_cost <= r.e);
            }
            black_box(rows.len())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
