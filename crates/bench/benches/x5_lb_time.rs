//! Bench X5 — regenerates the Theorem 3.1 chain audit.

use criterion::{criterion_group, criterion_main, Criterion};
use rendezvous_bench::x5_lb_time;
use rendezvous_runner::Runner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("x5/eager_chain_n12", |b| {
        b.iter(|| {
            let rows = x5_lb_time::run(12, &[4, 8], &Runner::with_threads(2));
            for r in &rows {
                assert!(r.increasing);
                assert!(r.chain_time >= r.witness);
            }
            black_box(rows.len())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
