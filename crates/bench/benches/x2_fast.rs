//! Bench X2 — regenerates the Proposition 2.2 table (Fast) at bench scale.

use criterion::{criterion_group, criterion_main, Criterion};
use rendezvous_bench::x2_fast;
use rendezvous_runner::Runner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("x2/fast_table_n8", |b| {
        b.iter(|| {
            let rows = x2_fast::run(8, &[2, 8, 32], false, &Runner::with_threads(2));
            for r in &rows {
                assert!(r.time <= r.time_bound);
                assert!(r.cost <= r.cost_bound);
            }
            black_box(rows.len())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
