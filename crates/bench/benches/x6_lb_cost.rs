//! Bench X6 — regenerates the Theorem 3.2 progress audit.

use criterion::{criterion_group, criterion_main, Criterion};
use rendezvous_bench::x6_lb_cost;
use rendezvous_runner::Runner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("x6/progress_n12", |b| {
        b.iter(|| {
            let rows = x6_lb_cost::run(12, &[4, 8], &Runner::with_threads(2));
            for r in &rows {
                assert!(r.witnesses_hold);
            }
            black_box(rows.len())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
