//! Bench X7 — regenerates the graph-family generality table.

use criterion::{criterion_group, criterion_main, Criterion};
use rendezvous_bench::x7_families;
use rendezvous_runner::Runner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("x7/families_l4", |b| {
        b.iter(|| {
            let rows = x7_families::run(4, 0xBEEF, &Runner::with_threads(2));
            for r in &rows {
                assert!(r.cheap_time <= r.cheap_time_bound);
                assert!(r.fast_time <= r.fast_time_bound);
            }
            black_box(rows.len())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
