//! Bench X9 — regenerates the gathering extension table.

use criterion::{criterion_group, criterion_main, Criterion};
use rendezvous_bench::x9_gathering;
use rendezvous_runner::Runner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("x9/gathering_n12", |b| {
        b.iter(|| {
            let rows = x9_gathering::run(12, 32, &[2, 3], &Runner::with_threads(2));
            for r in &rows {
                assert!(r.rounds <= r.bound);
            }
            black_box(rows.len())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
