//! Micro-benchmarks of the substrates: engine round throughput, walk
//! computation, label machinery. These measure the *simulator's* speed
//! (the paper makes no wall-clock claims); the X-benches measure the
//! paper's round/cost metrics.
//!
//! Besides the stdout report, the run writes every `(name, median
//! ns/iter)` pair to `BENCH_micro.json` at the repo root, so the perf
//! trajectory is tracked across changes.

use criterion::{criterion_group, BatchSize, Criterion};
use rendezvous_core::{lex_subset_bits, Fast, Label, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::{dfs_walk, DfsMapExplorer, Explorer, OrientedRingExplorer};
use rendezvous_graph::{generators, NodeId, Port};
use rendezvous_sim::{Action, AgentSpec, MeetingCondition, ScriptedAgent, Simulation};
use std::hint::black_box;
use std::sync::Arc;

fn engine_throughput(c: &mut Criterion) {
    let g = Arc::new(generators::oriented_ring(64).unwrap());
    let ex: Arc<dyn Explorer> = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let alg = Fast::new(g.clone(), ex, LabelSpace::new(64).unwrap());
    c.bench_function("engine/fast_pair_on_ring64", |b| {
        b.iter_batched(
            || {
                let a = alg.agent(Label::new(17).unwrap(), NodeId::new(0)).unwrap();
                let bb = alg.agent(Label::new(42).unwrap(), NodeId::new(31)).unwrap();
                (a, bb)
            },
            |(a, bb)| {
                let out = Simulation::new(&g)
                    .agent(Box::new(a), AgentSpec::immediate(NodeId::new(0)))
                    .agent(Box::new(bb), AgentSpec::immediate(NodeId::new(31)))
                    .max_rounds(alg.time_bound())
                    .run()
                    .unwrap();
                black_box(out.met())
            },
            BatchSize::SmallInput,
        );
    });
}

/// The hot-loop refactor target: round throughput with many agents, where
/// the per-round meeting scan and crossing detection dominate. A fleet of
/// `k` clockwise walkers spread over a large ring never meets, so every
/// round pays the full occupancy check. Before the hash-based occupancy
/// map this scan was O(k²) per round.
fn engine_occupancy(c: &mut Criterion) {
    let g = Arc::new(generators::oriented_ring(4096).unwrap());
    for k in [2usize, 8, 32, 128] {
        c.bench_function(&format!("engine/occupancy_scan_k{k}"), |b| {
            b.iter_batched(
                || {
                    // FirstPair is the condition whose scan was quadratic.
                    let mut sim = Simulation::new(&g)
                        .max_rounds(256)
                        .meeting_condition(MeetingCondition::FirstPair);
                    for i in 0..k {
                        // Same direction, same speed: the fleet rotates
                        // rigidly and never meets.
                        sim = sim.agent(
                            Box::new(ScriptedAgent::new(vec![Action::Move(Port::new(0)); 256])),
                            AgentSpec::immediate(NodeId::new(i * (4096 / k))),
                        );
                    }
                    sim
                },
                |sim| {
                    let out = sim.run().unwrap();
                    assert!(!out.met());
                    black_box(out.rounds_executed())
                },
                BatchSize::SmallInput,
            );
        });
    }
}

/// The flat-plan decision phase: a compiled `(label, start)` action
/// array replaces the `ScheduleBehavior`'s per-round phase bookkeeping
/// and explorer-run stepping with an indexed load. The baseline drives
/// the stepped behavior through a full solo run; the flat variant
/// replays the precompiled plan over the same rounds; the compile case
/// prices the one-off unroll the executor's `(label, start)` cache
/// amortizes across every delay and partner configuration of a sweep.
fn engine_flat_plan(c: &mut Criterion) {
    use rendezvous_core::{FlatPlan, Label, ScheduleBehavior};
    use rendezvous_sim::run_solo;
    let g = Arc::new(generators::oriented_ring(64).unwrap());
    let ex: Arc<dyn Explorer> = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let alg = Fast::new(g.clone(), ex, LabelSpace::new(64).unwrap());
    let schedule = Arc::new(alg.schedule(Label::new(42).unwrap()).unwrap());
    let rounds = schedule.total_rounds();
    let start = NodeId::new(0);
    c.bench_function("engine/flat_plan_compile", |b| {
        b.iter(|| {
            black_box(FlatPlan::compile(g.clone(), Arc::clone(&schedule), start).len());
        });
    });
    // Decision phase in isolation: next_action round by round, without
    // the simulator around it (the ring's degree is uniformly 2, which
    // is all the stepped behavior reads from its observation).
    use rendezvous_sim::{AgentBehavior, Observation};
    c.bench_function("engine/schedule_step_decisions", |b| {
        b.iter(|| {
            let mut stepped =
                ScheduleBehavior::with_shared(g.clone(), Arc::clone(&schedule), start);
            let mut moves = 0u64;
            for r in 0..rounds {
                let action = stepped.next_action(Observation {
                    local_round: r,
                    degree: 2,
                    entry_port: None,
                });
                moves += u64::from(action.is_move());
            }
            black_box(moves)
        });
    });
    let plan = Arc::new(FlatPlan::compile(g.clone(), Arc::clone(&schedule), start));
    c.bench_function("engine/flat_plan_decisions", |b| {
        b.iter(|| {
            let mut flat = plan.behavior();
            let mut moves = 0u64;
            for r in 0..rounds {
                let action = flat.next_action(Observation {
                    local_round: r,
                    degree: 2,
                    entry_port: None,
                });
                moves += u64::from(action.is_move());
            }
            black_box(moves)
        });
    });
    // End-to-end through the solo harness, for the realistic per-run
    // saving a sweep scenario sees.
    c.bench_function("engine/flat_plan_solo_run", |b| {
        b.iter(|| {
            let mut flat = plan.behavior();
            black_box(run_solo(&g, &mut flat, start, rounds).unwrap().cost())
        });
    });
    c.bench_function("engine/schedule_step_solo_run", |b| {
        b.iter(|| {
            let mut stepped =
                ScheduleBehavior::with_shared(g.clone(), Arc::clone(&schedule), start);
            black_box(run_solo(&g, &mut stepped, start, rounds).unwrap().cost())
        });
    });
}

fn walk_computation(c: &mut Criterion) {
    let grid = generators::grid(16, 16).unwrap();
    c.bench_function("explore/dfs_walk_grid256", |b| {
        b.iter(|| black_box(dfs_walk(&grid, NodeId::new(0)).len()));
    });
    c.bench_function("explore/dfs_explorer_build_grid256", |b| {
        let g = Arc::new(grid.clone());
        b.iter(|| black_box(DfsMapExplorer::new(g.clone()).bound()));
    });
}

fn label_machinery(c: &mut Criterion) {
    c.bench_function("core/modified_label_large", |b| {
        b.iter(|| {
            black_box(rendezvous_core::ModifiedLabel::of(
                Label::new(black_box(0xDEAD_BEEF)).unwrap(),
            ))
        });
    });
    c.bench_function("core/lex_subset_unrank", |b| {
        b.iter(|| black_box(lex_subset_bits(64, 8, black_box(123_456_789))));
    });
    let g = Arc::new(generators::oriented_ring(32).unwrap());
    let ex: Arc<dyn Explorer> = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let alg = Fast::new(g, ex, LabelSpace::new(1 << 20).unwrap());
    // The per-scenario recompile baseline: what every scenario of a sweep
    // paid before `AlgorithmExecutor` memoized compiled schedules.
    c.bench_function("core/fast_schedule_compile", |b| {
        b.iter(|| {
            black_box(
                alg.schedule(Label::new(black_box(987_654)).unwrap())
                    .unwrap()
                    .total_rounds(),
            )
        });
    });
    // The memoized path: after the first compile, a sweep's remaining
    // scenarios with the same label are a shared-`Arc` cache hit. Labels
    // repeat across thousands of start pairs, so this ratio is the
    // per-scenario saving of the executor's schedule cache.
    let executor = rendezvous_runner::AlgorithmExecutor::new(&alg);
    c.bench_function("core/fast_schedule_compile_cached", |b| {
        b.iter(|| {
            black_box(
                executor
                    .schedule(black_box(987_654))
                    .unwrap()
                    .total_rounds(),
            )
        });
    });
}

fn graph_generation(c: &mut Criterion) {
    use rand::{rngs::StdRng, SeedableRng};
    c.bench_function("graph/erdos_renyi_100", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(
                generators::erdos_renyi_connected(100, 0.1, &mut rng)
                    .unwrap()
                    .edge_count(),
            )
        });
    });
    c.bench_function("graph/hypercube_10", |b| {
        b.iter(|| black_box(generators::hypercube(10).unwrap().edge_count()));
    });
}

/// The topology-sweep graph cache: a `TopoGrid` builds each spec's graph
/// once and shares the `Arc` across all of that spec's scenarios. The
/// baseline is what a naive sweep would pay instead — rebuilding the
/// graph from its spec for every scenario (an X10 spec runs dozens of
/// scenarios, so the per-scenario saving multiplies out).
fn topo_graph_build(c: &mut Criterion) {
    use rendezvous_graph::{ErdosRenyiSpec, GraphSpec, TorusSpec};
    let spec = GraphSpec::ErdosRenyi(ErdosRenyiSpec {
        n: 24,
        edge_permille: 300,
        seed: 7,
    });
    // Per-scenario rebuild baseline: spec → graph on every iteration.
    c.bench_function("topo/graph_build_per_scenario", |b| {
        b.iter(|| black_box(spec.build().unwrap().edge_count()));
    });
    // The cached path: scenarios share the entry's Arc — per scenario
    // that is one refcount bump (what `TopoEntry.graph.clone()` costs).
    let cached = Arc::new(spec.build().unwrap());
    c.bench_function("topo/graph_build_cached", |b| {
        b.iter(|| black_box(Arc::clone(&cached).edge_count()));
    });
    // The permuted-wrapper variant, the most expensive spec kind in the
    // standard X10 list (inner build + full port re-labelling).
    let permuted = GraphSpec::permuted(GraphSpec::Torus(TorusSpec { w: 4, h: 4 }), 9);
    c.bench_function("topo/graph_build_permuted_torus", |b| {
        b.iter(|| black_box(permuted.build().unwrap().edge_count()));
    });
}

/// The delay-batched solver against the stepped engine on the same
/// delay sweep — the O(D·T) → O(T+D) tentpole measurement. Both variants
/// start from precompiled plans (matching the production executors,
/// where the `(label, start)` plan cache makes compilation a one-off),
/// so the ratio isolates solve time. D = 24 delays ≥ the 16 the
/// acceptance threshold is defined at.
fn batch_solving(c: &mut Criterion) {
    use rendezvous_core::FlatPlan;
    use rendezvous_sim::BatchSolver;
    let g = Arc::new(generators::oriented_ring(64).unwrap());
    let ex: Arc<dyn Explorer> = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let alg = Fast::new(g.clone(), ex, LabelSpace::new(64).unwrap());
    let schedule_a = Arc::new(alg.schedule(Label::new(17).unwrap()).unwrap());
    let schedule_b = Arc::new(alg.schedule(Label::new(42).unwrap()).unwrap());
    let (start_a, start_b) = (NodeId::new(0), NodeId::new(31));
    let plan_a = Arc::new(FlatPlan::compile(
        g.clone(),
        Arc::clone(&schedule_a),
        start_a,
    ));
    let plan_b = Arc::new(FlatPlan::compile(
        g.clone(),
        Arc::clone(&schedule_b),
        start_b,
    ));
    let horizon = alg.time_bound();
    let delays: Vec<u64> = (0..24).collect();
    c.bench_function("batch/delay_sweep_stepped", |b| {
        b.iter(|| {
            let mut met = 0u64;
            for &d in &delays {
                let out = Simulation::new(&g)
                    .agent(Box::new(plan_a.behavior()), AgentSpec::immediate(start_a))
                    .agent(Box::new(plan_b.behavior()), AgentSpec::delayed(start_b, d))
                    .max_rounds(horizon)
                    .meeting_condition(MeetingCondition::FirstPair)
                    .run()
                    .unwrap();
                met += u64::from(out.met());
            }
            black_box(met)
        });
    });
    c.bench_function("batch/delay_sweep_batched", |b| {
        b.iter(|| {
            let solver = BatchSolver::new(plan_a.trajectory(), plan_b.trajectory(), horizon);
            let mut met = 0u64;
            for &d in &delays {
                met += u64::from(solver.solve(d).round.is_some());
            }
            black_box(met)
        });
    });
    // The one-off cost the batched path adds on a plan-cache miss:
    // compiling a plan now also records its trajectory.
    c.bench_function("batch/trajectory_compile", |b| {
        b.iter(|| {
            black_box(
                FlatPlan::compile(g.clone(), Arc::clone(&schedule_a), start_a)
                    .trajectory()
                    .steps(),
            )
        });
    });
}

/// The result store's economics: what a full report costs to push
/// through a store entry and back (serialize, atomic write, read,
/// parse, fingerprint check), and what a cache *hit* costs against the
/// sweep computation it replaces — the ratio that makes `--store` a
/// win on every warm rerun.
fn store_paths(c: &mut Criterion) {
    use rendezvous_bench::common::{standard_delays, standard_label_pairs};
    use rendezvous_core::Cheap;
    use rendezvous_runner::{AlgorithmExecutor, Bounded, Bounds, Grid, Runner, Workload};
    use rendezvous_store::{Store, StoreKey};
    let g = Arc::new(generators::oriented_ring(12).unwrap());
    let ex: Arc<dyn Explorer> = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let e = ex.bound() as u64;
    let alg = Cheap::new(g.clone(), ex, LabelSpace::new(8).unwrap());
    let grid = Grid::new(alg.time_bound())
        .label_pairs_both_orders(&standard_label_pairs(8))
        .delays(&standard_delays(e))
        .all_start_pairs(&g);
    let bounds = Some(Bounds {
        time: alg.time_bound(),
        cost: alg.cost_bound(),
    });
    let runner = Runner::sequential();
    let executor = AlgorithmExecutor::new(&alg);
    let bounded = Bounded::new(&executor, bounds);
    let report = runner.sweep(&grid, &bounded).unwrap();
    let dir = std::env::temp_dir().join(format!("rendezvous-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    let meta = grid.meta();
    let key = StoreKey::new("bench cheap", &meta, "stepped");
    c.bench_function("store/report_roundtrip", |b| {
        b.iter(|| {
            store
                .save(&key, "bench cheap", "stepped", &meta, &report)
                .unwrap();
            black_box(store.load(&key).unwrap().executed())
        });
    });
    // The warm-rerun path `--store` takes per sweep...
    c.bench_function("store/cache_hit_vs_compute", |b| {
        b.iter(|| black_box(store.load(&key).unwrap().executed()));
    });
    // ...and the cold computation it replaces.
    c.bench_function("store/sweep_compute_baseline", |b| {
        b.iter(|| black_box(runner.sweep(&grid, &bounded).unwrap().executed()));
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Samples per bench — recorded in the sidecar `meta` so the medians'
/// stability is interpretable.
const SAMPLE_SIZE: usize = 20;

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(SAMPLE_SIZE);
    targets = engine_throughput, engine_occupancy, engine_flat_plan, walk_computation, label_machinery, graph_generation, topo_graph_build, batch_solving, store_paths
}

/// Runs every group, then persists the recorded medians as
/// `BENCH_micro.json` at the repo root (bench names are `[a-z0-9_/]`, so
/// plain string formatting is valid JSON), under a `meta` section
/// recording the harness provenance — wall-clock numbers are only
/// interpretable next to the thread count, build profile, sweep-engine
/// selection, and sample size that produced them.
fn main() {
    benches();
    let results = criterion::take_results();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let mut doc = String::from("{\n  \"meta\": {\n");
    doc.push_str("    \"harness\": \"criterion-lite\",\n");
    doc.push_str(&format!(
        "    \"engine\": \"{}\",\n",
        rendezvous_bench::engine::current().name()
    ));
    doc.push_str(&format!("    \"profile\": \"{profile}\",\n"));
    doc.push_str(&format!("    \"sample_size\": {SAMPLE_SIZE},\n"));
    doc.push_str(&format!("    \"threads\": {threads}\n"));
    doc.push_str("  },\n  \"results\": {\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        doc.push_str(&format!("    \"{name}\": {ns}{comma}\n"));
    }
    doc.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_micro.json");
    std::fs::write(path, &doc).expect("write BENCH_micro.json");
    println!("\nwrote {} medians to BENCH_micro.json", results.len());
}
