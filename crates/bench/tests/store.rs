//! The result store, end to end through the real binary: a warm
//! `--store` rerun must serve every sweep from the cache —
//! byte-identical output, **zero** scenarios executed — and the
//! fingerprint a store entry is addressed by must be the same one the
//! `--plan` preview prints and the fabric checkpoint records (one
//! derivation, [`WorkloadMeta::fingerprint`], used by all three).

use rendezvous_runner::WorkloadMeta;
use rendezvous_store::Store;
use rendezvous_telemetry::TelemetrySnapshot;
use std::path::PathBuf;
use std::process::Command;

fn experiments(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("experiments binary runs")
}

fn stdout_of(args: &[&str]) -> Vec<u8> {
    let out = experiments(args);
    assert!(
        out.status.success(),
        "experiments {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "rendezvous-store-e2e-{name}-{}",
        std::process::id()
    ))
}

fn executed(path: &PathBuf) -> u64 {
    let snap = TelemetrySnapshot::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
    snap.counters
        .get("scenarios_executed")
        .copied()
        .unwrap_or(0)
}

#[test]
fn warm_store_rerun_is_byte_identical_and_executes_nothing() {
    let dir = scratch("warm");
    let tel_cold = scratch("warm-tel-cold");
    let tel_warm = scratch("warm-tel-warm");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap();

    let baseline = stdout_of(&["x1", "--quick"]);
    let cold = stdout_of(&[
        "x1",
        "--quick",
        "--store",
        dir_s,
        "--telemetry",
        tel_cold.to_str().unwrap(),
    ]);
    let warm = stdout_of(&[
        "x1",
        "--quick",
        "--store",
        dir_s,
        "--telemetry",
        tel_warm.to_str().unwrap(),
    ]);
    assert_eq!(baseline, cold, "the store must not change the output");
    assert_eq!(cold, warm, "a warm rerun must render the same bytes");
    assert!(executed(&tel_cold) > 0, "the cold run does the work");
    assert_eq!(executed(&tel_warm), 0, "the warm run executes nothing");

    let warm_snap = TelemetrySnapshot::parse(&std::fs::read_to_string(&tel_warm).unwrap()).unwrap();
    let hits = warm_snap.process.get("store_hits").copied().unwrap_or(0);
    let misses = warm_snap.process.get("store_misses").copied().unwrap_or(0);
    assert!(hits > 0, "warm sweeps must be store hits");
    assert_eq!(misses, 0, "a warm rerun must miss nothing");

    // The store itself passes its own fsck.
    let verify = Store::open(&dir).unwrap().verify().unwrap();
    assert!(
        verify.clean() && verify.ok > 0,
        "fsck: {:?}",
        verify.problems
    );

    let _ = std::fs::remove_dir_all(&dir);
    for p in [&tel_cold, &tel_warm] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn a_corrupted_entry_recomputes_and_heals_instead_of_serving_garbage() {
    let dir = scratch("corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap();

    let cold = stdout_of(&["x1", "--quick", "--store", dir_s]);

    // Truncate one entry mid-JSON: the store must diagnose, recompute,
    // and re-record — never serve the damaged bytes.
    let victim = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "json"))
        .expect("the cold run populated at least one entry");
    let text = std::fs::read_to_string(&victim).unwrap();
    std::fs::write(&victim, &text[..text.len() / 2]).unwrap();
    let fsck = Store::open(&dir).unwrap().verify().unwrap();
    assert!(!fsck.clean(), "fsck must flag the truncated entry");

    let out = experiments(&["x1", "--quick", "--store", dir_s]);
    assert!(out.status.success());
    assert_eq!(out.stdout, cold, "recomputed bytes must match");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("store: recomputing"),
        "the demotion must be visible on stderr"
    );

    // The recompute wrote the entry back; the store is whole again.
    let healed = Store::open(&dir).unwrap().verify().unwrap();
    assert!(healed.clean(), "fsck after heal: {:?}", healed.problems);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn plan_store_column_predicts_cached_versus_miss() {
    let dir = scratch("plan");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap();

    let cold_plan =
        String::from_utf8(stdout_of(&["x1", "--quick", "--plan", "--store", dir_s])).unwrap();
    assert!(!cold_plan.is_empty());
    for line in cold_plan.lines() {
        assert!(line.ends_with("store=miss"), "cold plan: {line:?}");
    }

    stdout_of(&["x1", "--quick", "--store", dir_s]);
    let warm_plan =
        String::from_utf8(stdout_of(&["x1", "--quick", "--plan", "--store", dir_s])).unwrap();
    for line in warm_plan.lines() {
        assert!(line.ends_with("store=cached"), "warm plan: {line:?}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite regression for the unified fingerprint: the `--plan`
/// line, the store entry's address, and the fabric checkpoint record
/// must all speak the same `WorkloadMeta::fingerprint` for the same
/// sweep — three consumers, one derivation.
#[test]
fn plan_store_and_checkpoint_agree_on_every_fingerprint() {
    let dir = scratch("unify");
    let ckpt = scratch("unify-ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&ckpt);
    let dir_s = dir.to_str().unwrap();

    let plan = String::from_utf8(stdout_of(&["x1", "--quick", "--plan"])).unwrap();
    let planned: Vec<String> = plan
        .lines()
        .map(|line| {
            line.split_whitespace()
                .find_map(|w| w.strip_prefix("fingerprint="))
                .unwrap_or_else(|| panic!("no fingerprint in {line:?}"))
                .to_string()
        })
        .collect();
    assert!(!planned.is_empty());

    // Store addresses: every planned fingerprint appears in some entry
    // file name, and every entry's header agrees with its address.
    stdout_of(&["x1", "--quick", "--store", dir_s]);
    let store = Store::open(&dir).unwrap();
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    for fp in &planned {
        assert!(
            names.iter().any(|n| n.contains(fp.as_str())),
            "planned fingerprint {fp} missing from store entries {names:?}"
        );
    }
    for name in &names {
        let token = name.strip_suffix(".json").unwrap_or(name);
        let entry = store.load_token(token).unwrap();
        assert_eq!(entry.fingerprint, entry.meta.fingerprint());
    }

    // Checkpoint records: the fabric persists the same fingerprints.
    stdout_of(&[
        "x1",
        "--quick",
        "--fabric",
        "workers=2",
        "--fabric-checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    let records = rendezvous_fabric::checkpoint::load(&ckpt).unwrap();
    assert!(!records.is_empty());
    for record in &records {
        assert!(
            planned.contains(&record.meta.fingerprint()),
            "checkpoint fingerprint {} never planned",
            record.meta.fingerprint()
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&ckpt);
}

/// The in-process side of the same satellite: the store key's
/// fingerprint component is `WorkloadMeta::fingerprint` verbatim.
#[test]
fn store_key_embeds_the_canonical_fingerprint() {
    let meta = WorkloadMeta {
        kind: rendezvous_runner::WorkloadKind::Grid,
        digest: 0x1bad_b002,
        full_size: 64,
        size: 32,
    };
    let key = rendezvous_store::StoreKey::new("x1 cheap", &meta, "stepped");
    assert_eq!(key.fingerprint(), meta.fingerprint());
    assert!(key.token().ends_with(&meta.fingerprint()));
}
