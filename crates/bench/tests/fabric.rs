//! The distributed fabric, end to end through the real binary: the
//! driver re-execs `experiments` as coordinator + workers over loopback
//! TCP, and the merged output must be **byte-identical** to the direct
//! single-process run — including with a worker SIGKILL'd mid-piece and
//! across a checkpoint resume that re-executes zero ranges.
//!
//! These spawn real processes (via `CARGO_BIN_EXE_experiments`), so they
//! stick to `x1 --quick`; CI's fabric matrix covers x10/x11.

use rendezvous_telemetry::TelemetrySnapshot;
use std::path::PathBuf;
use std::process::Command;

fn experiments(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("experiments binary runs")
}

fn stdout_of(args: &[&str]) -> Vec<u8> {
    let out = experiments(args);
    assert!(
        out.status.success(),
        "experiments {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "rendezvous-fabric-e2e-{name}-{}",
        std::process::id()
    ))
}

#[test]
fn fabric_run_is_byte_identical_to_the_direct_run() {
    let direct = stdout_of(&["x1", "--quick"]);
    let fabric = stdout_of(&["x1", "--quick", "--fabric", "workers=3"]);
    assert!(!direct.is_empty());
    assert_eq!(
        direct, fabric,
        "markdown output must not depend on the fabric"
    );

    let direct_json = stdout_of(&["x1", "--quick", "--json"]);
    let fabric_json = stdout_of(&["x1", "--quick", "--json", "--fabric", "workers=2"]);
    assert_eq!(
        direct_json, fabric_json,
        "JSON output must not depend on the fabric"
    );
}

#[test]
fn a_sigkilled_worker_changes_nothing_but_the_stderr_diagnostics() {
    let direct = stdout_of(&["x1", "--quick"]);
    let out = experiments(&[
        "x1",
        "--quick",
        "--fabric",
        "workers=3",
        "--fabric-kill-one",
    ]);
    assert!(
        out.status.success(),
        "kill-one run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        out.stdout, direct,
        "reassigned ranges must fold to the same bytes"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("leases were reassigned"),
        "the kill must actually have been seen: {stderr}"
    );
}

#[test]
fn checkpoint_resume_re_executes_zero_ranges() {
    let ckpt = scratch("ckpt");
    let t_first = scratch("telemetry-first");
    let t_resume = scratch("telemetry-resume");
    let _ = std::fs::remove_file(&ckpt);
    let ckpt_s = ckpt.to_str().unwrap();

    let args = |telemetry: &str| {
        vec![
            "x1".to_string(),
            "--quick".to_string(),
            "--fabric".to_string(),
            "workers=2".to_string(),
            "--fabric-checkpoint".to_string(),
            ckpt_s.to_string(),
            "--telemetry".to_string(),
            telemetry.to_string(),
        ]
    };
    let run = |telemetry: &PathBuf| {
        let argv = args(telemetry.to_str().unwrap());
        let refs: Vec<&str> = argv.iter().map(String::as_str).collect();
        stdout_of(&refs)
    };

    let first = run(&t_first);
    let resumed = run(&t_resume);
    assert_eq!(first, resumed, "resume must render the same bytes");

    let executed = |path: &PathBuf| {
        let snap = TelemetrySnapshot::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
        snap.counters
            .get("scenarios_executed")
            .copied()
            .unwrap_or(0)
    };
    assert!(executed(&t_first) > 0, "the first run does the work");
    assert_eq!(
        executed(&t_resume),
        0,
        "the resume must re-execute zero completed ranges"
    );

    for p in [&ckpt, &t_first, &t_resume] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn plan_previews_every_sweep_without_executing_any() {
    let out = stdout_of(&["x1", "--quick", "--plan"]);
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "x1 must plan at least one sweep");
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with(&format!("plan: sweep #{i}: ")),
            "plan lines are dense and ordered: {line:?}"
        );
        for field in ["fingerprint=", "pieces="] {
            assert!(line.contains(field), "missing {field}: {line:?}");
        }
        assert!(
            !line.contains("store="),
            "no store column without --store: {line:?}"
        );
    }
    // The preview is the fabric's dispatch view: same sweep count as a
    // worker's walk, no tables, no scenario execution (it returns before
    // any runner is touched, which is why it is instant even un-quick).
    assert!(!text.contains('|'), "no tables in plan mode");
}

#[test]
fn fabric_flag_misuse_is_refused_up_front() {
    for bad in [
        vec!["x1", "--quick", "--fabric", "workers=0"],
        vec!["x1", "--quick", "--fabric", "three"],
        vec!["x1", "--quick", "--fabric-checkpoint", "/tmp/nope"],
        vec![
            "x1",
            "--quick",
            "--fabric",
            "workers=1",
            "--fabric-kill-one",
        ],
        vec!["x1", "--quick", "--fabric", "workers=2", "--shard", "0/2"],
        vec!["x1", "--quick", "--plan", "--fabric", "workers=2"],
    ] {
        let out = experiments(&bad);
        assert!(
            !out.status.success(),
            "experiments {bad:?} must be refused, but succeeded"
        );
    }
}
