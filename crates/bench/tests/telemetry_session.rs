//! The bench harness's telemetry session, end to end: installing the
//! process-global sink makes `sweep_worst` observable — sweeps counted,
//! plan-cache hit rate visible, batch classification recorded — while
//! the measured statistics stay exactly what an unobserved sweep
//! produces (the runner-level byte-identity tests pin that; here we
//! pin the *session* wiring the experiments binary relies on).
//!
//! Lives in its own integration-test binary on purpose: the session is
//! a process-global `OnceLock`, and installing it must not leak into
//! the crate's other test processes.

use rendezvous_bench::{common, engine, telemetry};
use rendezvous_core::{Cheap, LabelSpace, RendezvousAlgorithm};
use rendezvous_runner::Runner;
use std::sync::Arc;

#[test]
fn installed_session_observes_sweep_worst() {
    let metrics = telemetry::install();
    assert!(telemetry::current().is_some(), "install is sticky");

    let (g, ex) = common::ring_setup(6);
    let alg = Cheap::new(g, ex, LabelSpace::new(4).unwrap());
    let runner = Runner::with_threads(2).with_metrics(Arc::clone(&metrics));

    // One stepped sweep, then the same grid batched: both engines feed
    // the same session, and the stats they return must agree.
    let stepped = common::sweep_worst(
        &alg,
        &common::all_label_pairs(4),
        &common::standard_delays(5),
        4 * alg.time_bound(),
        &runner,
    );
    engine::set_engine(engine::Engine::Batched);
    let batched = common::sweep_worst(
        &alg,
        &common::all_label_pairs(4),
        &common::standard_delays(5),
        4 * alg.time_bound(),
        &runner,
    );
    assert_eq!(stepped.max_time, batched.max_time);
    assert_eq!(stepped.max_cost, batched.max_cost);

    let snap = metrics.snapshot();
    // Both sweeps executed here (no sharding session): counted.
    assert_eq!(snap.process.get("sweeps"), Some(&2));
    let executed = snap.counters["scenarios_executed"];
    assert_eq!(executed, u64::try_from(2 * stepped.executed).unwrap());
    // The acceptance counters: a nonzero plan-cache hit rate (labels
    // repeat across start pairs and delays) and a nonzero batched
    // classification from the second sweep.
    assert!(snap.process["plan_cache_hits"] > 0, "{snap:?}");
    assert!(snap.process["plan_cache_misses"] > 0, "{snap:?}");
    assert!(snap.counters["scenarios_batched"] > 0, "{snap:?}");
    assert!(snap.process["batch_groups"] > 0, "{snap:?}");
    // Live progress advanced in lockstep with execution.
    let counts = metrics.progress().counts();
    assert_eq!(counts.scenarios_done, executed);
    assert_eq!(counts.scenarios_done, counts.scenarios_total);
}
