//! The unified shard ledger, end-to-end in one process: a sweep sequence
//! mixing all three workload shapes — a pair grid, a gathering fleet
//! grid, and a topology sweep — emitted as one [`LedgerRecord`] stream
//! per shard, merged, and replayed. For every m ∈ {2, 3, 7} the replayed
//! reports must equal the direct run **byte for byte** as JSON: the
//! single-cursor ledger has to keep grid and topo records in call order,
//! or the x1–x11 `--shard`/`--merge-shards` pipeline would come apart.
//!
//! Replay diagnostics live here too: they install the process-global
//! sharding session, so every test in this binary serializes on one
//! lock instead of racing the session.

use rendezvous_bench::common::sweep_recorded;
use rendezvous_bench::sharding::{self, ShardEmission};
use rendezvous_core::{Cheap, Fast, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::{spec_explorer, OrientedRingExplorer};
use rendezvous_graph::{generators, GraphSpec, RingSpec, SeededSpec};
use rendezvous_runner::{
    AlgorithmExecutor, Bounded, Bounds, FleetRule, GatheringExecutor, Grid, PieceExecutor, Runner,
    RunnerError, ScenarioOutcome, SweepReport, TopoGrid, WorkPiece, WorkloadKind,
};
use std::sync::{Arc, Mutex};

/// All tests in this binary mutate the process-global sharding session;
/// they serialize on this lock (a poisoned lock just means an earlier
/// test already failed, so keep going with its guard).
static SESSION_TESTS: Mutex<()> = Mutex::new(());

/// Minimal topology piece executor (the x10 shape): build `Cheap` on the
/// piece's cached graph, report its paper bounds.
struct CheapTopo {
    l: u64,
}

impl PieceExecutor for CheapTopo {
    fn run_piece(
        &self,
        runner: &Runner,
        piece: &WorkPiece<'_>,
    ) -> Result<(Vec<ScenarioOutcome>, Option<Bounds>), RunnerError> {
        let entry = piece.entry.expect("topology pieces carry their entry");
        let explorer = spec_explorer(&entry.spec, entry.graph.clone())
            .map_err(|e| RunnerError::new(e.to_string()))?;
        let alg = Cheap::new(
            entry.graph.clone(),
            explorer,
            LabelSpace::new(self.l).expect("l >= 2"),
        );
        let bounds = Bounds {
            time: rendezvous_core::RendezvousAlgorithm::time_bound(&alg),
            cost: rendezvous_core::RendezvousAlgorithm::cost_bound(&alg),
        };
        let outcomes = runner.outcomes(&AlgorithmExecutor::new(&alg), &piece.scenarios)?;
        Ok((outcomes, Some(bounds)))
    }
}

/// One deterministic sweep sequence through the recorded path: pair grid,
/// fleet grid, topology grid — every workload shape the experiments run,
/// in one emission stream.
fn run_sequence(runner: &Runner) -> Vec<SweepReport> {
    let mut reports = Vec::new();

    // 1. A pair sweep with sweep-level bounds (the x1–x8 shape).
    let g = Arc::new(generators::oriented_ring(6).unwrap());
    let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let cheap = Cheap::new(g.clone(), ex.clone(), LabelSpace::new(4).unwrap());
    let bounds = Some(Bounds {
        time: cheap.time_bound(),
        cost: cheap.cost_bound(),
    });
    let pair_grid = Grid::new(4 * cheap.time_bound())
        .label_pairs_both_orders(&[(1, 4), (2, 3)])
        .delays(&[0, 2])
        .all_start_pairs(&g);
    let executor = AlgorithmExecutor::new(&cheap);
    reports.push(sweep_recorded(
        "ledger pair",
        &pair_grid,
        &Bounded::new(&executor, bounds),
        runner,
    ));

    // 2. A gathering fleet sweep with per-scenario bounds (the x9 shape).
    let g8 = Arc::new(generators::oriented_ring(8).unwrap());
    let ex8 = Arc::new(OrientedRingExplorer::new(g8.clone()).unwrap());
    let fast: Arc<dyn RendezvousAlgorithm> =
        Arc::new(Fast::new(g8.clone(), ex8, LabelSpace::new(8).unwrap()));
    let rule = FleetRule::spread(&g8, 8);
    let horizon = 4 * 2 * (fast.time_bound() + rule.max_delay());
    let fleet_grid = Grid::new(horizon)
        .fleet_sizes(&[2, 3])
        .fleet_rule(rule)
        .fleet_rotations(&[0, 1])
        .delays(&[0, 5]);
    reports.push(sweep_recorded(
        "ledger fleet",
        &fleet_grid,
        &GatheringExecutor::new(fast),
        runner,
    ));

    // 3. A topology sweep (the x10 shape), small but multi-family.
    let specs = vec![
        GraphSpec::Ring(RingSpec { n: 5 }),
        GraphSpec::ScrambledRing(SeededSpec { n: 5, seed: 3 }),
        GraphSpec::Tree(SeededSpec { n: 6, seed: 4 }),
        GraphSpec::Ring(RingSpec { n: 6 }),
    ];
    let topo = TopoGrid::build(specs, |_, g| {
        Grid::new(400)
            .label_pairs_both_orders(&[(1, 3)])
            .delays(&[0, 2])
            .all_start_pairs(g)
            .sample_cap(9)
    })
    .expect("specs build");
    reports.push(sweep_recorded(
        "ledger topo",
        &topo,
        &CheapTopo { l: 3 },
        runner,
    ));

    reports
}

fn to_json(reports: &[SweepReport]) -> Vec<String> {
    reports
        .iter()
        .map(|r| serde_json::to_string(r).expect("serializable report"))
        .collect()
}

#[test]
fn mixed_ledger_shard_merge_replays_byte_identically_for_m_2_3_7() {
    let _serial = SESSION_TESTS.lock().unwrap_or_else(|e| e.into_inner());
    let runner = Runner::sequential();
    // Direct run — no session.
    let direct = run_sequence(&runner);
    let direct_json = to_json(&direct);
    assert!(direct.iter().all(SweepReport::clean));

    for m in [2usize, 3, 7] {
        // Shard pass: one emission per shard, each a single mixed
        // record stream, crossing the "process boundary" as JSON.
        let emissions: Vec<ShardEmission> = (0..m)
            .map(|i| {
                sharding::begin_shard(i, m);
                let partials = run_sequence(&runner);
                let emission = sharding::finish_shard();
                assert_eq!(partials.len(), 3);
                assert_eq!(emission.records.len(), 3, "one record per sweep");
                assert_eq!(emission.records[0].kind(), WorkloadKind::Grid);
                assert_eq!(emission.records[1].kind(), WorkloadKind::Grid);
                assert_eq!(emission.records[2].kind(), WorkloadKind::Topo);
                let json = serde_json::to_string(&emission).expect("serializable");
                serde_json::from_str(&json).expect("round trip")
            })
            .collect();
        let names: Vec<String> = (0..m).map(|i| format!("shard{i}.json")).collect();
        let merged = sharding::merge_emissions(emissions, &names).expect("consistent shards");

        // The merged records alone must already equal the direct folds.
        let merged_json: Vec<String> = merged
            .records
            .iter()
            .map(|r| serde_json::to_string(r.report()).expect("serializable"))
            .collect();
        assert_eq!(merged_json, direct_json, "merged records differ (m = {m})");

        // Replay pass: the sequence consumes the merged ledger instead of
        // executing, and must reproduce the direct reports byte for byte.
        sharding::begin_replay(merged.records, merged.source);
        let replayed = run_sequence(&runner);
        sharding::finish_replay();
        assert_eq!(
            to_json(&replayed),
            direct_json,
            "replayed reports differ (m = {m})"
        );
    }
}

/// The satellite diagnostics: ledger exhaustion and record/sweep kind
/// mismatches must name the sweep's position in the sequence, the
/// expected versus found record kind, and the ledger's source — through
/// the real `sweep_recorded` path, not a fabricated plan.
#[test]
fn replay_diagnostics_name_position_kind_and_source() {
    let _serial = SESSION_TESTS.lock().unwrap_or_else(|e| e.into_inner());
    let runner = Runner::sequential();
    // A genuine single-shard emission of the mixed sequence: one Grid,
    // one Grid (fleet), one Topo record, fingerprints intact.
    sharding::begin_shard(0, 1);
    let _ = run_sequence(&runner);
    let records = sharding::finish_shard().records;
    assert_eq!(records.len(), 3);

    fn caught(run: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let err = std::panic::catch_unwind(run).expect_err("diagnostic must panic");
        // A caught diagnostic leaves the session installed; retire it so
        // the next scenario starts clean.
        sharding::reset_session();
        err.downcast_ref::<String>()
            .cloned()
            .expect("diagnostics panic with a formatted message")
    }

    // Exhaustion: the merged ledger holds only the first record, but the
    // sequence asks for three sweeps.
    sharding::begin_replay(vec![records[0].clone()], "a.json, b.json".into());
    let msg = caught(std::panic::AssertUnwindSafe(|| {
        let _ = run_sequence(&runner);
    }));
    assert!(
        msg.contains("sweep #1") && msg.contains("holds only 1") && msg.contains("a.json, b.json"),
        "exhaustion must name the position, ledger length and source: {msg}"
    );

    // Kind mismatch: the first sweep of the sequence is a grid sweep,
    // but the ledger leads with the topo record.
    sharding::begin_replay(vec![records[2].clone()], "c.json".into());
    let msg = caught(std::panic::AssertUnwindSafe(|| {
        let _ = run_sequence(&runner);
    }));
    assert!(
        msg.contains("sweep #0")
            && msg.contains("expected a grid sweep")
            && msg.contains("recorded a topo sweep")
            && msg.contains("c.json"),
        "mismatch must name position, both kinds and the source: {msg}"
    );
}
