//! The sweep query service, end to end through the real binary: a
//! served report must be byte-identical to a `query --direct` local
//! run, a repeat query must be a cache hit, and damaged or mismatched
//! store entries must come back as *typed refusals* (exit 3), never as
//! wrong bytes.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const SPEC: &str = r#"{"ErdosRenyi":{"n":8,"edge_permille":400,"seed":5}}"#;

fn experiments(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("experiments binary runs")
}

fn stdout_of(args: &[&str]) -> Vec<u8> {
    let out = experiments(args);
    assert!(
        out.status.success(),
        "experiments {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "rendezvous-serve-e2e-{name}-{}",
        std::process::id()
    ))
}

/// A running `experiments serve` child, killed on drop so a failing
/// assertion never leaks the process.
struct Server {
    child: Child,
    addr_file: PathBuf,
}

impl Server {
    fn start(store: &std::path::Path, addr_file: PathBuf) -> Server {
        let _ = std::fs::remove_file(&addr_file);
        let child = Command::new(env!("CARGO_BIN_EXE_experiments"))
            .args([
                "serve",
                "--store",
                store.to_str().unwrap(),
                "--addr-file",
                addr_file.to_str().unwrap(),
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("serve spawns");
        Server { child, addr_file }
    }

    /// Polls the address file the server publishes atomically. Bounded
    /// by attempt count (~30 s), not a clock — the determinism linter
    /// keeps `Instant` out of non-bench code, and counting suffices
    /// for a startup race.
    fn wait_ready(&self) -> String {
        for _ in 0..1500 {
            if let Ok(addr) = std::fs::read_to_string(&self.addr_file) {
                return addr.trim().to_string();
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("server never published its address");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.addr_file);
    }
}

#[test]
fn served_reports_match_direct_runs_byte_for_byte() {
    let dir = scratch("roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut server = Server::start(&dir, scratch("roundtrip-addr"));
    let addr = server.wait_ready();

    let grid: Vec<&str> = vec![
        "query", "--addr", &addr, "--grid", "cheap", "--spec", SPEC, "--l", "2", "--cap", "2",
    ];

    // First query computes, second is served from the store; both must
    // print the same bytes as a fully local computation.
    let first = experiments(&grid);
    assert!(
        first.status.success(),
        "first query failed:\n{}",
        String::from_utf8_lossy(&first.stderr)
    );
    assert!(
        String::from_utf8_lossy(&first.stderr).contains("query: computed"),
        "a cold query computes"
    );
    let second = experiments(&grid);
    assert!(second.status.success());
    assert!(
        String::from_utf8_lossy(&second.stderr).contains("query: cached"),
        "a repeat query is a cache hit: {}",
        String::from_utf8_lossy(&second.stderr)
    );
    assert_eq!(first.stdout, second.stdout, "hit and compute must agree");

    let direct = stdout_of(&[
        "query",
        "--direct",
        "--store",
        dir.to_str().unwrap(),
        "--grid",
        "cheap",
        "--spec",
        SPEC,
        "--l",
        "2",
        "--cap",
        "2",
    ]);
    assert_eq!(
        first.stdout, direct,
        "served and direct runs must be byte-identical"
    );

    // The reply's token addresses the same bytes.
    let token = String::from_utf8_lossy(&first.stderr)
        .lines()
        .find_map(|l| l.strip_prefix("query: computed ").map(str::to_string))
        .expect("the client reports the token");
    let by_token = stdout_of(&["query", "--addr", &addr, "--token", &token]);
    assert_eq!(by_token, direct, "token lookup must return the same bytes");

    // Clean shutdown: the server exits 0 on its own.
    stdout_of(&["query", "--addr", &addr, "--shutdown"]);
    let status = server.child.wait().expect("server exits");
    assert!(status.success(), "server exit after shutdown: {status}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn refusals_are_typed_and_never_wrong_bytes() {
    let dir = scratch("refuse");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let server = Server::start(&dir, scratch("refuse-addr"));
    let addr = server.wait_ready();

    let refused = |args: &[&str], needle: &str| {
        let out = experiments(args);
        assert_eq!(
            out.status.code(),
            Some(3),
            "{args:?} must exit 3:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(out.stdout.is_empty(), "a refusal must print no report");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "want {needle:?} in {stderr:?}");
    };

    refused(
        &["query", "--addr", &addr, "--token", "no-such-entry"],
        "not cached",
    );
    refused(
        &[
            "query", "--addr", &addr, "--grid", "slow", "--spec", SPEC, "--l", "2", "--cap", "2",
        ],
        "bad query",
    );
    refused(
        &[
            "query",
            "--addr",
            &addr,
            "--grid",
            "cheap",
            "--spec",
            r#"{"Ring":{"n":1}}"#,
            "--l",
            "2",
            "--cap",
            "2",
        ],
        "bad query",
    );

    // Populate one entry, then rewrite its schema header: the token
    // path must refuse with the typed mismatch, not serve the entry.
    let out = experiments(&[
        "query", "--addr", &addr, "--grid", "fast", "--spec", SPEC, "--l", "2", "--cap", "2",
    ]);
    assert!(out.status.success());
    let token = String::from_utf8_lossy(&out.stderr)
        .lines()
        .find_map(|l| l.strip_prefix("query: computed ").map(str::to_string))
        .expect("the client reports the token");
    let path = dir.join(format!("{token}.json"));
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, text.replacen("\"schema\": 1", "\"schema\": 99", 1)).unwrap();
    refused(
        &["query", "--addr", &addr, "--token", &token],
        "schema mismatch",
    );

    stdout_of(&["query", "--addr", &addr, "--shutdown"]);
    let _ = std::fs::remove_dir_all(&dir);
}
