//! Property tests for the exploration substrate: the `E`-bound contract
//! (coverage from every start within the declared bound) on randomized
//! graphs, for every explorer.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use rendezvous_explore::{
    closed_dfs_walk, dfs_walk, verify_explorer, DfsMapExplorer, EulerianExplorer, Explorer,
    OrientedRingExplorer, TrialDfsExplorer, UxsExplorer,
};
use rendezvous_graph::{analysis, generators, NodeId};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dfs_explorer_contract_on_random_graphs(n in 3usize..20, seed in 0u64..1_000, p in 0.1f64..0.9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Arc::new(generators::erdos_renyi_connected(n, p, &mut rng).unwrap());
        let ex = DfsMapExplorer::new(g.clone());
        let worst = verify_explorer(&g, &ex).expect("coverage within bound");
        prop_assert_eq!(worst, ex.bound(), "bound is sharp by construction");
        prop_assert!(ex.bound() <= 2 * n - 2);
    }

    #[test]
    fn dfs_walk_discovers_all_nodes(n in 2usize..20, seed in 0u64..1_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_tree(n, &mut rng).unwrap();
        for s in g.nodes() {
            let walk = dfs_walk(&g, s);
            let mut at = s;
            let mut seen = vec![false; n];
            seen[s.index()] = true;
            for p in walk {
                at = g.neighbor(at, p).unwrap();
                seen[at.index()] = true;
            }
            prop_assert!(seen.iter().all(|&b| b), "walk from {s} missed a node");
        }
    }

    #[test]
    fn closed_walk_is_closed_and_covers(n in 2usize..16, seed in 0u64..1_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 0.35, &mut rng).unwrap();
        for s in g.nodes() {
            let walk = closed_dfs_walk(&g, s);
            let mut at = s;
            let mut seen = vec![false; n];
            seen[s.index()] = true;
            for p in walk {
                at = g.neighbor(at, p).unwrap();
                seen[at.index()] = true;
            }
            prop_assert_eq!(at, s, "walk must return to its start");
            prop_assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn trial_dfs_contract_on_random_graphs(n in 3usize..12, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Arc::new(generators::erdos_renyi_connected(n, 0.3, &mut rng).unwrap());
        let ex = TrialDfsExplorer::new(g.clone()).unwrap();
        prop_assert!(verify_explorer(&g, &ex).is_ok());
        // measured bound never exceeds the defensive simulation budget
        prop_assert!(ex.bound() <= n * 4 * n);
    }

    #[test]
    fn eulerian_contract_on_even_graphs(w in 3usize..6, h in 3usize..6) {
        // Tori are 4-regular, hence Eulerian.
        let g = Arc::new(generators::torus(w, h).unwrap());
        let ex = EulerianExplorer::new(g.clone()).unwrap();
        prop_assert_eq!(ex.bound(), g.edge_count() - 1);
        prop_assert!(verify_explorer(&g, &ex).is_ok());
    }

    #[test]
    fn uxs_search_contract_on_scrambled_rings(n in 3usize..9, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Arc::new(generators::scrambled_ring(n, &mut rng).unwrap());
        let ex = UxsExplorer::search(g.clone(), 4_000, &mut rng).unwrap();
        prop_assert!(verify_explorer(&g, &ex).is_ok());
    }

    #[test]
    fn ring_explorer_is_optimal(n in 3usize..40) {
        let g = Arc::new(generators::oriented_ring(n).unwrap());
        let ex = OrientedRingExplorer::new(g.clone()).unwrap();
        // n - 1 is a lower bound for any exploration (must visit n nodes),
        // and the explorer achieves it from every start.
        prop_assert_eq!(verify_explorer(&g, &ex), Ok(n - 1));
    }

    #[test]
    fn dfs_bound_dominated_by_trial_dfs(n in 3usize..12, seed in 0u64..300) {
        // Knowing your start position never hurts: the marked-map DFS bound
        // is at most the unmarked trial-DFS bound.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Arc::new(generators::erdos_renyi_connected(n, 0.4, &mut rng).unwrap());
        prop_assume!(analysis::is_connected(&g));
        let dfs = DfsMapExplorer::new(g.clone());
        let trial = TrialDfsExplorer::new(g).unwrap();
        prop_assert!(dfs.bound() <= trial.bound() || trial.bound() == 0);
    }
}

#[test]
fn explorers_tolerate_begin_from_every_node() {
    let g = Arc::new(generators::grid(3, 3).unwrap());
    let ex = DfsMapExplorer::new(g.clone());
    for v in g.nodes() {
        let mut run = ex.begin(v);
        // the first move must be a valid port of the start node
        let mv = run.next_move(g.degree(v), None);
        if let Some(p) = mv {
            assert!(p.index() < g.degree(v));
        }
    }
}

#[test]
fn verify_explorer_reports_the_failing_start() {
    // A bounded walk too short for the ring fails from every start; the
    // reported witness is the first one (node 0).
    let g = generators::oriented_ring(8).unwrap();
    let short = rendezvous_explore::BoundedWalkExplorer::new(2);
    assert_eq!(verify_explorer(&g, &short), Err(NodeId::new(0)));
}
