//! Trial-DFS exploration: a port-labelled map **without** a marked start.
//!
//! §1.2: "the agent identifies on the map a DFS traversal of the graph,
//! starting from each node and returning to the same node … From its initial
//! position, the agent 'tries' each DFS one after another. In each attempt,
//! the agent aborts the exploration if a prescribed port is not available at
//! the current node, and returns to the starting node. One of the attempts
//! correctly visits all nodes … so `E` can be taken to be `n(2n − 2)`."
//!
//! The run below is genuinely adaptive: it only consults the map (all
//! candidate walks) and its own observations (degrees and entry ports), so
//! it works without knowing its start node. Aborted attempts retrace their
//! recorded entry ports to get back to the starting node.

use crate::{coverage_time, ExploreError, ExploreRun, Explorer};
use rendezvous_graph::{NodeId, Port, PortLabeledGraph};
use std::sync::Arc;

/// Computes the **closed** DFS walk from `start` (returns to `start`): every
/// DFS tree edge traversed once forward and once backward, `2(n−1)` moves
/// on an `n`-node connected graph. This is the "sequence of length `2n − 2`
/// of ports" that §1.2 prescribes for trial exploration.
///
/// # Panics
///
/// Panics if `start` is out of range.
#[must_use]
pub fn closed_dfs_walk(graph: &PortLabeledGraph, start: NodeId) -> Vec<Port> {
    assert!(graph.contains(start), "start out of range");
    let n = graph.node_count();
    let mut visited = vec![false; n];
    visited[start.index()] = true;
    let mut walk = Vec::new();
    let mut stack: Vec<(NodeId, usize, Option<Port>)> = vec![(start, 0, None)];
    while let Some(&mut (v, ref mut next, entry)) = stack.last_mut() {
        let deg = graph.degree(v);
        let mut advanced = false;
        while *next < deg {
            let p = Port::new(*next);
            *next += 1;
            let t = graph.traverse(v, p).expect("valid port");
            if !visited[t.target.index()] {
                visited[t.target.index()] = true;
                walk.push(p);
                stack.push((t.target, 0, Some(t.entry_port)));
                advanced = true;
                break;
            }
        }
        if !advanced {
            stack.pop();
            if let Some(p) = entry {
                walk.push(p);
            }
        }
    }
    walk
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Executing step `step` of candidate walk `candidate`.
    Forward { candidate: usize, step: usize },
    /// Returning to the starting node by retracing recorded entry ports.
    Retreat { candidate: usize },
    /// All candidates tried.
    Finished,
}

/// Live state of a trial-DFS exploration. Knows only the map and what it
/// has observed; never its own position.
#[derive(Debug)]
struct TrialRun {
    candidates: Arc<Vec<Vec<Port>>>,
    mode: Mode,
    /// Entry ports recorded during the current attempt, for retracing.
    breadcrumbs: Vec<Port>,
    /// Set when we asked for a move last round and owe a breadcrumb.
    expecting_entry: bool,
}

impl TrialRun {
    fn advance_candidate(&mut self, candidate: usize) -> Mode {
        if candidate + 1 < self.candidates.len() {
            Mode::Forward {
                candidate: candidate + 1,
                step: 0,
            }
        } else {
            Mode::Finished
        }
    }
}

impl ExploreRun for TrialRun {
    fn next_move(&mut self, degree: usize, entry_port: Option<Port>) -> Option<Port> {
        // Record the breadcrumb for the move we made last round.
        if self.expecting_entry {
            let p = entry_port.expect("driver must report the entry port after a move");
            if matches!(self.mode, Mode::Forward { .. }) {
                self.breadcrumbs.push(p);
            }
            self.expecting_entry = false;
        }
        loop {
            match self.mode {
                Mode::Forward { candidate, step } => {
                    let walk = &self.candidates[candidate];
                    if step >= walk.len() {
                        // Attempt complete (it may or may not have covered
                        // anything — the agent cannot tell): go home.
                        self.mode = Mode::Retreat { candidate };
                        continue;
                    }
                    let p = walk[step];
                    if p.index() >= degree {
                        // Prescribed port not available: abort, go home.
                        self.mode = Mode::Retreat { candidate };
                        continue;
                    }
                    self.mode = Mode::Forward {
                        candidate,
                        step: step + 1,
                    };
                    self.expecting_entry = true;
                    return Some(p);
                }
                Mode::Retreat { candidate } => {
                    if let Some(p) = self.breadcrumbs.pop() {
                        self.expecting_entry = true;
                        return Some(p);
                    }
                    self.mode = self.advance_candidate(candidate);
                }
                Mode::Finished => return None,
            }
        }
    }
}

/// Map-without-marked-start exploration by trying every candidate DFS.
///
/// The bound `E` is measured exactly by simulating the procedure from every
/// start node at construction time (the agent, holding the same map, could
/// compute the same number); it never exceeds twice the total walk length
/// `n · (2n − 2)` and in practice is far below the paper's safe upper bound.
///
/// # Examples
///
/// ```
/// use rendezvous_explore::{Explorer, TrialDfsExplorer, verify_explorer};
/// use rendezvous_graph::generators;
/// use std::sync::Arc;
///
/// let g = Arc::new(generators::grid(3, 3).unwrap());
/// let ex = TrialDfsExplorer::new(g.clone()).unwrap();
/// assert!(verify_explorer(&g, &ex).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct TrialDfsExplorer {
    candidates: Arc<Vec<Vec<Port>>>,
    bound: usize,
}

impl TrialDfsExplorer {
    /// Builds the candidate walks and measures the exact bound.
    ///
    /// # Errors
    ///
    /// [`ExploreError::UnsuitableGraph`] if the graph is disconnected, or
    /// [`ExploreError::CoverageFailure`] if the procedure unexpectedly fails
    /// to cover the graph from some start (cannot happen for connected
    /// graphs; kept as a defensive check of the §1.2 argument).
    pub fn new(graph: Arc<PortLabeledGraph>) -> Result<Self, ExploreError> {
        if !rendezvous_graph::analysis::is_connected(&graph) {
            return Err(ExploreError::UnsuitableGraph {
                explorer: "TrialDfsExplorer",
                reason: "graph is disconnected".into(),
            });
        }
        let candidates: Vec<Vec<Port>> =
            graph.nodes().map(|s| closed_dfs_walk(&graph, s)).collect();
        let mut ex = TrialDfsExplorer {
            candidates: Arc::new(candidates),
            bound: usize::MAX,
        };
        // Measure the exact worst-case coverage time by simulation.
        let generous = graph.node_count() * (4 * graph.node_count()) + 1;
        let mut worst = 0;
        for start in graph.nodes() {
            let mut run = ex.begin(start);
            match coverage_time(&graph, run.as_mut(), start, generous) {
                Some(t) => worst = worst.max(t),
                None => {
                    return Err(ExploreError::CoverageFailure {
                        explorer: "TrialDfsExplorer",
                        start,
                    })
                }
            }
        }
        ex.bound = worst;
        Ok(ex)
    }

    /// The paper's safe closed-form bound `n(2n − 2)` for an `n`-node graph.
    #[must_use]
    pub fn paper_bound(n: usize) -> usize {
        n * (2 * n).saturating_sub(2)
    }
}

impl Explorer for TrialDfsExplorer {
    fn bound(&self) -> usize {
        self.bound
    }

    fn begin(&self, _start: NodeId) -> Box<dyn ExploreRun> {
        Box::new(TrialRun {
            candidates: Arc::clone(&self.candidates),
            mode: Mode::Forward {
                candidate: 0,
                step: 0,
            },
            breadcrumbs: Vec::new(),
            expecting_entry: false,
        })
    }

    fn name(&self) -> &'static str {
        "trial-dfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_explorer;
    use rendezvous_graph::generators;

    #[test]
    fn closed_walk_has_length_2n_minus_2_on_trees() {
        let g = generators::balanced_binary_tree(3).unwrap();
        let n = g.node_count();
        for s in g.nodes() {
            assert_eq!(closed_dfs_walk(&g, s).len(), 2 * (n - 1));
        }
    }

    #[test]
    fn closed_walk_returns_to_start() {
        let g = generators::grid(4, 3).unwrap();
        for s in g.nodes() {
            let mut at = s;
            for p in closed_dfs_walk(&g, s) {
                at = g.neighbor(at, p).unwrap();
            }
            assert_eq!(at, s);
        }
    }

    #[test]
    fn trial_dfs_covers_from_every_start() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        for g in [
            generators::oriented_ring(7).unwrap(),
            generators::star(5).unwrap(),
            generators::grid(3, 4).unwrap(),
            generators::random_tree(12, &mut rng).unwrap(),
            generators::erdos_renyi_connected(10, 0.3, &mut rng).unwrap(),
        ] {
            let g = Arc::new(g);
            let ex = TrialDfsExplorer::new(g.clone()).unwrap();
            assert!(verify_explorer(&g, &ex).is_ok());
        }
    }

    #[test]
    fn measured_bound_is_meaningfully_below_worst_case_budget() {
        let g = Arc::new(generators::grid(3, 3).unwrap());
        let n = g.node_count();
        let ex = TrialDfsExplorer::new(g).unwrap();
        // The measured bound is positive and below the defensive budget.
        assert!(ex.bound() > 0);
        assert!(ex.bound() < n * 4 * n + 1);
    }

    #[test]
    fn paper_bound_formula() {
        assert_eq!(TrialDfsExplorer::paper_bound(5), 5 * 8);
        assert_eq!(TrialDfsExplorer::paper_bound(1), 0);
    }

    #[test]
    fn rejects_disconnected_graphs() {
        let g = rendezvous_graph::GraphBuilder::new(4).build().unwrap();
        assert!(TrialDfsExplorer::new(Arc::new(g)).is_err());
    }

    #[test]
    fn trial_dfs_on_asymmetric_graph_uses_aborts() {
        // A star: candidate walks from leaves prescribe high ports at the
        // center... actually from a leaf the first move uses port 0, then
        // the centre's walk needs many ports; trying a centre-walk from a
        // leaf aborts immediately at the second step (leaf has degree 1).
        let g = Arc::new(generators::star(6).unwrap());
        let ex = TrialDfsExplorer::new(g.clone()).unwrap();
        assert!(verify_explorer(&g, &ex).is_ok());
        // bound must exceed a single walk: aborted attempts cost rounds.
        assert!(ex.bound() > 2 * (g.node_count() - 1));
    }
}
