//! Exploration procedures with known worst-case bounds `E` — the substrate
//! on which every rendezvous algorithm of Miller & Pelc (PODC 2014) is
//! built.
//!
//! The paper's algorithms never look at the graph directly; they interleave
//! executions of a procedure `EXPLORE` (which visits all nodes within `E`
//! rounds from any start) with waiting periods whose lengths encode the
//! agent's label. This crate provides `EXPLORE` in all knowledge scenarios
//! discussed in §1.2:
//!
//! | scenario | explorer | bound `E` |
//! |---|---|---|
//! | map + marked start | [`DfsMapExplorer`] | ≤ `2n − 3` (exact, per graph) |
//! | oriented ring of known size | [`OrientedRingExplorer`] | `n − 1` |
//! | Hamiltonian certificate | [`HamiltonianExplorer`] | `n − 1` |
//! | Eulerian certificate | [`EulerianExplorer`] | `e − 1` |
//! | map without marked start | [`TrialDfsExplorer`] | ≤ `n(2n − 2)` (exact, measured) |
//! | only a size bound (UXS) | [`UxsExplorer`] | sequence length (verified) |
//! | no knowledge at all | [`ExplorationFamily`] (doubling levels) | `E_i` per level |
//!
//! # Examples
//!
//! ```
//! use rendezvous_explore::{DfsMapExplorer, Explorer, verify_explorer};
//! use rendezvous_graph::generators;
//! use std::sync::Arc;
//!
//! let g = Arc::new(generators::grid(3, 4).unwrap());
//! let explore = DfsMapExplorer::new(g.clone());
//! // The E-bound contract: coverage from every start within `bound()`.
//! let worst = verify_explorer(&g, &explore).expect("contract holds");
//! assert_eq!(worst, explore.bound());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod certificate;
mod dfs;
mod error;
mod explorer;
mod family;
mod recipe;
mod ring;
mod trial_dfs;
mod uxs;

pub use certificate::{EulerianExplorer, HamiltonianExplorer};
pub use dfs::{dfs_walk, DfsMapExplorer};
pub use error::ExploreError;
pub use explorer::{coverage_time, verify_explorer, ExploreRun, Explorer, PlannedRun};
pub use family::{ExplorationFamily, RingDoublingFamily};
pub use recipe::spec_explorer;
pub use ring::{BoundedWalkExplorer, OrientedRingExplorer};
pub use trial_dfs::{closed_dfs_walk, TrialDfsExplorer};
pub use uxs::{UxsExplorer, UxsSequence};
