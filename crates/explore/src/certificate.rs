//! Exploration driven by structural certificates (§1.2): a Hamiltonian
//! cycle gives `E = n − 1`; an Euler circuit gives `E = e − 1`.

use crate::{ExploreError, ExploreRun, Explorer, PlannedRun};
use rendezvous_graph::{EulerCircuit, HamiltonianCycle, NodeId, Port, PortLabeledGraph};
use std::sync::Arc;

/// Exploration along a known Hamiltonian cycle: from any start, follow the
/// cycle for `n − 1` hops. `E = n − 1` is optimal for Hamiltonian graphs.
///
/// # Examples
///
/// ```
/// use rendezvous_explore::{Explorer, HamiltonianExplorer, verify_explorer};
/// use rendezvous_graph::{generators, HamiltonianCycle};
/// use std::sync::Arc;
///
/// let g = Arc::new(generators::hypercube(3).unwrap());
/// let cycle = HamiltonianCycle::known_hypercube(&g).unwrap();
/// let ex = HamiltonianExplorer::new(g.clone(), cycle).unwrap();
/// assert_eq!(ex.bound(), 7);
/// assert!(verify_explorer(&g, &ex).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct HamiltonianExplorer {
    /// walks[v] = the n−1 exit ports following the cycle starting from v.
    walks: Vec<Vec<Port>>,
    bound: usize,
}

impl HamiltonianExplorer {
    /// Precomputes, for every start node, the port walk following `cycle`.
    ///
    /// # Errors
    ///
    /// [`ExploreError::UnsuitableGraph`] if the cycle does not match the
    /// graph (wrong length or non-adjacent consecutive nodes — normally
    /// prevented by [`HamiltonianCycle`]'s own validation).
    pub fn new(
        graph: Arc<PortLabeledGraph>,
        cycle: HamiltonianCycle,
    ) -> Result<Self, ExploreError> {
        let n = graph.node_count();
        if cycle.len() != n {
            return Err(ExploreError::UnsuitableGraph {
                explorer: "HamiltonianExplorer",
                reason: format!("cycle length {} != node count {n}", cycle.len()),
            });
        }
        let order = cycle.order();
        let mut walks = vec![Vec::new(); n];
        for pos in 0..n {
            let mut walk = Vec::with_capacity(n - 1);
            for k in 0..n.saturating_sub(1) {
                let u = order[(pos + k) % n];
                let v = order[(pos + k + 1) % n];
                let p = graph
                    .port_to(u, v)
                    .ok_or_else(|| ExploreError::UnsuitableGraph {
                        explorer: "HamiltonianExplorer",
                        reason: format!("cycle nodes {u} and {v} not adjacent"),
                    })?;
                walk.push(p);
            }
            walks[order[pos].index()] = walk;
        }
        Ok(HamiltonianExplorer {
            walks,
            bound: n.saturating_sub(1),
        })
    }
}

impl Explorer for HamiltonianExplorer {
    fn bound(&self) -> usize {
        self.bound
    }

    fn begin(&self, start: NodeId) -> Box<dyn ExploreRun> {
        Box::new(PlannedRun::new(self.walks[start.index()].clone()))
    }

    fn name(&self) -> &'static str {
        "hamiltonian"
    }
}

/// Exploration along a known Euler circuit: from any start, follow the
/// circuit (rotated to begin there) for `e − 1` hops. `E = e − 1` (§1.2).
///
/// # Examples
///
/// ```
/// use rendezvous_explore::{EulerianExplorer, Explorer, verify_explorer};
/// use rendezvous_graph::generators;
/// use std::sync::Arc;
///
/// let g = Arc::new(generators::torus(3, 3).unwrap()); // 4-regular: eulerian
/// let ex = EulerianExplorer::new(g.clone()).unwrap();
/// assert_eq!(ex.bound(), g.edge_count() - 1);
/// assert!(verify_explorer(&g, &ex).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct EulerianExplorer {
    /// walks[v] = the rotated circuit's first e−1 exit ports from v.
    walks: Vec<Vec<Port>>,
    bound: usize,
}

impl EulerianExplorer {
    /// Finds an Euler circuit and precomputes the rotated walk for every
    /// start node.
    ///
    /// # Errors
    ///
    /// Propagates [`rendezvous_graph::GraphError`] (wrapped) if the graph
    /// has odd degrees or is disconnected.
    pub fn new(graph: Arc<PortLabeledGraph>) -> Result<Self, ExploreError> {
        let n = graph.node_count();
        let e = graph.edge_count();
        let circuit = EulerCircuit::find(&graph, NodeId::new(0))?;
        let nodes = circuit.node_sequence(&graph); // length e + 1, first == last
        let exits = circuit.exits();
        let mut walks: Vec<Option<Vec<Port>>> = vec![None; n];
        let take = e.saturating_sub(1);
        for pos in 0..e {
            let v = nodes[pos];
            if walks[v.index()].is_some() {
                continue; // first occurrence gives the canonical rotation
            }
            let mut walk = Vec::with_capacity(take);
            for k in 0..take {
                walk.push(exits[(pos + k) % e]);
            }
            walks[v.index()] = Some(walk);
        }
        let walks = walks
            .into_iter()
            .map(|w| w.expect("euler circuit visits every node"))
            .collect();
        Ok(EulerianExplorer { walks, bound: take })
    }
}

impl Explorer for EulerianExplorer {
    fn bound(&self) -> usize {
        self.bound
    }

    fn begin(&self, start: NodeId) -> Box<dyn ExploreRun> {
        Box::new(PlannedRun::new(self.walks[start.index()].clone()))
    }

    fn name(&self) -> &'static str {
        "eulerian"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_explorer;
    use rendezvous_graph::generators;

    #[test]
    fn hamiltonian_explorer_on_known_families() {
        let cases: Vec<(Arc<PortLabeledGraph>, HamiltonianCycle)> = vec![
            {
                let g = Arc::new(generators::oriented_ring(9).unwrap());
                let c = HamiltonianCycle::known_ring(&g).unwrap();
                (g, c)
            },
            {
                let g = Arc::new(generators::complete(6).unwrap());
                let c = HamiltonianCycle::known_complete(&g).unwrap();
                (g, c)
            },
            {
                let g = Arc::new(generators::hypercube(4).unwrap());
                let c = HamiltonianCycle::known_hypercube(&g).unwrap();
                (g, c)
            },
            {
                let g = Arc::new(generators::torus(4, 5).unwrap());
                let c = HamiltonianCycle::known_torus(&g, 4, 5).unwrap();
                (g, c)
            },
        ];
        for (g, c) in cases {
            let ex = HamiltonianExplorer::new(g.clone(), c).unwrap();
            assert_eq!(ex.bound(), g.node_count() - 1);
            assert!(verify_explorer(&g, &ex).is_ok());
        }
    }

    #[test]
    fn eulerian_explorer_on_eulerian_graphs() {
        for g in [
            generators::oriented_ring(7).unwrap(),
            generators::torus(3, 4).unwrap(),
            generators::complete(5).unwrap(),  // 4-regular
            generators::hypercube(4).unwrap(), // 4-regular
        ] {
            let g = Arc::new(g);
            let ex = EulerianExplorer::new(g.clone()).unwrap();
            assert_eq!(ex.bound(), g.edge_count() - 1);
            assert!(verify_explorer(&g, &ex).is_ok());
        }
    }

    #[test]
    fn eulerian_rejects_odd_degree_graphs() {
        let g = Arc::new(generators::star(3).unwrap());
        assert!(EulerianExplorer::new(g).is_err());
    }

    #[test]
    fn euler_bound_on_rings_is_optimal() {
        // On a ring e = n, so E_euler = n - 1: the optimal exploration time
        // (on rings DFS happens to achieve the same, without backtracking).
        let g = Arc::new(generators::oriented_ring(10).unwrap());
        let euler = EulerianExplorer::new(g.clone()).unwrap();
        let dfs = crate::DfsMapExplorer::new(g.clone());
        assert_eq!(euler.bound(), g.node_count() - 1);
        assert!(euler.bound() <= dfs.bound());
    }
}
