//! The exploration interface: procedures with a known worst-case bound `E`.

use rendezvous_graph::{NodeId, Port, PortLabeledGraph};
use std::fmt;

/// One live execution of an exploration procedure.
///
/// The driver (the simulator, or the schedule layer of the rendezvous
/// algorithms) calls [`ExploreRun::next_move`] once per round, feeding the
/// agent's current observation, and applies the returned move. Runs may be
/// adaptive: trial-DFS and UXS explorations react to what they observe.
pub trait ExploreRun {
    /// Decides the move for the current round.
    ///
    /// * `degree` — degree of the node the agent currently occupies;
    /// * `entry_port` — the port through which the agent entered this node
    ///   on the *previous* round, or `None` if it did not move then (first
    ///   round of the run, or it stayed).
    ///
    /// Returns `Some(port)` to traverse that port, `None` to stay put. Once
    /// a run starts returning `None` because it has finished its walk, the
    /// driver keeps the agent idle until the full `E` rounds have elapsed
    /// ("if the exploration is completed earlier, the agent waits", §2).
    fn next_move(&mut self, degree: usize, entry_port: Option<Port>) -> Option<Port>;
}

/// An exploration procedure `EXPLORE` together with its bound `E`.
///
/// The contract (paper §1.2): *for every starting node*, executing the
/// procedure visits all nodes of the graph within [`Explorer::bound`]
/// rounds. The rendezvous algorithms of §2 are all built from repetitions
/// of `EXPLORE` separated by waiting periods, so this trait — procedure plus
/// known bound — is exactly the interface they need.
///
/// `begin(start)` receives the agent's actual start node. This models the
/// "port-labelled map with a marked starting position" scenario; explorers
/// for weaker scenarios (trial-DFS, UXS) simply ignore the argument, and
/// their documentation says so.
pub trait Explorer: fmt::Debug + Send + Sync {
    /// The bound `E`: from any start node, all nodes are visited within
    /// `bound()` rounds.
    fn bound(&self) -> usize;

    /// Starts an exploration from `start`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `start` is not a node of the underlying
    /// graph; validating starts is the driver's job.
    fn begin(&self, start: NodeId) -> Box<dyn ExploreRun>;

    /// Short human-readable name used in experiment output.
    fn name(&self) -> &'static str;
}

/// A non-adaptive run replaying a precomputed port walk, then idling.
#[derive(Debug, Clone)]
pub struct PlannedRun {
    walk: Vec<Port>,
    next: usize,
}

impl PlannedRun {
    /// Wraps a precomputed walk.
    #[must_use]
    pub fn new(walk: Vec<Port>) -> Self {
        PlannedRun { walk, next: 0 }
    }
}

impl ExploreRun for PlannedRun {
    fn next_move(&mut self, _degree: usize, _entry_port: Option<Port>) -> Option<Port> {
        let mv = self.walk.get(self.next).copied();
        if mv.is_some() {
            self.next += 1;
        }
        mv
    }
}

/// Drives `run` on `graph` from `start` for at most `max_rounds` rounds and
/// returns the number of rounds after which every node had been visited, or
/// `None` if coverage was not reached.
///
/// This is the verification oracle used by explorer constructors and tests
/// to check the `E`-bound contract.
///
/// # Panics
///
/// Panics if `start` is out of range or the run emits an invalid port.
#[must_use]
pub fn coverage_time(
    graph: &PortLabeledGraph,
    run: &mut dyn ExploreRun,
    start: NodeId,
    max_rounds: usize,
) -> Option<usize> {
    assert!(graph.contains(start), "start out of range");
    let mut visited = vec![false; graph.node_count()];
    visited[start.index()] = true;
    let mut remaining = graph.node_count() - 1;
    if remaining == 0 {
        return Some(0);
    }
    let mut at = start;
    let mut entry: Option<Port> = None;
    for round in 1..=max_rounds {
        match run.next_move(graph.degree(at), entry) {
            Some(p) => {
                let t = graph
                    .traverse(at, p)
                    .unwrap_or_else(|e| panic!("explorer emitted invalid move: {e}"));
                at = t.target;
                entry = Some(t.entry_port);
                if !visited[at.index()] {
                    visited[at.index()] = true;
                    remaining -= 1;
                    if remaining == 0 {
                        return Some(round);
                    }
                }
            }
            None => entry = None,
        }
    }
    None
}

/// Checks the full [`Explorer`] contract: from **every** start node, the
/// procedure covers the graph within its declared bound. Returns the worst
/// observed coverage time.
///
/// # Errors
///
/// Returns `Err(start)` for the first start node from which coverage was not
/// achieved within `explorer.bound()` rounds.
pub fn verify_explorer(graph: &PortLabeledGraph, explorer: &dyn Explorer) -> Result<usize, NodeId> {
    let mut worst = 0;
    for start in graph.nodes() {
        let mut run = explorer.begin(start);
        match coverage_time(graph, run.as_mut(), start, explorer.bound()) {
            Some(t) => worst = worst.max(t),
            None => return Err(start),
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_graph::generators;

    #[test]
    fn planned_run_replays_then_idles() {
        let mut r = PlannedRun::new(vec![Port::new(0), Port::new(1)]);
        assert_eq!(r.next_move(2, None), Some(Port::new(0)));
        assert_eq!(r.next_move(2, Some(Port::new(1))), Some(Port::new(1)));
        assert_eq!(r.next_move(2, None), None);
        assert_eq!(r.next_move(2, None), None);
    }

    #[test]
    fn coverage_time_on_ring_walk() {
        let g = generators::oriented_ring(5).unwrap();
        let mut run = PlannedRun::new(vec![Port::new(0); 4]);
        let t = coverage_time(&g, &mut run, NodeId::new(2), 10);
        assert_eq!(t, Some(4));
    }

    #[test]
    fn coverage_fails_when_walk_too_short() {
        let g = generators::oriented_ring(6).unwrap();
        let mut run = PlannedRun::new(vec![Port::new(0); 3]);
        assert_eq!(coverage_time(&g, &mut run, NodeId::new(0), 100), None);
    }

    #[test]
    fn single_node_graph_covered_instantly() {
        let g = generators::path(1).unwrap();
        let mut run = PlannedRun::new(vec![]);
        assert_eq!(coverage_time(&g, &mut run, NodeId::new(0), 5), Some(0));
    }
}
