//! Universal Exploration Sequences (UXS).
//!
//! §1.2: "If only an upper bound `m` on the size of the network is known,
//! then the best known estimate of the time of a (log-space constructible)
//! exploration is Reingold's polynomial estimate `R(m)` based on Universal
//! Exploration Sequences."
//!
//! **Substitution (documented in DESIGN.md):** Reingold's log-space
//! construction is a theoretical device far beyond laptop scale. We
//! implement the UXS *semantics* exactly — at step `i`, an agent that
//! entered its current node through port `p` leaves through port
//! `(p + a_i) mod d` — and obtain concrete sequences by randomized search
//! with exhaustive verification against explicit graph families. The
//! rendezvous algorithms only require an exploration procedure with a known
//! bound `E`, so this preserves every code path the paper exercises.

use crate::{ExploreError, ExploreRun, Explorer};
use rand::Rng;
use rendezvous_graph::{NodeId, Port, PortLabeledGraph};
use std::sync::Arc;

/// A sequence of port increments driving a UXS walk on `d`-regular graphs.
///
/// # Examples
///
/// ```
/// use rendezvous_explore::UxsSequence;
///
/// let s = UxsSequence::new(2, vec![0, 1, 0, 0, 1]);
/// assert_eq!(s.degree(), 2);
/// assert_eq!(s.len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UxsSequence {
    degree: usize,
    steps: Vec<usize>,
}

impl UxsSequence {
    /// Creates a sequence for `degree`-regular graphs. Increments are
    /// reduced modulo `degree`.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0`.
    #[must_use]
    pub fn new(degree: usize, steps: Vec<usize>) -> Self {
        assert!(degree > 0, "degree must be positive");
        let steps = steps.into_iter().map(|a| a % degree).collect();
        UxsSequence { degree, steps }
    }

    /// The regular degree `d` this sequence drives.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Length of the sequence (number of moves of the walk).
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The increments.
    #[must_use]
    pub fn steps(&self) -> &[usize] {
        &self.steps
    }

    /// Executes the walk on `graph` from `start`; returns the number of
    /// moves after which all nodes had been visited, or `None`.
    ///
    /// # Panics
    ///
    /// Panics if `graph` is not `d`-regular for this sequence's degree or
    /// `start` is out of range.
    #[must_use]
    pub fn coverage_time_from(&self, graph: &PortLabeledGraph, start: NodeId) -> Option<usize> {
        assert!(
            graph.is_regular() && graph.max_degree() == self.degree,
            "graph must be {}-regular",
            self.degree
        );
        let mut run = UxsRun {
            seq: self.clone(),
            pos: 0,
        };
        crate::coverage_time(graph, &mut run, start, self.steps.len())
    }

    /// Returns `true` if the walk covers `graph` from **every** start node.
    #[must_use]
    pub fn covers(&self, graph: &PortLabeledGraph) -> bool {
        graph
            .nodes()
            .all(|s| self.coverage_time_from(graph, s).is_some())
    }
}

#[derive(Debug)]
struct UxsRun {
    seq: UxsSequence,
    pos: usize,
}

impl ExploreRun for UxsRun {
    fn next_move(&mut self, degree: usize, entry_port: Option<Port>) -> Option<Port> {
        let a = *self.seq.steps.get(self.pos)?;
        self.pos += 1;
        let base = entry_port.map_or(0, Port::index);
        // `degree` equals the regular degree by contract; use the observed
        // value so that a mis-applied sequence fails loudly in tests.
        Some(Port::new((base + a) % degree))
    }
}

/// UXS-driven exploration of a specific `d`-regular graph.
///
/// # Examples
///
/// ```
/// use rendezvous_explore::{Explorer, UxsExplorer, verify_explorer};
/// use rendezvous_graph::generators;
/// use rand::{rngs::StdRng, SeedableRng};
/// use std::sync::Arc;
///
/// let g = Arc::new(generators::oriented_ring(6).unwrap());
/// let mut rng = StdRng::seed_from_u64(1);
/// let ex = UxsExplorer::search(g.clone(), 200, &mut rng).unwrap();
/// assert!(verify_explorer(&g, &ex).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct UxsExplorer {
    sequence: UxsSequence,
    bound: usize,
}

impl UxsExplorer {
    /// Wraps an existing sequence after verifying it covers `graph` from
    /// every start node.
    ///
    /// # Errors
    ///
    /// * [`ExploreError::UnsuitableGraph`] if the graph is not regular of
    ///   the sequence's degree,
    /// * [`ExploreError::CoverageFailure`] if some start is not covered.
    pub fn with_sequence(
        graph: Arc<PortLabeledGraph>,
        sequence: UxsSequence,
    ) -> Result<Self, ExploreError> {
        if !graph.is_regular() || graph.max_degree() != sequence.degree() {
            return Err(ExploreError::UnsuitableGraph {
                explorer: "UxsExplorer",
                reason: format!("graph is not {}-regular", sequence.degree()),
            });
        }
        let mut worst = 0;
        for s in graph.nodes() {
            match sequence.coverage_time_from(&graph, s) {
                Some(t) => worst = worst.max(t),
                None => {
                    return Err(ExploreError::CoverageFailure {
                        explorer: "UxsExplorer",
                        start: s,
                    })
                }
            }
        }
        Ok(UxsExplorer {
            sequence,
            bound: worst,
        })
    }

    /// Randomized search for a covering sequence: starting from the empty
    /// sequence, repeatedly append a uniformly random increment until the
    /// walk covers the graph from every start, up to `max_len` increments.
    ///
    /// # Errors
    ///
    /// * [`ExploreError::UnsuitableGraph`] for irregular graphs,
    /// * [`ExploreError::SearchExhausted`] if no covering sequence of length
    ///   at most `max_len` was found.
    pub fn search<R: Rng + ?Sized>(
        graph: Arc<PortLabeledGraph>,
        max_len: usize,
        rng: &mut R,
    ) -> Result<Self, ExploreError> {
        if !graph.is_regular() {
            return Err(ExploreError::UnsuitableGraph {
                explorer: "UxsExplorer",
                reason: "graph is not regular".into(),
            });
        }
        let d = graph.max_degree();
        let mut steps = Vec::new();
        loop {
            let seq = UxsSequence::new(d, steps.clone());
            if seq.covers(&graph) {
                return Self::with_sequence(graph, seq);
            }
            if steps.len() >= max_len {
                return Err(ExploreError::SearchExhausted {
                    explorer: "UxsExplorer",
                    budget: format!("max sequence length {max_len}"),
                });
            }
            steps.push(rng.random_range(0..d));
        }
    }

    /// Searches for a sequence that covers **every** graph in `family` from
    /// every start node — a "universal" sequence for the family, the
    /// laptop-scale stand-in for Reingold's construction.
    ///
    /// Returns the sequence; wrap it per-graph with
    /// [`UxsExplorer::with_sequence`].
    ///
    /// # Errors
    ///
    /// * [`ExploreError::UnsuitableGraph`] if the family is empty or mixes
    ///   degrees/irregular graphs,
    /// * [`ExploreError::SearchExhausted`] on budget exhaustion.
    pub fn search_family<R: Rng + ?Sized>(
        family: &[Arc<PortLabeledGraph>],
        max_len: usize,
        rng: &mut R,
    ) -> Result<UxsSequence, ExploreError> {
        let Some(first) = family.first() else {
            return Err(ExploreError::UnsuitableGraph {
                explorer: "UxsExplorer",
                reason: "empty family".into(),
            });
        };
        let d = first.max_degree();
        if family
            .iter()
            .any(|g| !g.is_regular() || g.max_degree() != d)
        {
            return Err(ExploreError::UnsuitableGraph {
                explorer: "UxsExplorer",
                reason: "family mixes degrees or contains irregular graphs".into(),
            });
        }
        let mut steps = Vec::new();
        loop {
            let seq = UxsSequence::new(d, steps.clone());
            if family.iter().all(|g| seq.covers(g)) {
                return Ok(seq);
            }
            if steps.len() >= max_len {
                return Err(ExploreError::SearchExhausted {
                    explorer: "UxsExplorer",
                    budget: format!("max sequence length {max_len}"),
                });
            }
            steps.push(rng.random_range(0..d));
        }
    }

    /// The sequence driving this explorer.
    #[must_use]
    pub fn sequence(&self) -> &UxsSequence {
        &self.sequence
    }
}

impl Explorer for UxsExplorer {
    fn bound(&self) -> usize {
        self.bound
    }

    fn begin(&self, _start: NodeId) -> Box<dyn ExploreRun> {
        Box::new(UxsRun {
            seq: self.sequence.clone(),
            pos: 0,
        })
    }

    fn name(&self) -> &'static str {
        "uxs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_explorer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rendezvous_graph::generators;

    #[test]
    fn all_zero_increments_walk_straight_round_the_oriented_ring() {
        // entering via port 1, +0 keeps exiting port 1?? No: exit = entry + a.
        // On an oriented ring, entries alternate... first move exits p0,
        // entering via p1; exit p1 goes *back*. So zeros do NOT circle; use
        // increment 1 to keep going: (1 + 1) mod 2 = 0 = clockwise again.
        let g = generators::oriented_ring(5).unwrap();
        let ones = UxsSequence::new(2, vec![1; 4]);
        // first move: no entry -> port (0 + 1) % 2 = 1 (counter-clockwise),
        // then entry is p0, exit (0+1)%2=1... counter-clockwise forever: covers.
        assert!(ones.covers(&g));
    }

    #[test]
    fn search_finds_covering_sequence_on_rings() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [3usize, 5, 8] {
            let g = Arc::new(generators::oriented_ring(n).unwrap());
            let ex = UxsExplorer::search(g.clone(), 500, &mut rng).unwrap();
            assert!(verify_explorer(&g, &ex).is_ok());
            assert!(ex.bound() <= ex.sequence().len());
        }
    }

    #[test]
    fn search_works_on_higher_degree_regular_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = Arc::new(generators::hypercube(3).unwrap());
        let ex = UxsExplorer::search(g.clone(), 2_000, &mut rng).unwrap();
        assert!(verify_explorer(&g, &ex).is_ok());
    }

    #[test]
    fn family_sequence_is_universal_for_the_family() {
        let mut rng = StdRng::seed_from_u64(13);
        // All scrambled rings of sizes 3..=6 under a few seeds + oriented ones.
        let mut family: Vec<Arc<PortLabeledGraph>> = Vec::new();
        for n in 3..=6 {
            family.push(Arc::new(generators::oriented_ring(n).unwrap()));
            for seed in 0..4 {
                let mut r = StdRng::seed_from_u64(seed);
                family.push(Arc::new(generators::scrambled_ring(n, &mut r).unwrap()));
            }
        }
        let seq = UxsExplorer::search_family(&family, 5_000, &mut rng).unwrap();
        for g in &family {
            assert!(seq.covers(g));
            let ex = UxsExplorer::with_sequence(g.clone(), seq.clone()).unwrap();
            assert!(verify_explorer(g, &ex).is_ok());
        }
    }

    #[test]
    fn with_sequence_rejects_mismatched_degree() {
        let g = Arc::new(generators::hypercube(3).unwrap());
        let seq = UxsSequence::new(2, vec![1, 0, 1]);
        assert!(matches!(
            UxsExplorer::with_sequence(g, seq),
            Err(ExploreError::UnsuitableGraph { .. })
        ));
    }

    #[test]
    fn with_sequence_rejects_non_covering() {
        let g = Arc::new(generators::oriented_ring(8).unwrap());
        let seq = UxsSequence::new(2, vec![1]);
        assert!(matches!(
            UxsExplorer::with_sequence(g, seq),
            Err(ExploreError::CoverageFailure { .. })
        ));
    }

    #[test]
    fn family_search_rejects_mixed_degrees() {
        let family = vec![
            Arc::new(generators::oriented_ring(4).unwrap()),
            Arc::new(generators::hypercube(3).unwrap()),
        ];
        let mut rng = StdRng::seed_from_u64(1);
        assert!(UxsExplorer::search_family(&family, 10, &mut rng).is_err());
    }

    #[test]
    fn search_exhaustion_is_reported() {
        let g = Arc::new(generators::oriented_ring(16).unwrap());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            UxsExplorer::search(g, 2, &mut rng),
            Err(ExploreError::SearchExhausted { .. })
        ));
    }
}
