//! Error type for explorer construction.

use rendezvous_graph::{GraphError, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced while constructing exploration procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExploreError {
    /// The underlying graph failed a structural requirement (for example,
    /// the oriented-ring explorer was given a graph that is not an oriented
    /// ring).
    UnsuitableGraph {
        /// Which explorer rejected the graph.
        explorer: &'static str,
        /// Why the graph was rejected.
        reason: String,
    },
    /// A candidate procedure failed to cover the graph from some start node
    /// within the proposed bound.
    CoverageFailure {
        /// Which explorer detected the failure.
        explorer: &'static str,
        /// A start node from which coverage failed.
        start: NodeId,
    },
    /// A search-based constructor (UXS) exhausted its budget without finding
    /// a covering sequence.
    SearchExhausted {
        /// Which constructor gave up.
        explorer: &'static str,
        /// Budget description for the error message.
        budget: String,
    },
    /// An underlying graph operation failed.
    Graph(GraphError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::UnsuitableGraph { explorer, reason } => {
                write!(f, "{explorer}: graph unsuitable: {reason}")
            }
            ExploreError::CoverageFailure { explorer, start } => {
                write!(
                    f,
                    "{explorer}: procedure fails to cover the graph from {start}"
                )
            }
            ExploreError::SearchExhausted { explorer, budget } => {
                write!(f, "{explorer}: no covering sequence found within {budget}")
            }
            ExploreError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for ExploreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExploreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ExploreError {
    fn from(e: GraphError) -> Self {
        ExploreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ExploreError::Graph(GraphError::NotConnected);
        assert!(e.to_string().contains("graph error"));
        assert!(Error::source(&e).is_some());
        let e = ExploreError::CoverageFailure {
            explorer: "test",
            start: NodeId::new(3),
        };
        assert!(e.to_string().contains("v3"));
    }
}
