//! Exploration of oriented rings: the sharpest possible bound `E = n − 1`.
//!
//! §3: "starting from any node an agent can explore the ring going `n − 1`
//! steps clockwise. This is, of course, an optimal exploration." This is the
//! exploration procedure under which the paper proves both lower bounds.

use crate::{ExploreError, ExploreRun, Explorer};
use rendezvous_graph::{NodeId, Port, PortLabeledGraph};
use std::sync::Arc;

/// Walks a fixed number of steps clockwise (always exiting port 0).
#[derive(Debug, Clone)]
struct ClockwiseRun {
    remaining: usize,
}

impl ExploreRun for ClockwiseRun {
    fn next_move(&mut self, _degree: usize, _entry_port: Option<Port>) -> Option<Port> {
        if self.remaining == 0 {
            None
        } else {
            self.remaining -= 1;
            Some(Port::new(0))
        }
    }
}

/// Optimal exploration of an oriented ring: `n − 1` clockwise steps.
///
/// Construction validates that the graph really is an oriented ring, i.e.
/// that starting anywhere and repeatedly leaving through port 0 traverses a
/// Hamiltonian cycle.
///
/// # Examples
///
/// ```
/// use rendezvous_explore::{Explorer, OrientedRingExplorer, verify_explorer};
/// use rendezvous_graph::generators;
/// use std::sync::Arc;
///
/// let g = Arc::new(generators::oriented_ring(10).unwrap());
/// let ex = OrientedRingExplorer::new(g.clone()).unwrap();
/// assert_eq!(ex.bound(), 9);
/// assert!(verify_explorer(&g, &ex).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct OrientedRingExplorer {
    steps: usize,
}

impl OrientedRingExplorer {
    /// Validates the oriented-ring structure and returns the explorer.
    ///
    /// # Errors
    ///
    /// [`ExploreError::UnsuitableGraph`] if the graph is not 2-regular or
    /// the port-0 walk from node 0 does not close into a Hamiltonian cycle.
    pub fn new(graph: Arc<PortLabeledGraph>) -> Result<Self, ExploreError> {
        let n = graph.node_count();
        let fail = |reason: String| ExploreError::UnsuitableGraph {
            explorer: "OrientedRingExplorer",
            reason,
        };
        if n < 3 {
            return Err(fail(format!("ring needs n >= 3, got {n}")));
        }
        if !graph.is_regular() || graph.max_degree() != 2 {
            return Err(fail("graph is not 2-regular".into()));
        }
        // Follow port 0 from node 0: must visit all nodes and close, always
        // entering through port 1 (otherwise port 0 would lead us backwards
        // somewhere and the walk from another start would not be clockwise).
        let mut at = NodeId::new(0);
        let mut seen = vec![false; n];
        seen[0] = true;
        for step in 1..=n {
            let t = graph.traverse(at, Port::new(0))?;
            if t.entry_port != Port::new(1) {
                return Err(fail(format!(
                    "edge out of {at} enters {} via {} instead of p1: ports are not oriented",
                    t.target, t.entry_port
                )));
            }
            at = t.target;
            if step < n {
                if seen[at.index()] {
                    return Err(fail("port-0 walk revisits a node early".into()));
                }
                seen[at.index()] = true;
            }
        }
        if at != NodeId::new(0) {
            return Err(fail("port-0 walk does not close into a cycle".into()));
        }
        Ok(OrientedRingExplorer { steps: n - 1 })
    }

    /// Number of clockwise steps the procedure takes (`n − 1`).
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }
}

impl Explorer for OrientedRingExplorer {
    fn bound(&self) -> usize {
        self.steps
    }

    fn begin(&self, _start: NodeId) -> Box<dyn ExploreRun> {
        Box::new(ClockwiseRun {
            remaining: self.steps,
        })
    }

    fn name(&self) -> &'static str {
        "oriented-ring"
    }
}

/// Exploration by a fixed-length clockwise walk of `steps` port-0 moves.
///
/// This is `EXPLORE_i` for oriented rings of *unknown* size: a walk of
/// `2^i − 1` steps explores every oriented ring with at most `2^i` nodes.
/// Used by the iterated (unknown `E`) algorithms of the paper's Conclusion,
/// where its bound is an overshoot rather than sharp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedWalkExplorer {
    steps: usize,
}

impl BoundedWalkExplorer {
    /// An explorer that walks exactly `steps` clockwise steps. Covers any
    /// oriented ring with at most `steps + 1` nodes.
    #[must_use]
    pub fn new(steps: usize) -> Self {
        BoundedWalkExplorer { steps }
    }
}

impl Explorer for BoundedWalkExplorer {
    fn bound(&self) -> usize {
        self.steps
    }

    fn begin(&self, _start: NodeId) -> Box<dyn ExploreRun> {
        Box::new(ClockwiseRun {
            remaining: self.steps,
        })
    }

    fn name(&self) -> &'static str {
        "bounded-walk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_explorer;
    use rendezvous_graph::generators;

    #[test]
    fn explores_every_oriented_ring_sharply() {
        for n in [3usize, 4, 7, 12, 33] {
            let g = Arc::new(generators::oriented_ring(n).unwrap());
            let ex = OrientedRingExplorer::new(g.clone()).unwrap();
            assert_eq!(ex.bound(), n - 1);
            assert_eq!(verify_explorer(&g, &ex), Ok(n - 1));
        }
    }

    #[test]
    fn rejects_non_rings() {
        let g = Arc::new(generators::complete(4).unwrap());
        assert!(OrientedRingExplorer::new(g).is_err());
        let g = Arc::new(generators::path(5).unwrap());
        assert!(OrientedRingExplorer::new(g).is_err());
    }

    #[test]
    fn rejects_scrambled_rings() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // A scrambled ring is 2-regular but its ports are not oriented;
        // with 12 nodes and seed 5 at least one node has a flipped port.
        let mut rng = StdRng::seed_from_u64(5);
        let g = Arc::new(generators::scrambled_ring(12, &mut rng).unwrap());
        assert!(OrientedRingExplorer::new(g).is_err());
    }

    #[test]
    fn bounded_walk_covers_smaller_rings() {
        let g = Arc::new(generators::oriented_ring(5).unwrap());
        let ex = BoundedWalkExplorer::new(9); // 2^i - 1 walk for i where 2^i >= 5... overshoot
        assert!(verify_explorer(&g, &ex).is_ok());
        let short = BoundedWalkExplorer::new(3);
        assert!(verify_explorer(&g, &short).is_err());
    }
}
