//! Resolving a [`GraphSpec`]'s exploration recipe into an actual explorer.
//!
//! `rendezvous-graph` names *which* `EXPLORE` procedure is sound for each
//! spec ([`ExplorerRecipe`]); this module builds it. Keeping the resolver
//! here (rather than in the graph crate) preserves the layering: graphs
//! know nothing about walks, and every consumer of topology sweeps gets
//! the same spec → explorer mapping.

use crate::{DfsMapExplorer, ExploreError, Explorer, OrientedRingExplorer};
use rendezvous_graph::{ExplorerRecipe, GraphSpec, PortLabeledGraph};
use std::sync::Arc;

/// Builds the explorer a spec's recipe prescribes for its built graph.
///
/// The caller supplies the graph (typically built once per spec and shared
/// via `Arc` across a sweep) so the resolver never rebuilds it.
///
/// # Errors
///
/// [`ExploreError`] if the recipe's preconditions do not hold on `graph`
/// (e.g. an oriented-ring recipe on a graph that is not an oriented ring —
/// which indicates a spec/graph mismatch, since [`GraphSpec::recipe`] only
/// prescribes `OrientedRing` for ring specs).
pub fn spec_explorer(
    spec: &GraphSpec,
    graph: Arc<PortLabeledGraph>,
) -> Result<Arc<dyn Explorer>, ExploreError> {
    match spec.recipe() {
        ExplorerRecipe::OrientedRing => {
            Ok(Arc::new(OrientedRingExplorer::new(graph)?) as Arc<dyn Explorer>)
        }
        ExplorerRecipe::DfsMap => Ok(Arc::new(DfsMapExplorer::new(graph)) as Arc<dyn Explorer>),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_explorer;
    use rendezvous_graph::{RingSpec, SeededSpec, TorusSpec};

    #[test]
    fn ring_specs_get_the_optimal_walk() {
        let spec = GraphSpec::Ring(RingSpec { n: 9 });
        let g = Arc::new(spec.build().unwrap());
        let ex = spec_explorer(&spec, g.clone()).unwrap();
        assert_eq!(ex.bound(), 8, "oriented ring explores in n - 1");
        assert_eq!(verify_explorer(&g, ex.as_ref()).unwrap(), ex.bound());
    }

    #[test]
    fn every_recipe_satisfies_the_explorer_contract() {
        let specs = [
            GraphSpec::ScrambledRing(SeededSpec { n: 8, seed: 11 }),
            GraphSpec::Tree(SeededSpec { n: 9, seed: 12 }),
            GraphSpec::Torus(TorusSpec { w: 3, h: 3 }),
            GraphSpec::permuted(GraphSpec::Ring(RingSpec { n: 7 }), 13),
        ];
        for spec in specs {
            let g = Arc::new(spec.build().unwrap());
            let ex = spec_explorer(&spec, g.clone()).unwrap();
            let worst = verify_explorer(&g, ex.as_ref())
                .unwrap_or_else(|start| panic!("{spec:?}: no coverage from {start:?}"));
            assert!(worst <= ex.bound());
        }
    }
}
