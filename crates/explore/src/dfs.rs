//! Depth-first exploration with a port-labelled map and a marked start.
//!
//! §1.2: "If each agent has a map of the graph with unlabeled nodes, labeled
//! ports, and the agent's starting position marked … Depth-First-Search can
//! be performed in time at most `2n − 3`."

use crate::{ExploreError, ExploreRun, Explorer, PlannedRun};
use rendezvous_graph::{NodeId, Port, PortLabeledGraph};
use std::sync::Arc;

/// Computes the DFS port walk from `start`: ports are tried in increasing
/// order, backtracking retraces the entry port, and the walk is truncated
/// right after the last new node is discovered (no pointless final
/// backtracking — this is what makes the star achieve `2n − 3`).
///
/// # Panics
///
/// Panics if `start` is out of range.
#[must_use]
pub fn dfs_walk(graph: &PortLabeledGraph, start: NodeId) -> Vec<Port> {
    assert!(graph.contains(start), "start out of range");
    let n = graph.node_count();
    let mut visited = vec![false; n];
    visited[start.index()] = true;
    let mut discovered = 1;
    let mut walk = Vec::new();
    let mut last_discovery = 0;
    // stack of (node, next port index to try, entry port used to reach it)
    let mut stack: Vec<(NodeId, usize, Option<Port>)> = vec![(start, 0, None)];
    while let Some(&mut (v, ref mut next, entry)) = stack.last_mut() {
        let deg = graph.degree(v);
        let mut advanced = false;
        while *next < deg {
            let p = Port::new(*next);
            *next += 1;
            let t = graph.traverse(v, p).expect("valid port");
            if !visited[t.target.index()] {
                visited[t.target.index()] = true;
                discovered += 1;
                walk.push(p);
                last_discovery = walk.len();
                stack.push((t.target, 0, Some(t.entry_port)));
                advanced = true;
                break;
            }
        }
        if discovered == n {
            break;
        }
        if !advanced {
            stack.pop();
            if let Some(p) = entry {
                walk.push(p); // backtrack
            }
        }
    }
    walk.truncate(last_discovery);
    walk
}

/// The DFS-with-map exploration procedure.
///
/// Precomputes the DFS walk for every possible start node; the bound `E` is
/// the exact worst walk length over all starts (always at most `2n − 2`,
/// and at most `2n − 3` when `n ≥ 2`, matching §1.2).
///
/// # Examples
///
/// ```
/// use rendezvous_explore::{DfsMapExplorer, Explorer, verify_explorer};
/// use rendezvous_graph::generators;
/// use std::sync::Arc;
///
/// let g = Arc::new(generators::star(5).unwrap()); // n = 6
/// let ex = DfsMapExplorer::new(g.clone());
/// assert!(ex.bound() <= 2 * 6 - 3);
/// assert!(verify_explorer(&g, &ex).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct DfsMapExplorer {
    graph: Arc<PortLabeledGraph>,
    walks: Vec<Vec<Port>>,
    bound: usize,
}

impl DfsMapExplorer {
    /// Builds the explorer by precomputing all `n` DFS walks.
    #[must_use]
    pub fn new(graph: Arc<PortLabeledGraph>) -> Self {
        let walks: Vec<Vec<Port>> = graph.nodes().map(|s| dfs_walk(&graph, s)).collect();
        let bound = walks.iter().map(Vec::len).max().unwrap_or(0);
        DfsMapExplorer {
            graph,
            walks,
            bound,
        }
    }

    /// Builds the explorer, failing if the graph is disconnected (a DFS from
    /// one component can never cover another).
    ///
    /// # Errors
    ///
    /// [`ExploreError::UnsuitableGraph`] for disconnected graphs.
    pub fn try_new(graph: Arc<PortLabeledGraph>) -> Result<Self, ExploreError> {
        if !rendezvous_graph::analysis::is_connected(&graph) {
            return Err(ExploreError::UnsuitableGraph {
                explorer: "DfsMapExplorer",
                reason: "graph is disconnected".into(),
            });
        }
        Ok(Self::new(graph))
    }

    /// The precomputed walk for a particular start node.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range.
    #[must_use]
    pub fn walk_for(&self, start: NodeId) -> &[Port] {
        &self.walks[start.index()]
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Arc<PortLabeledGraph> {
        &self.graph
    }
}

impl Explorer for DfsMapExplorer {
    fn bound(&self) -> usize {
        self.bound
    }

    fn begin(&self, start: NodeId) -> Box<dyn ExploreRun> {
        Box::new(PlannedRun::new(self.walks[start.index()].clone()))
    }

    fn name(&self) -> &'static str {
        "dfs-map"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_explorer;
    use rendezvous_graph::generators;

    #[test]
    fn dfs_walk_on_path_from_end_is_straight() {
        let g = generators::path(5).unwrap();
        let w = dfs_walk(&g, NodeId::new(0));
        assert_eq!(w.len(), 4); // no backtracking needed
    }

    #[test]
    fn dfs_walk_on_star_from_center_is_2n_minus_3() {
        let g = generators::star(5).unwrap(); // n = 6
        let w = dfs_walk(&g, NodeId::new(0));
        assert_eq!(w.len(), 2 * 6 - 3);
    }

    #[test]
    fn dfs_bound_never_exceeds_2n_minus_2() {
        for g in [
            generators::oriented_ring(9).unwrap(),
            generators::complete(6).unwrap(),
            generators::balanced_binary_tree(3).unwrap(),
            generators::grid(4, 4).unwrap(),
            generators::hypercube(4).unwrap(),
        ] {
            let n = g.node_count();
            let ex = DfsMapExplorer::new(Arc::new(g));
            assert!(ex.bound() <= 2 * n - 2, "bound {} vs n {}", ex.bound(), n);
        }
    }

    #[test]
    fn dfs_explorer_contract_holds_on_families() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let graphs = vec![
            generators::oriented_ring(8).unwrap(),
            generators::star(7).unwrap(),
            generators::grid(3, 5).unwrap(),
            generators::random_tree(17, &mut rng).unwrap(),
            generators::erdos_renyi_connected(14, 0.25, &mut rng).unwrap(),
        ];
        for g in graphs {
            let g = Arc::new(g);
            let ex = DfsMapExplorer::new(g.clone());
            let worst = verify_explorer(&g, &ex).expect("coverage within bound");
            assert_eq!(worst, ex.bound(), "bound should be sharp");
        }
    }

    #[test]
    fn try_new_rejects_disconnected() {
        let g = rendezvous_graph::GraphBuilder::new(3).build().unwrap();
        assert!(DfsMapExplorer::try_new(Arc::new(g)).is_err());
    }

    #[test]
    fn single_node_graph_has_zero_bound() {
        let g = generators::path(1).unwrap();
        let ex = DfsMapExplorer::new(Arc::new(g));
        assert_eq!(ex.bound(), 0);
    }
}
