//! Families of exploration procedures for agents that know **no** bound on
//! the network size.
//!
//! Paper, Conclusion: "Let `EXPLORE_i` be the UXS-based exploration procedure
//! for the class of graphs of size at most `2^i`, and let `E_i` be the time
//! of `EXPLORE_i`. Each of our algorithms can be modified by iterating the
//! original algorithm using `EXPLORE = EXPLORE_i` and `E = E_i` in the i-th
//! iteration … Due to telescoping, the time and cost complexities will not
//! change."

use crate::{BoundedWalkExplorer, Explorer};
use std::sync::Arc;

/// An indexed family `EXPLORE_1, EXPLORE_2, …` where level `i` explores
/// every graph of the intended class with at most `2^i` nodes, with bound
/// `E_i` non-decreasing in `i`.
pub trait ExplorationFamily: std::fmt::Debug + Send + Sync {
    /// The procedure for graphs of size at most `2^level`.
    fn level(&self, level: u32) -> Arc<dyn Explorer>;

    /// `E_level`, without materializing the explorer.
    fn bound(&self, level: u32) -> usize {
        self.level(level).bound()
    }

    /// Smallest level whose class contains an `n`-node graph.
    fn level_for(&self, n: usize) -> u32 {
        (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1)
    }
}

/// The doubling family for **oriented rings** of unknown size: level `i`
/// walks `2^i − 1` steps clockwise, which explores every oriented ring with
/// at most `2^i` nodes. `E_i = 2^i − 1` telescopes exactly as the paper's
/// Conclusion requires.
///
/// # Examples
///
/// ```
/// use rendezvous_explore::{ExplorationFamily, RingDoublingFamily};
///
/// let fam = RingDoublingFamily::new();
/// assert_eq!(fam.bound(3), 7);
/// assert_eq!(fam.level_for(5), 3);  // 2^3 = 8 >= 5
/// assert_eq!(fam.level_for(8), 3);
/// assert_eq!(fam.level_for(9), 4);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RingDoublingFamily;

impl RingDoublingFamily {
    /// Creates the family.
    #[must_use]
    pub fn new() -> Self {
        RingDoublingFamily
    }
}

impl ExplorationFamily for RingDoublingFamily {
    fn level(&self, level: u32) -> Arc<dyn Explorer> {
        let steps = (1usize << level) - 1;
        Arc::new(BoundedWalkExplorer::new(steps))
    }

    fn bound(&self, level: u32) -> usize {
        (1usize << level) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_explorer;
    use rendezvous_graph::generators;

    #[test]
    fn doubling_bound_matches_level() {
        let fam = RingDoublingFamily::new();
        for i in 1..10 {
            assert_eq!(fam.bound(i), (1 << i) - 1);
            assert_eq!(fam.level(i).bound(), fam.bound(i));
        }
    }

    #[test]
    fn level_for_is_minimal() {
        let fam = RingDoublingFamily::new();
        for n in 2..100usize {
            let lvl = fam.level_for(n);
            assert!((1usize << lvl) >= n, "level {lvl} too small for {n}");
            assert!(
                lvl == 1 || (1usize << (lvl - 1)) < n,
                "level {lvl} not minimal for {n}"
            );
        }
    }

    #[test]
    fn level_explores_rings_up_to_its_class_size() {
        let fam = RingDoublingFamily::new();
        let ex = fam.level(4); // covers rings up to 16 nodes
        for n in [3usize, 9, 16] {
            let g = generators::oriented_ring(n).unwrap();
            assert!(verify_explorer(&g, ex.as_ref()).is_ok(), "ring {n}");
        }
    }

    #[test]
    fn level_too_small_fails_on_large_ring() {
        let fam = RingDoublingFamily::new();
        let ex = fam.level(3); // 7 steps: covers up to 8 nodes
        let g = generators::oriented_ring(12).unwrap();
        assert!(verify_explorer(&g, ex.as_ref()).is_err());
    }
}
