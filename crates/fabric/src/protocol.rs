//! The fabric's message vocabulary — nine small shapes, serialized as
//! externally-tagged JSON inside length-prefixed frames (see
//! [`wire`](crate::wire)).
//!
//! The conversation is strictly worker-initiated: a worker sends
//! [`Message::Hello`] once, then loops `Request → (Lease | Wait |
//! SweepComplete)` per sweep, submitting a [`Message::Result`] for every
//! lease it finishes, with [`Message::Heartbeat`]s flowing from a side
//! thread the whole time. [`Message::Finished`] hands the worker's
//! telemetry snapshot to the coordinator for the merged sidecar. The
//! coordinator only ever speaks in *replies* to `Request` —
//! plus [`Message::Fault`] when it must refuse.

use rendezvous_runner::{SweepReport, WorkloadMeta};
use rendezvous_telemetry::TelemetrySnapshot;
use serde::{Deserialize, Serialize};

/// Wire-protocol version, carried in [`Message::Hello`]. Coordinator and
/// workers are always the same binary in practice (the driver re-execs
/// itself), but the check turns a version skew into a typed refusal
/// instead of a JSON parse error three frames later.
pub const PROTOCOL_VERSION: u32 = 1;

/// One frame of the fabric protocol.
///
/// `sweep` is always the sweep's position in the run's deterministic
/// sweep sequence (every worker walks the same experiment list in the
/// same order), and `lo..hi` are **global workload indices** — the same
/// coordinates [`Workload`](rendezvous_runner::Workload) pieces,
/// [`SweepReport`](rendezvous_runner::SweepReport) witnesses, and the
/// shard ledger all use, which is what makes lease reassignment and
/// duplicate results idempotent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Message {
    /// Worker → coordinator, once per connection: identify and
    /// version-check.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
        /// The worker's id (its process id — unique per run).
        worker: u64,
    },
    /// Worker → coordinator: "I am at sweep `sweep`, which I fingerprint
    /// as `meta`; lease me a range." The first request naming a sweep
    /// registers it; every later one must match its fingerprint.
    Request {
        /// Position in the sweep sequence.
        sweep: usize,
        /// The worker's fingerprint of that sweep's workload.
        meta: WorkloadMeta,
    },
    /// Coordinator → worker: execute global range `[lo, hi)` of sweep
    /// `sweep` and submit a [`Message::Result`] for exactly that range.
    Lease {
        /// Position in the sweep sequence.
        sweep: usize,
        /// Inclusive global start index.
        lo: usize,
        /// Exclusive global end index.
        hi: usize,
    },
    /// Coordinator → worker: nothing leasable right now, but the sweep is
    /// not complete either (other workers hold leases that may yet
    /// expire). Poll again shortly.
    Wait,
    /// Coordinator → worker: every range of sweep `sweep` is done; move
    /// on to the next sweep.
    SweepComplete {
        /// Position in the sweep sequence.
        sweep: usize,
    },
    /// Worker → coordinator: the partial fold of exactly the leased
    /// range. Duplicates (from a worker declared dead that was merely
    /// slow) are discarded — determinism makes them byte-identical to
    /// the copy already folded.
    Result {
        /// Position in the sweep sequence.
        sweep: usize,
        /// Inclusive global start index of the lease.
        lo: usize,
        /// Exclusive global end index of the lease.
        hi: usize,
        /// The fold of `[lo, hi)`, at global indices.
        report: SweepReport,
    },
    /// Worker → coordinator, from a side thread at a fixed cadence:
    /// proof of life. A worker silent past the lease deadline has its
    /// in-flight ranges requeued.
    Heartbeat,
    /// Worker → coordinator: the worker ran out of sweeps; here is its
    /// telemetry for the merged sidecar. The worker half-closes after
    /// this frame.
    Finished {
        /// The worker process's full telemetry snapshot.
        telemetry: TelemetrySnapshot,
    },
    /// Either direction: a typed refusal. The connection ends after this
    /// frame; the run fails loudly unless other workers can still finish
    /// the space.
    Fault {
        /// Human-readable reason.
        message: String,
    },
}

impl Message {
    /// Short tag for diagnostics ("got `Wait` while expecting a reply").
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "Hello",
            Message::Request { .. } => "Request",
            Message::Lease { .. } => "Lease",
            Message::Wait => "Wait",
            Message::SweepComplete { .. } => "SweepComplete",
            Message::Result { .. } => "Result",
            Message::Heartbeat => "Heartbeat",
            Message::Finished { .. } => "Finished",
            Message::Fault { .. } => "Fault",
        }
    }
}
