//! The worker side of the fabric: connect, pull leases, push results,
//! heartbeat from a side thread, hand over telemetry at the end.
//!
//! A worker process walks the run's sweep sequence exactly like a
//! direct run would — same experiment order, same workload
//! construction — but instead of sweeping `[0, size())` it loops
//! "request a lease, execute it through `Runner::sweep_range`, submit
//! the fold" until the coordinator says the sweep is complete. All
//! socket writes (requests, results, heartbeats) go through one mutex'd
//! stream so frames never interleave.

use crate::error::{FabricError, WireError};
use crate::protocol::{Message, PROTOCOL_VERSION};
use crate::wire::{read_frame, write_frame};
use rendezvous_runner::{SweepReport, WorkloadMeta};
use rendezvous_telemetry::TelemetrySnapshot;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Heartbeat cadence — an order of magnitude inside the coordinator's
/// default 5 s lease timeout, so only a truly wedged or dead worker
/// expires.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(500);

/// How long to sleep after a `Wait` reply before polling again.
const WAIT_POLL: Duration = Duration::from_millis(25);

/// If the coordinator goes silent this long after a request, give up —
/// the worker must never hang on a dead coordinator.
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// A connected fabric worker.
///
/// The heartbeat thread starts at [`connect`](Self::connect) and runs
/// until [`finish`](Self::finish) (or drop); it shares the write half
/// of the socket behind a mutex with the request/result traffic.
pub struct WorkerClient {
    writer: Arc<Mutex<TcpStream>>,
    reader: TcpStream,
    stop: Arc<AtomicBool>,
    heartbeat: Option<std::thread::JoinHandle<()>>,
}

impl WorkerClient {
    /// Connects to the coordinator at `addr`, introduces itself as
    /// `worker`, and starts the heartbeat thread.
    ///
    /// # Errors
    ///
    /// Connection or handshake-write failures.
    pub fn connect(addr: &str, worker: u64) -> Result<WorkerClient, FabricError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        reader.set_read_timeout(Some(REPLY_TIMEOUT))?;
        let writer = Arc::new(Mutex::new(stream));
        write_frame(
            &mut *writer.lock().expect("fabric writer lock"),
            &Message::Hello {
                version: PROTOCOL_VERSION,
                worker,
            },
        )?;
        let stop = Arc::new(AtomicBool::new(false));
        let beat_writer = Arc::clone(&writer);
        let beat_stop = Arc::clone(&stop);
        // analyze: allow(d5) — liveness side channel; carries no sweep data
        let heartbeat = std::thread::spawn(move || {
            while !beat_stop.load(Ordering::SeqCst) {
                std::thread::sleep(HEARTBEAT_EVERY);
                if beat_stop.load(Ordering::SeqCst) {
                    break;
                }
                let mut w = beat_writer.lock().expect("fabric writer lock");
                if write_frame(&mut *w, &Message::Heartbeat).is_err() {
                    // Coordinator gone: the main thread will hit the
                    // same wall on its next request; just go quiet.
                    break;
                }
            }
        });
        Ok(WorkerClient {
            writer,
            reader,
            stop,
            heartbeat: Some(heartbeat),
        })
    }

    /// Requests the next lease of sweep `sweep` (fingerprint `meta`),
    /// polling through `Wait` replies. `Ok(Some((lo, hi)))` is a range
    /// to execute; `Ok(None)` means the sweep is complete.
    ///
    /// # Errors
    ///
    /// Wire failures, coordinator faults, or out-of-protocol replies.
    pub fn next_lease(
        &mut self,
        sweep: usize,
        meta: WorkloadMeta,
    ) -> Result<Option<(usize, usize)>, FabricError> {
        loop {
            write_frame(
                &mut *self.writer.lock().expect("fabric writer lock"),
                &Message::Request { sweep, meta },
            )?;
            match self.read_reply()? {
                Message::Lease { sweep: s, lo, hi } if s == sweep => return Ok(Some((lo, hi))),
                Message::SweepComplete { sweep: s } if s == sweep => return Ok(None),
                Message::Wait => std::thread::sleep(WAIT_POLL),
                Message::Fault { message } => {
                    return Err(FabricError::Protocol(format!(
                        "coordinator refused: {message}"
                    )))
                }
                other => {
                    return Err(FabricError::Protocol(format!(
                        "unexpected reply to Request: {}",
                        other.tag()
                    )))
                }
            }
        }
    }

    /// Submits the fold of leased range `[lo, hi)` of `sweep`.
    ///
    /// # Errors
    ///
    /// Wire failures.
    pub fn submit(
        &mut self,
        sweep: usize,
        lo: usize,
        hi: usize,
        report: SweepReport,
    ) -> Result<(), FabricError> {
        write_frame(
            &mut *self.writer.lock().expect("fabric writer lock"),
            &Message::Result {
                sweep,
                lo,
                hi,
                report,
            },
        )?;
        Ok(())
    }

    /// Ends the conversation: stops the heartbeat, sends the worker's
    /// telemetry snapshot, and half-closes the socket.
    ///
    /// # Errors
    ///
    /// Wire failures on the final frame.
    pub fn finish(mut self, telemetry: TelemetrySnapshot) -> Result<(), FabricError> {
        self.stop_heartbeat();
        {
            let mut w = self.writer.lock().expect("fabric writer lock");
            write_frame(&mut *w, &Message::Finished { telemetry })?;
            let _ = w.shutdown(std::net::Shutdown::Write);
        }
        Ok(())
    }

    /// Reads one coordinator reply off the socket.
    fn read_reply(&mut self) -> Result<Message, FabricError> {
        match read_frame(&mut self.reader) {
            Ok(Some(msg)) => Ok(msg),
            Ok(None) => Err(FabricError::Wire(WireError::Truncated {
                expected: 4,
                got: 0,
            })),
            Err(e) => Err(FabricError::Wire(e)),
        }
    }

    fn stop_heartbeat(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.heartbeat.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerClient {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.heartbeat.take() {
            let _ = h.join();
        }
    }
}
