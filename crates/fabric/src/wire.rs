//! The length-framed codec: `4-byte big-endian payload length` +
//! `payload` (compact JSON of one [`Message`]).
//!
//! Deliberately minimal — no compression, no checksums, no streaming
//! bodies — because the payloads are small folds and the transport is a
//! loopback socket. What the codec *does* guarantee is boundedness:
//! a frame can never exceed [`MAX_FRAME`], a clean peer close is
//! distinguishable from mid-frame truncation, and a stalled peer
//! exhausts a finite retry budget instead of wedging the reader forever.

use crate::error::WireError;
use crate::protocol::Message;
use serde::{Deserialize, Serialize};
use std::io::{ErrorKind, Read, Write};

/// Upper bound on a frame payload, in bytes. The largest real payload is
/// a `Result` frame carrying one lease chunk's [`SweepReport`] (a few
/// KiB); 16 MiB is comfortable headroom while still refusing a corrupt
/// or hostile length prefix before allocating for it.
pub const MAX_FRAME: usize = 16 << 20;

/// How many consecutive read-timeout ticks [`read_frame`] tolerates
/// *mid-frame* before declaring the stream truncated. Between frames a
/// timeout is returned to the caller (it is the server's expiry tick);
/// mid-frame the sender has already committed a length prefix, so a
/// short stall is tolerated but a wedged peer is cut off.
const MID_FRAME_TIMEOUT_BUDGET: u32 = 100;

/// Serializes `msg` and writes it as one frame.
///
/// The frame is assembled in memory and written with a single
/// `write_all`, so two threads sharing a writer behind a lock can never
/// interleave partial frames.
///
/// # Errors
///
/// [`WireError::Io`] if the write fails; [`WireError::Oversized`] if the
/// serialized message exceeds [`MAX_FRAME`] (a protocol bug, not an
/// environmental failure).
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> Result<(), WireError> {
    write_json_frame(w, msg, msg.tag())
}

/// Serializes any JSON-speaking value and writes it as one frame — the
/// generic codec behind [`write_frame`], shared with the sweep service's
/// query protocol so every framed conversation in the workspace has the
/// same boundedness guarantees. `what` names the value in error messages.
///
/// # Errors
///
/// As [`write_frame`].
pub fn write_json_frame<W: Write, T: Serialize>(
    w: &mut W,
    value: &T,
    what: &str,
) -> Result<(), WireError> {
    let payload = serde_json::to_string(value)
        .map_err(|e| WireError::Malformed(format!("serialize {what}: {e}")))?;
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(WireError::Oversized {
            len: bytes.len(),
            max: MAX_FRAME,
        });
    }
    let len = u32::try_from(bytes.len()).expect("frame cap fits in u32");
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(bytes);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, or observes a clean end of stream.
///
/// Returns `Ok(Some(msg))` for a complete frame, `Ok(None)` when the
/// stream ends **between** frames (the peer's orderly close). A timeout
/// with no bytes read is surfaced as [`WireError::Io`] (check
/// [`WireError::is_timeout`]) so callers on sockets with read timeouts
/// can use it as an idle tick; once the length prefix has started
/// arriving, timeouts are retried up to a fixed budget and then reported
/// as [`WireError::Truncated`] — the reader never hangs on a peer that
/// dies mid-frame without closing.
///
/// # Errors
///
/// [`WireError::Truncated`] for EOF or a stall mid-frame,
/// [`WireError::Oversized`] for a length prefix over [`MAX_FRAME`],
/// [`WireError::Malformed`] for payloads that are not a protocol
/// message, [`WireError::Io`] for everything the OS refuses.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Message>, WireError> {
    read_json_frame(r, "a message")
}

/// Reads one frame of any JSON-speaking type, or observes a clean end of
/// stream — the generic codec behind [`read_frame`], shared with the
/// sweep service's query protocol. `what` names the expected type in the
/// malformed-payload error.
///
/// # Errors
///
/// As [`read_frame`].
pub fn read_json_frame<R: Read, T: Deserialize>(
    r: &mut R,
    what: &str,
) -> Result<Option<T>, WireError> {
    let mut len_buf = [0u8; 4];
    if !read_full(r, &mut len_buf, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, false)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|e| WireError::Malformed(format!("payload is not UTF-8: {e}")))?;
    match serde_json::from_str::<T>(text) {
        Ok(value) => Ok(Some(value)),
        Err(e) => Err(WireError::Malformed(format!("payload is not {what}: {e}"))),
    }
}

/// Fills `buf` from `r`. Returns `Ok(false)` for EOF before the first
/// byte when `eof_ok` (the clean between-frames close); EOF or an
/// exhausted timeout budget after that is [`WireError::Truncated`].
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], eof_ok: bool) -> Result<bool, WireError> {
    let mut got = 0;
    let mut stalls = 0u32;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && eof_ok {
                    return Ok(false);
                }
                return Err(WireError::Truncated {
                    expected: buf.len(),
                    got,
                });
            }
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Idle between frames: the caller's tick. Mid-frame: a
                // stall, tolerated only up to the budget.
                if got == 0 && eof_ok {
                    return Err(WireError::Io(e));
                }
                stalls += 1;
                if stalls >= MID_FRAME_TIMEOUT_BUDGET {
                    return Err(WireError::Truncated {
                        expected: buf.len(),
                        got,
                    });
                }
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}
