//! The lease state machine — pure logic, no sockets, no clocks.
//!
//! The [`Coordinator`] owns every sweep's chunk partition and hands out
//! leases from a deque. Time reaches it only as `now_ms` arguments
//! (milliseconds from any fixed origin), and bytes never reach it at
//! all, so the whole work-stealing/liveness/resume surface is directly
//! drivable from deterministic tests: the fabric proptest runs real
//! sweeps through simulated workers against this exact type.
//!
//! # Why byte-identity survives all of this
//!
//! Chunks partition each sweep's global index space into contiguous
//! ranges. [`SweepReport::merge`] is associative and commutative with
//! lowest-global-index witness tie-breaks, so *any* assignment of
//! chunks to workers — including a chunk executed twice because its
//! first worker was declared dead while merely slow — folds to the same
//! bytes as the direct sweep. Duplicate results are discarded by range
//! identity; a reassigned range is re-leased at exactly its original
//! `[lo, hi)`, never split or shifted.

use crate::checkpoint::CheckpointRecord;
use crate::error::FabricError;
use rendezvous_runner::{SweepReport, WorkloadMeta};
use std::collections::{BTreeMap, VecDeque};

/// A worker's identity on the fabric (its process id).
pub type WorkerId = u64;

/// Dispatch tuning for a [`Coordinator`].
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorConfig {
    /// How many workers the driver launched — the auto-chunker's input.
    pub workers: usize,
    /// Lease chunk size in workload units; `0` picks one automatically
    /// (about eight chunks per worker, so uneven pieces still balance
    /// while tiny sweeps are not shredded into per-unit frames).
    pub chunk: usize,
    /// Silence budget: a worker unheard-from for longer than this has
    /// its in-flight leases requeued.
    pub lease_timeout_ms: u64,
}

impl Default for CoordinatorConfig {
    fn default() -> CoordinatorConfig {
        CoordinatorConfig {
            workers: 1,
            chunk: 0,
            lease_timeout_ms: 5_000,
        }
    }
}

/// The coordinator's answer to a lease request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseReply {
    /// Execute global range `[lo, hi)` of the requested sweep.
    Range {
        /// Inclusive global start index.
        lo: usize,
        /// Exclusive global end index.
        hi: usize,
    },
    /// Nothing leasable, sweep not complete — poll again shortly.
    Wait,
    /// Every range of the requested sweep is done.
    Complete,
}

/// Run counters surfaced to the driver after the merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Sweeps registered.
    pub sweeps: usize,
    /// Lease chunks across all sweeps (resumed ranges included).
    pub chunks: usize,
    /// Ranges requeued after their worker went silent or vanished.
    pub reassigned: usize,
    /// Duplicate results discarded (a "dead" worker turned out slow).
    pub duplicates: usize,
    /// Ranges satisfied from the checkpoint instead of executed.
    pub resumed: usize,
    /// Workers whose connection or deadline declared them lost.
    pub workers_lost: usize,
}

#[derive(Debug)]
enum Slot {
    Pending,
    Leased(WorkerId),
    Done(Box<SweepReport>),
}

#[derive(Debug)]
struct Chunk {
    lo: usize,
    hi: usize,
    slot: Slot,
}

#[derive(Debug)]
struct SweepState {
    meta: WorkloadMeta,
    /// Contiguous partition of `[0, meta.size)`, sorted by `lo`.
    chunks: Vec<Chunk>,
    /// Indices into `chunks` still leasable.
    queue: VecDeque<usize>,
    done: usize,
}

#[derive(Debug)]
struct WorkerState {
    last_seen_ms: u64,
    alive: bool,
    finished: bool,
    /// `(sweep, chunk index)` pairs this worker currently holds.
    leases: Vec<(usize, usize)>,
}

/// The fabric's dispatch state: sweeps, chunk partitions, lease
/// ownership, worker liveness. See the [module docs](self) for the
/// determinism argument.
#[derive(Debug)]
pub struct Coordinator {
    cfg: CoordinatorConfig,
    sweeps: Vec<SweepState>,
    workers: BTreeMap<WorkerId, WorkerState>,
    /// Checkpointed completed ranges, consumed as their sweeps register.
    resume: BTreeMap<usize, Vec<CheckpointRecord>>,
    stats: FabricStats,
}

impl Coordinator {
    /// Creates a coordinator, seeding it with the completed ranges of a
    /// prior run's checkpoint (empty slice for a fresh run).
    #[must_use]
    pub fn new(cfg: CoordinatorConfig, checkpoint: Vec<CheckpointRecord>) -> Coordinator {
        let mut resume: BTreeMap<usize, Vec<CheckpointRecord>> = BTreeMap::new();
        let mut resumed = 0;
        for rec in checkpoint {
            resumed += 1;
            resume.entry(rec.sweep).or_default().push(rec);
        }
        Coordinator {
            cfg,
            sweeps: Vec::new(),
            workers: BTreeMap::new(),
            resume,
            stats: FabricStats {
                resumed,
                ..FabricStats::default()
            },
        }
    }

    /// Records proof of life from `worker` at `now_ms`, registering it
    /// on first contact. A worker previously declared lost that speaks
    /// again is revived — its requeued ranges stay requeued, but its
    /// future results are welcome (and idempotent).
    pub fn touch(&mut self, worker: WorkerId, now_ms: u64) {
        let state = self.workers.entry(worker).or_insert(WorkerState {
            last_seen_ms: now_ms,
            alive: true,
            finished: false,
            leases: Vec::new(),
        });
        state.last_seen_ms = now_ms;
        state.alive = true;
    }

    /// Handles a lease request: `worker` is at position `sweep` of the
    /// sweep sequence and fingerprints it as `meta`.
    ///
    /// The first request naming a sweep registers it, carving its chunk
    /// partition around any checkpointed ranges; later requests must
    /// agree on the fingerprint.
    ///
    /// # Errors
    ///
    /// [`FabricError::MetaMismatch`] on fingerprint disagreement,
    /// [`FabricError::Protocol`] for out-of-order sweep registration,
    /// [`FabricError::Checkpoint`] if the checkpointed ranges for this
    /// sweep are unusable.
    pub fn request(
        &mut self,
        worker: WorkerId,
        sweep: usize,
        meta: WorkloadMeta,
        now_ms: u64,
    ) -> Result<LeaseReply, FabricError> {
        self.touch(worker, now_ms);
        self.ensure_sweep(sweep, meta)?;
        let state = &mut self.sweeps[sweep];
        while let Some(idx) = state.queue.pop_front() {
            let chunk = &mut state.chunks[idx];
            if matches!(chunk.slot, Slot::Done(_)) {
                // Stale queue entry: the chunk was requeued after its
                // holder went silent, and the holder's late (zombie)
                // result then landed anyway. The fold is already in;
                // re-leasing it would double-count completion.
                continue;
            }
            chunk.slot = Slot::Leased(worker);
            let (lo, hi) = (chunk.lo, chunk.hi);
            self.workers
                .get_mut(&worker)
                .expect("touched above")
                .leases
                .push((sweep, idx));
            return Ok(LeaseReply::Range { lo, hi });
        }
        if state.done == state.chunks.len() {
            Ok(LeaseReply::Complete)
        } else {
            Ok(LeaseReply::Wait)
        }
    }

    /// Accepts the fold of leased range `[lo, hi)` of `sweep`.
    ///
    /// Returns the record to append to the checkpoint, or `None` when
    /// the result is a duplicate of an already-completed range (a
    /// requeue raced a slow worker) — duplicates are byte-identical by
    /// determinism, so either copy is *the* fold and the second is
    /// simply dropped.
    ///
    /// # Errors
    ///
    /// [`FabricError::Protocol`] if the range is not a chunk of the
    /// sweep's partition.
    pub fn result(
        &mut self,
        sweep: usize,
        lo: usize,
        hi: usize,
        report: SweepReport,
    ) -> Result<Option<CheckpointRecord>, FabricError> {
        let state = self
            .sweeps
            .get_mut(sweep)
            .ok_or_else(|| FabricError::Protocol(format!("result for unknown sweep #{sweep}")))?;
        let idx = state
            .chunks
            .binary_search_by(|c| c.lo.cmp(&lo))
            .map_err(|_| {
                FabricError::Protocol(format!(
                    "result range [{lo}, {hi}) is not on sweep #{sweep}'s chunk partition"
                ))
            })?;
        let chunk = &mut state.chunks[idx];
        if chunk.hi != hi {
            return Err(FabricError::Protocol(format!(
                "result range [{lo}, {hi}) disagrees with leased chunk [{lo}, {})",
                chunk.hi
            )));
        }
        if matches!(chunk.slot, Slot::Done(_)) {
            self.stats.duplicates += 1;
            return Ok(None);
        }
        chunk.slot = Slot::Done(Box::new(report.clone()));
        state.done += 1;
        let meta = state.meta;
        for w in self.workers.values_mut() {
            w.leases.retain(|&(s, i)| !(s == sweep && i == idx));
        }
        Ok(Some(CheckpointRecord {
            sweep,
            lo,
            hi,
            meta,
            report,
        }))
    }

    /// Requeues the in-flight ranges of every live worker silent for
    /// longer than the lease timeout as of `now_ms`. Returns how many
    /// ranges were requeued.
    pub fn expire(&mut self, now_ms: u64) -> usize {
        let deadline = self.cfg.lease_timeout_ms;
        let lost: Vec<WorkerId> = self
            .workers
            .iter()
            .filter(|(_, w)| {
                w.alive && !w.finished && now_ms.saturating_sub(w.last_seen_ms) > deadline
            })
            .map(|(&id, _)| id)
            .collect();
        lost.into_iter().map(|id| self.worker_lost(id)).sum()
    }

    /// Declares `worker` lost right now (its connection closed),
    /// requeueing its in-flight ranges. Returns how many were requeued.
    /// A no-op for workers that already finished cleanly.
    pub fn worker_lost(&mut self, worker: WorkerId) -> usize {
        let Some(state) = self.workers.get_mut(&worker) else {
            return 0;
        };
        if state.finished {
            return 0;
        }
        if state.alive {
            state.alive = false;
            self.stats.workers_lost += 1;
        }
        let leases = std::mem::take(&mut state.leases);
        let requeued = leases.len();
        for &(sweep, idx) in leases.iter().rev() {
            let chunk = &mut self.sweeps[sweep].chunks[idx];
            debug_assert!(matches!(chunk.slot, Slot::Leased(w) if w == worker));
            chunk.slot = Slot::Pending;
            // Requeue at the front: the range has been waiting longest,
            // and a worker stuck in Wait on this sweep unblocks on its
            // very next poll.
            self.sweeps[sweep].queue.push_front(idx);
        }
        self.stats.reassigned += requeued;
        requeued
    }

    /// Marks `worker` cleanly finished: it walked the whole sweep
    /// sequence. Any lease it somehow still holds (a protocol oddity,
    /// not the normal path) is requeued first — without counting the
    /// worker as lost.
    pub fn worker_finished(&mut self, worker: WorkerId) {
        let Some(state) = self.workers.get_mut(&worker) else {
            return;
        };
        let leases = std::mem::take(&mut state.leases);
        state.finished = true;
        state.alive = true;
        self.stats.reassigned += leases.len();
        for &(sweep, idx) in leases.iter().rev() {
            self.sweeps[sweep].chunks[idx].slot = Slot::Pending;
            self.sweeps[sweep].queue.push_front(idx);
        }
    }

    /// True when every registered sweep's every chunk is done.
    #[must_use]
    pub fn all_complete(&self) -> bool {
        self.sweeps.iter().all(|s| s.done == s.chunks.len())
    }

    /// Chunks leased or pending, across all sweeps.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.sweeps.iter().map(|s| s.chunks.len() - s.done).sum()
    }

    /// Run counters for the driver's diagnostics.
    #[must_use]
    pub fn stats(&self) -> FabricStats {
        FabricStats {
            sweeps: self.sweeps.len(),
            chunks: self.sweeps.iter().map(|s| s.chunks.len()).sum(),
            ..self.stats
        }
    }

    /// Folds every sweep's chunk reports, in ascending range order, into
    /// the per-sweep merged reports — the exact payload the shard
    /// ledger's replay path renders.
    ///
    /// # Errors
    ///
    /// [`FabricError::Incomplete`] if any chunk never completed.
    pub fn merged(&self) -> Result<Vec<(WorkloadMeta, SweepReport)>, FabricError> {
        let outstanding = self.outstanding();
        if outstanding > 0 {
            return Err(FabricError::Incomplete { outstanding });
        }
        Ok(self
            .sweeps
            .iter()
            .map(|s| {
                let mut merged = SweepReport::default();
                for chunk in &s.chunks {
                    match &chunk.slot {
                        Slot::Done(report) => merged = merged.merge(report),
                        _ => unreachable!("outstanding() == 0 guarantees all chunks are done"),
                    }
                }
                (s.meta, merged)
            })
            .collect())
    }

    /// Registers sweep `sweep` (fingerprint `meta`) if it is the next
    /// unregistered one, or checks the fingerprint if already known.
    fn ensure_sweep(&mut self, sweep: usize, meta: WorkloadMeta) -> Result<(), FabricError> {
        if let Some(state) = self.sweeps.get(sweep) {
            if state.meta != meta {
                return Err(FabricError::MetaMismatch {
                    sweep,
                    expected: state.meta.fingerprint(),
                    found: meta.fingerprint(),
                });
            }
            return Ok(());
        }
        if sweep != self.sweeps.len() {
            // Workers walk the sweep sequence densely in order, so the
            // first request for sweep k always follows sweep k-1.
            return Err(FabricError::Protocol(format!(
                "sweep #{sweep} requested before sweep #{}",
                self.sweeps.len()
            )));
        }
        let done_ranges = self.resume.remove(&sweep).unwrap_or_default();
        let state = build_sweep(sweep, meta, self.chunk_for(meta.size), done_ranges)?;
        self.sweeps.push(state);
        Ok(())
    }

    fn chunk_for(&self, size: usize) -> usize {
        if self.cfg.chunk > 0 {
            self.cfg.chunk
        } else {
            size.div_ceil(self.cfg.workers.max(1) * 8).max(1)
        }
    }
}

/// Carves sweep `sweep`'s partition: checkpointed ranges become `Done`
/// chunks as-is; the gaps between them are cut into `chunk`-sized
/// `Pending` chunks.
fn build_sweep(
    sweep: usize,
    meta: WorkloadMeta,
    chunk: usize,
    mut done: Vec<CheckpointRecord>,
) -> Result<SweepState, FabricError> {
    done.sort_by_key(|r| r.lo);
    let mut chunks = Vec::new();
    let mut queue = VecDeque::new();
    let mut cursor = 0usize;
    for rec in done {
        if rec.meta != meta {
            return Err(FabricError::Checkpoint(format!(
                "sweep #{sweep}: record fingerprint {} disagrees with the run's {}",
                rec.meta.fingerprint(),
                meta.fingerprint()
            )));
        }
        if rec.lo < cursor || rec.hi > meta.size || rec.lo >= rec.hi {
            return Err(FabricError::Checkpoint(format!(
                "sweep #{sweep}: range [{}, {}) overlaps a neighbor or exceeds size {}",
                rec.lo, rec.hi, meta.size
            )));
        }
        carve_gap(cursor, rec.lo, chunk, &mut chunks, &mut queue);
        chunks.push(Chunk {
            lo: rec.lo,
            hi: rec.hi,
            slot: Slot::Done(Box::new(rec.report)),
        });
        cursor = rec.hi;
    }
    carve_gap(cursor, meta.size, chunk, &mut chunks, &mut queue);
    let done_count = chunks
        .iter()
        .filter(|c| matches!(c.slot, Slot::Done(_)))
        .count();
    Ok(SweepState {
        meta,
        chunks,
        queue,
        done: done_count,
    })
}

fn carve_gap(
    lo: usize,
    hi: usize,
    chunk: usize,
    chunks: &mut Vec<Chunk>,
    queue: &mut VecDeque<usize>,
) {
    let mut at = lo;
    while at < hi {
        let end = (at + chunk).min(hi);
        queue.push_back(chunks.len());
        chunks.push(Chunk {
            lo: at,
            hi: end,
            slot: Slot::Pending,
        });
        at = end;
    }
}
