//! The coordinator's socket front end: a loopback TCP listener, one
//! handler thread per worker connection, and the supervisor that ties
//! their lifetimes together.
//!
//! All dispatch *decisions* live in the pure [`Coordinator`]; this
//! module only moves frames, ticks the liveness clock, and appends
//! checkpoint records. Time comes exclusively from one
//! [`Stopwatch`](rendezvous_telemetry::Stopwatch) started at server
//! launch — the telemetry crate's sanctioned wall-clock wrapper — so the
//! fabric adds no new raw clock reads to the workspace (the analyze
//! linter's D4 rule stays tight).

use crate::checkpoint::{CheckpointRecord, CheckpointWriter};
use crate::coordinator::{Coordinator, CoordinatorConfig, FabricStats, LeaseReply, WorkerId};
use crate::error::FabricError;
use crate::protocol::{Message, PROTOCOL_VERSION};
use crate::wire::{read_frame, write_frame};
use rendezvous_runner::{SweepReport, WorkloadMeta};
use rendezvous_telemetry::{Stopwatch, TelemetrySnapshot};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long a handler blocks on its socket before ticking the expiry
/// check and the stop flag.
const READ_TICK: Duration = Duration::from_millis(100);

/// Supervisor accept-poll cadence.
const ACCEPT_TICK: Duration = Duration::from_millis(10);

/// Everything the server needs beyond [`CoordinatorConfig`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Dispatch tuning, passed through to the [`Coordinator`].
    pub coordinator: CoordinatorConfig,
    /// Where to append completed-range records (`None`: no checkpoint).
    pub checkpoint: Option<PathBuf>,
    /// Completed ranges loaded from a prior run's checkpoint.
    pub resume: Vec<CheckpointRecord>,
}

/// What a completed fabric run hands the driver.
#[derive(Debug)]
pub struct FabricOutcome {
    /// Per-sweep `(fingerprint, merged fold)` in sweep-sequence order —
    /// ready to become the replay ledger.
    pub sweeps: Vec<(WorkloadMeta, SweepReport)>,
    /// The merge of every finished worker's telemetry snapshot.
    pub telemetry: TelemetrySnapshot,
    /// Dispatch counters (reassignments, duplicates, resumed ranges).
    pub stats: FabricStats,
}

struct Shared {
    coordinator: Mutex<Coordinator>,
    checkpoint: Mutex<Option<CheckpointWriter>>,
    telemetry: Mutex<TelemetrySnapshot>,
    /// First failure recorded by any handler.
    error: Mutex<Option<FabricError>>,
    stop: AtomicBool,
    /// The run's single clock: milliseconds since server launch.
    clock: Stopwatch,
}

impl Shared {
    fn record_error(&self, e: FabricError) {
        let mut slot = self.error.lock().expect("fabric error lock");
        if slot.is_none() {
            *slot = Some(e);
        }
    }
}

/// A running coordinator endpoint. Workers connect to [`addr`](Self::addr);
/// the driver calls [`join`](Self::join) once every worker process has
/// exited.
pub struct FabricServer {
    shared: Arc<Shared>,
    addr: String,
    supervisor: std::thread::JoinHandle<()>,
}

impl FabricServer {
    /// Binds a loopback listener on an ephemeral port and starts serving.
    ///
    /// # Errors
    ///
    /// [`FabricError::Checkpoint`] if the checkpoint file cannot be
    /// opened for append; [`FabricError::Wire`] if the listener cannot
    /// bind.
    pub fn start(cfg: ServerConfig) -> Result<FabricServer, FabricError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?.to_string();
        let writer = match &cfg.checkpoint {
            Some(path) => Some(CheckpointWriter::append_to(path)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            coordinator: Mutex::new(Coordinator::new(cfg.coordinator, cfg.resume)),
            checkpoint: Mutex::new(writer),
            telemetry: Mutex::new(TelemetrySnapshot::empty()),
            error: Mutex::new(None),
            stop: AtomicBool::new(false),
            clock: Stopwatch::start(),
        });
        let sup_shared = Arc::clone(&shared);
        // analyze: allow(d5) — connection supervisor, not a fold: sweep order lives in global indices
        let supervisor = std::thread::spawn(move || supervise(&listener, &sup_shared));
        Ok(FabricServer {
            shared,
            addr,
            supervisor,
        })
    }

    /// The `host:port` workers should connect to.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stops serving and evaluates the run: every worker process should
    /// already have exited.
    ///
    /// # Errors
    ///
    /// The first failure any handler recorded, or
    /// [`FabricError::Incomplete`] if ranges remain unfinished (all
    /// workers died), with priority to the recorded failure — it is the
    /// cause, incompleteness the symptom.
    pub fn join(self) -> Result<FabricOutcome, FabricError> {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.supervisor.join().expect("fabric supervisor panicked");
        let coordinator = self
            .shared
            .coordinator
            .lock()
            .expect("fabric coordinator lock");
        let merged = coordinator.merged();
        let stats = coordinator.stats();
        drop(coordinator);
        let error = self.shared.error.lock().expect("fabric error lock").take();
        match merged {
            Ok(sweeps) => {
                let telemetry = self
                    .shared
                    .telemetry
                    .lock()
                    .expect("fabric telemetry lock")
                    .clone();
                Ok(FabricOutcome {
                    sweeps,
                    telemetry,
                    stats,
                })
            }
            Err(incomplete) => Err(error.unwrap_or(incomplete)),
        }
    }
}

/// Accept loop: spawns one handler per connection, ticks lease expiry,
/// and drains handlers when the stop flag rises.
fn supervise(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut handlers = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(shared);
                // analyze: allow(d5) — per-connection frame pump; folds happen index-keyed in the coordinator
                handlers.push(std::thread::spawn(move || handle(stream, &conn_shared)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let now = shared.clock.elapsed_ms();
                shared
                    .coordinator
                    .lock()
                    .expect("fabric coordinator lock")
                    .expire(now);
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(e) => {
                shared.record_error(FabricError::from(e));
                break;
            }
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// One worker's connection: reads frames until EOF, error, or stop;
/// every decision is delegated to the [`Coordinator`].
fn handle(mut stream: TcpStream, shared: &Arc<Shared>) {
    if let Err(e) = stream.set_read_timeout(Some(READ_TICK)) {
        shared.record_error(FabricError::from(e));
        return;
    }
    let mut worker: Option<WorkerId> = None;
    let mut finished = false;
    loop {
        match read_frame(&mut stream) {
            Ok(Some(msg)) => match dispatch(msg, &mut stream, shared, &mut worker, &mut finished) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => {
                    let refusal = Message::Fault {
                        message: e.to_string(),
                    };
                    let _ = write_frame(&mut stream, &refusal);
                    shared.record_error(e);
                    break;
                }
            },
            Ok(None) => break,
            Err(e) if e.is_timeout() => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let now = shared.clock.elapsed_ms();
                shared
                    .coordinator
                    .lock()
                    .expect("fabric coordinator lock")
                    .expire(now);
            }
            Err(e) => {
                // A worker that died mid-frame: surface the wire error
                // only if the run cannot absorb the loss — the lease
                // requeue below is the normal recovery.
                if !finished {
                    shared.record_error(FabricError::Wire(e));
                }
                break;
            }
        }
    }
    if let Some(id) = worker {
        if !finished {
            let now = shared.clock.elapsed_ms();
            let mut coordinator = shared.coordinator.lock().expect("fabric coordinator lock");
            coordinator.touch(id, now);
            coordinator.worker_lost(id);
        }
    }
}

/// Processes one frame. Returns `Ok(true)` to keep reading, `Ok(false)`
/// for an orderly end of conversation.
fn dispatch(
    msg: Message,
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    worker: &mut Option<WorkerId>,
    finished: &mut bool,
) -> Result<bool, FabricError> {
    let now = shared.clock.elapsed_ms();
    match msg {
        Message::Hello {
            version,
            worker: id,
        } => {
            if version != PROTOCOL_VERSION {
                return Err(FabricError::Protocol(format!(
                    "worker {id} speaks protocol v{version}, coordinator v{PROTOCOL_VERSION}"
                )));
            }
            *worker = Some(id);
            shared
                .coordinator
                .lock()
                .expect("fabric coordinator lock")
                .touch(id, now);
            Ok(true)
        }
        Message::Request { sweep, meta } => {
            let id =
                worker.ok_or_else(|| FabricError::Protocol("Request before Hello".to_string()))?;
            let reply = shared
                .coordinator
                .lock()
                .expect("fabric coordinator lock")
                .request(id, sweep, meta, now)?;
            let frame = match reply {
                LeaseReply::Range { lo, hi } => Message::Lease { sweep, lo, hi },
                LeaseReply::Wait => Message::Wait,
                LeaseReply::Complete => Message::SweepComplete { sweep },
            };
            write_frame(stream, &frame)?;
            Ok(true)
        }
        Message::Result {
            sweep,
            lo,
            hi,
            report,
        } => {
            let record = shared
                .coordinator
                .lock()
                .expect("fabric coordinator lock")
                .result(sweep, lo, hi, report)?;
            if let Some(record) = record {
                let mut writer = shared.checkpoint.lock().expect("fabric checkpoint lock");
                if let Some(writer) = writer.as_mut() {
                    writer.append(&record)?;
                }
            }
            Ok(true)
        }
        Message::Heartbeat => {
            if let Some(id) = *worker {
                shared
                    .coordinator
                    .lock()
                    .expect("fabric coordinator lock")
                    .touch(id, now);
            }
            Ok(true)
        }
        Message::Finished { telemetry } => {
            let id =
                worker.ok_or_else(|| FabricError::Protocol("Finished before Hello".to_string()))?;
            shared
                .coordinator
                .lock()
                .expect("fabric coordinator lock")
                .worker_finished(id);
            let mut merged = shared.telemetry.lock().expect("fabric telemetry lock");
            *merged = merged.merge(&telemetry);
            *finished = true;
            Ok(true)
        }
        Message::Fault { message } => {
            Err(FabricError::Protocol(format!("worker reported: {message}")))
        }
        other => Err(FabricError::Protocol(format!(
            "coordinator received a coordinator-only frame: {}",
            other.tag()
        ))),
    }
}
