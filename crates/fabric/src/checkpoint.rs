//! Checkpoint/resume: one JSONL line per completed lease range.
//!
//! The coordinator appends a [`CheckpointRecord`] the moment it accepts
//! a range's fold, so a killed coordinator can be relaunched against the
//! same file and carve every already-done range out of its dispatch
//! plan — zero completed units re-run, verified end to end via the
//! `scenarios_executed` telemetry counter staying at zero on a resume of
//! a finished run.
//!
//! Each record carries exactly the `(meta, report)` pair that the shard
//! ledger's `LedgerRecord::new` consumes, so a checkpoint stream is a
//! per-range refinement of the per-shard ledger format: same fingerprint
//! discipline, same fold payloads, finer grain. Only the final line of
//! the file may be damaged (the append that was in flight when the
//! coordinator died); damage anywhere earlier is refused as corruption
//! rather than silently skipped.

use crate::error::FabricError;
use rendezvous_runner::{SweepReport, WorkloadMeta};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};

/// One completed lease range: which sweep, which global range, the
/// sweep's fingerprint, and the range's fold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointRecord {
    /// Position in the run's sweep sequence.
    pub sweep: usize,
    /// Inclusive global start index of the completed range.
    pub lo: usize,
    /// Exclusive global end index.
    pub hi: usize,
    /// Fingerprint of the sweep's workload — resume refuses a checkpoint
    /// whose fingerprints disagree with the run it is resuming.
    pub meta: WorkloadMeta,
    /// The fold of `[lo, hi)`, at global indices.
    pub report: SweepReport,
}

/// Parses a checkpoint file's text into records.
///
/// A malformed or half-written **final** line is tolerated (it is the
/// append interrupted by the coordinator's death — its range simply
/// re-runs); malformed content anywhere else is corruption and is
/// refused.
///
/// # Errors
///
/// [`FabricError::Checkpoint`] on non-trailing damage.
pub fn parse(text: &str) -> Result<Vec<CheckpointRecord>, FabricError> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut records = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match serde_json::from_str::<CheckpointRecord>(line) {
            Ok(rec) => records.push(rec),
            Err(e) if i + 1 == lines.len() => {
                // The interrupted trailing append: drop it, its range
                // was never acknowledged as done.
                let _ = e;
                break;
            }
            Err(e) => {
                return Err(FabricError::Checkpoint(format!(
                    "line {} is damaged mid-file: {e}",
                    i + 1
                )))
            }
        }
    }
    Ok(records)
}

/// Loads a checkpoint file; a missing file is an empty checkpoint (the
/// first run).
///
/// # Errors
///
/// [`FabricError::Checkpoint`] for unreadable or mid-file-damaged
/// content.
pub fn load(path: &Path) -> Result<Vec<CheckpointRecord>, FabricError> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(FabricError::Checkpoint(format!(
            "cannot read {}: {e}",
            path.display()
        ))),
    }
}

/// Appends records to a checkpoint file as they complete, one JSONL line
/// per record, flushed per line so a kill loses at most the line in
/// flight.
#[derive(Debug)]
pub struct CheckpointWriter {
    path: PathBuf,
    file: std::fs::File,
}

impl CheckpointWriter {
    /// Opens `path` for appending (creating it if absent).
    ///
    /// # Errors
    ///
    /// [`FabricError::Checkpoint`] if the file cannot be opened.
    pub fn append_to(path: &Path) -> Result<CheckpointWriter, FabricError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| FabricError::Checkpoint(format!("cannot open {}: {e}", path.display())))?;
        Ok(CheckpointWriter {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Writes one record as a line and flushes it.
    ///
    /// # Errors
    ///
    /// [`FabricError::Checkpoint`] if the write fails — the run aborts
    /// rather than continue with a checkpoint that silently stopped
    /// recording.
    pub fn append(&mut self, record: &CheckpointRecord) -> Result<(), FabricError> {
        let mut line = serde_json::to_string(record).expect("checkpoint records always serialize");
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| {
                FabricError::Checkpoint(format!("append to {} failed: {e}", self.path.display()))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_runner::WorkloadKind;

    fn record(sweep: usize, lo: usize, hi: usize) -> CheckpointRecord {
        CheckpointRecord {
            sweep,
            lo,
            hi,
            meta: WorkloadMeta {
                kind: WorkloadKind::Grid,
                digest: 0xfeed,
                full_size: 100,
                size: 100,
            },
            report: SweepReport::default(),
        }
    }

    fn lines(records: &[CheckpointRecord]) -> String {
        records
            .iter()
            .map(|r| serde_json::to_string(r).unwrap() + "\n")
            .collect()
    }

    #[test]
    fn round_trips_records_in_order() {
        let written = vec![record(0, 0, 10), record(0, 10, 20), record(1, 0, 5)];
        let parsed = parse(&lines(&written)).unwrap();
        assert_eq!(parsed.len(), 3);
        for (got, want) in parsed.iter().zip(&written) {
            assert_eq!((got.sweep, got.lo, got.hi), (want.sweep, want.lo, want.hi));
        }
    }

    #[test]
    fn a_damaged_trailing_line_is_the_interrupted_append() {
        let mut text = lines(&[record(0, 0, 10), record(0, 10, 20)]);
        text.push_str(r#"{"sweep":0,"lo":20,"hi":3"#); // kill -9 mid-append
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.len(), 2, "only the in-flight range is dropped");
        assert_eq!(parsed[1].hi, 20);
    }

    #[test]
    fn damage_mid_file_is_corruption_not_a_skip() {
        let good = lines(&[record(0, 0, 10)]);
        let text = format!("{good}garbage line\n{}", lines(&[record(0, 10, 20)]));
        assert!(matches!(
            parse(&text),
            Err(FabricError::Checkpoint(msg)) if msg.contains("line 2")
        ));
    }

    #[test]
    fn blank_lines_are_ignored_and_a_missing_file_is_empty() {
        assert!(parse("\n\n  \n").unwrap().is_empty());
        let path = std::env::temp_dir().join(format!(
            "rendezvous-fabric-no-such-checkpoint-{}",
            std::process::id()
        ));
        assert!(load(&path).unwrap().is_empty());
    }

    #[test]
    fn writer_appends_flushed_lines_that_parse_back() {
        let path = std::env::temp_dir().join(format!(
            "rendezvous-fabric-ckpt-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut writer = CheckpointWriter::append_to(&path).unwrap();
        writer.append(&record(0, 0, 10)).unwrap();
        writer.append(&record(0, 10, 20)).unwrap();
        drop(writer);
        // A second writer appends to the same file, as a resumed
        // coordinator does.
        let mut writer = CheckpointWriter::append_to(&path).unwrap();
        writer.append(&record(1, 0, 5)).unwrap();
        drop(writer);
        let parsed = load(&path).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!((parsed[2].sweep, parsed[2].hi), (1, 5));
        let _ = std::fs::remove_file(&path);
    }
}
