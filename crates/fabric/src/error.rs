//! Typed failures for the fabric: wire-level corruption, protocol
//! violations, checkpoint damage, and incomplete runs each get their own
//! variant so drivers and tests can assert on the *kind* of failure, not
//! on message text.

use std::fmt;

/// A defect in the length-framed byte stream itself — the frame never
/// became a [`Message`](crate::Message).
///
/// Every variant is terminal for its connection: the reader cannot
/// resynchronize a corrupt length-prefixed stream, so the peer is
/// treated as lost and its leases requeued.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket read or write failed.
    Io(std::io::Error),
    /// A length prefix exceeded [`MAX_FRAME`](crate::wire::MAX_FRAME) —
    /// either corruption or a hostile peer; the frame is not read.
    Oversized {
        /// The declared payload length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The stream ended (or stalled past the retry budget) mid-frame:
    /// `got` of the `expected` bytes arrived. A clean close lands
    /// *between* frames and is not an error.
    Truncated {
        /// Bytes the frame still owed.
        expected: usize,
        /// Bytes that actually arrived.
        got: usize,
    },
    /// The payload was not valid UTF-8 JSON for any protocol message.
    Malformed(String),
}

impl WireError {
    /// True when this is a read-timeout tick (no bytes arrived inside
    /// the socket's read timeout) rather than a real failure — the
    /// server's per-connection loop uses these ticks to run lease-expiry
    /// checks between frames.
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte cap")
            }
            WireError::Truncated { expected, got } => {
                write!(f, "stream ended mid-frame: got {got} of {expected} bytes")
            }
            WireError::Malformed(why) => write!(f, "malformed frame payload: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// Any failure of the fabric above the byte level.
#[derive(Debug)]
pub enum FabricError {
    /// The connection's byte stream broke (see [`WireError`]).
    Wire(WireError),
    /// A peer sent a frame the protocol does not allow in its current
    /// state (unknown sweep index, lease range off the chunk partition,
    /// reply without a request, ...).
    Protocol(String),
    /// Coordinator and worker disagree about what sweep `sweep` *is* —
    /// their workload fingerprints differ, so no range of it may be
    /// leased. Usually a driver bug: workers launched with different
    /// selection flags than the coordinator expects.
    MetaMismatch {
        /// The sweep's position in the run's sweep sequence.
        sweep: usize,
        /// The fingerprint the coordinator registered first.
        expected: String,
        /// The conflicting fingerprint.
        found: String,
    },
    /// The checkpoint stream is unusable for this run (fingerprint
    /// mismatch, overlapping ranges, range off the end of the sweep).
    Checkpoint(String),
    /// The run ended with unfinished ranges — workers died faster than
    /// their leases could be reassigned to live ones.
    Incomplete {
        /// Chunks never completed, across all sweeps.
        outstanding: usize,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Wire(e) => write!(f, "{e}"),
            FabricError::Protocol(why) => write!(f, "protocol violation: {why}"),
            FabricError::MetaMismatch {
                sweep,
                expected,
                found,
            } => write!(
                f,
                "sweep #{sweep} fingerprint mismatch: coordinator has {expected}, peer sent {found}"
            ),
            FabricError::Checkpoint(why) => write!(f, "checkpoint unusable: {why}"),
            FabricError::Incomplete { outstanding } => write!(
                f,
                "run incomplete: {outstanding} leased range(s) never completed"
            ),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<WireError> for FabricError {
    fn from(e: WireError) -> FabricError {
        FabricError::Wire(e)
    }
}

impl From<std::io::Error> for FabricError {
    fn from(e: std::io::Error) -> FabricError {
        FabricError::Wire(WireError::Io(e))
    }
}
