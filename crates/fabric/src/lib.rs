//! Distributed sweep fabric: a coordinator/worker engine that spreads
//! one deterministic sweep sequence across worker processes — with
//! work-stealing dispatch, heartbeat liveness, and checkpoint/resume —
//! while keeping the merged output **byte-identical** to the direct run.
//!
//! # Shape
//!
//! ```text
//! driver (experiments --fabric workers=N)
//!   ├─ FabricServer ── Coordinator (pure lease state machine)
//!   │      ▲ loopback TCP, length-framed JSON (wire/protocol)
//!   └─ N × worker process (experiments --fabric-worker ADDR)
//!          └─ WorkerClient: Request → Lease → Runner::sweep_range → Result
//! ```
//!
//! Every worker walks the same experiment sequence the direct run
//! would, so coordinator and workers agree on sweep numbering and
//! workload fingerprints without any central plan file. The coordinator
//! cuts each sweep's global index space into small lease chunks
//! ([`Workload::lease_ranges`](rendezvous_runner::Workload::lease_ranges))
//! served from a deque — workers that land cheap ranges simply come
//! back sooner, so uneven topology pieces balance themselves.
//!
//! Liveness is heartbeats plus deadline expiry: a worker silent past
//! the lease timeout (or whose connection drops — the fast path for a
//! SIGKILL) has its in-flight ranges requeued, each at exactly its
//! original `[lo, hi)`. Results are idempotent by range identity, and
//! [`SweepReport::merge`](rendezvous_runner::SweepReport::merge) is
//! associative with lowest-global-index tie-breaks, so reassignment and
//! even duplicated execution cannot perturb a byte of the output.
//!
//! Checkpoint/resume appends one JSONL [`CheckpointRecord`] per
//! completed range; a relaunched coordinator carves those ranges out of
//! its dispatch plan and re-runs zero completed units.
//!
//! The dispatch logic is deliberately split from the sockets:
//! [`Coordinator`] sees only calls and millisecond timestamps, which is
//! what lets the determinism proptest drive real sweeps through
//! simulated worker schedules (interleavings, kills, zombie returns)
//! without a network in sight.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod coordinator;
pub mod error;
pub mod protocol;
pub mod server;
pub mod wire;
pub mod worker;

pub use checkpoint::{CheckpointRecord, CheckpointWriter};
pub use coordinator::{Coordinator, CoordinatorConfig, FabricStats, LeaseReply, WorkerId};
pub use error::{FabricError, WireError};
pub use protocol::{Message, PROTOCOL_VERSION};
pub use server::{FabricOutcome, FabricServer, ServerConfig};
pub use worker::WorkerClient;
