//! Wire-protocol robustness: every way a byte stream can go wrong —
//! truncation, oversized prefixes, garbage, half-close, stalls — must
//! surface as a clean typed [`WireError`], never a hang and never a
//! partially-parsed message.

use rendezvous_fabric::wire::{read_frame, write_frame, MAX_FRAME};
use rendezvous_fabric::{Message, WireError, PROTOCOL_VERSION};
use rendezvous_runner::{SweepReport, WorkloadKind, WorkloadMeta};
use rendezvous_telemetry::TelemetrySnapshot;
use std::io::{Cursor, Read};

fn meta() -> WorkloadMeta {
    WorkloadMeta {
        kind: WorkloadKind::Grid,
        digest: 0xdead_beef,
        full_size: 1200,
        size: 600,
    }
}

fn encode(msg: &Message) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, msg).expect("in-memory write");
    buf
}

#[test]
fn every_message_round_trips() {
    let messages = vec![
        Message::Hello {
            version: PROTOCOL_VERSION,
            worker: 4242,
        },
        Message::Request {
            sweep: 3,
            meta: meta(),
        },
        Message::Lease {
            sweep: 3,
            lo: 75,
            hi: 150,
        },
        Message::Wait,
        Message::SweepComplete { sweep: 3 },
        Message::Result {
            sweep: 3,
            lo: 75,
            hi: 150,
            report: SweepReport::default(),
        },
        Message::Heartbeat,
        Message::Finished {
            telemetry: TelemetrySnapshot::empty(),
        },
        Message::Fault {
            message: "nope".to_string(),
        },
    ];
    // One stream carrying all of them, then a clean close.
    let mut stream = Vec::new();
    for msg in &messages {
        stream.extend(encode(msg));
    }
    let mut cursor = Cursor::new(stream);
    for msg in &messages {
        let got = read_frame(&mut cursor)
            .expect("valid frame")
            .expect("frame present");
        assert_eq!(got.tag(), msg.tag());
    }
    assert!(
        read_frame(&mut cursor).expect("clean EOF").is_none(),
        "end between frames is an orderly close, not an error"
    );
}

#[test]
fn half_close_between_frames_is_a_clean_end() {
    // A worker that sends Finished and shuts down its write half: the
    // reader sees exactly one frame then EOF at a frame boundary.
    let bytes = encode(&Message::Heartbeat);
    let mut cursor = Cursor::new(bytes);
    assert!(read_frame(&mut cursor).unwrap().is_some());
    assert!(read_frame(&mut cursor).unwrap().is_none());
}

#[test]
fn truncated_length_prefix_is_typed() {
    let mut full = encode(&Message::Wait);
    full.truncate(2); // die mid-prefix
    match read_frame(&mut Cursor::new(full)) {
        Err(WireError::Truncated {
            expected: 4,
            got: 2,
        }) => {}
        other => panic!("expected Truncated{{4, 2}}, got {other:?}"),
    }
}

#[test]
fn truncated_payload_is_typed() {
    let full = encode(&Message::Request {
        sweep: 0,
        meta: meta(),
    });
    let cut = full.len() - 5;
    let mut partial = full;
    partial.truncate(cut);
    match read_frame(&mut Cursor::new(partial)) {
        Err(WireError::Truncated { expected, got }) => {
            assert_eq!(
                got,
                expected - 5,
                "all but the last 5 payload bytes arrived"
            );
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn oversized_length_prefix_is_refused_before_reading_the_body() {
    // 4 GiB declared, zero bytes behind it: the reader must refuse on
    // the prefix alone rather than try to allocate or drain the body.
    let bytes = u32::MAX.to_be_bytes().to_vec();
    match read_frame(&mut Cursor::new(bytes)) {
        Err(WireError::Oversized { len, max }) => {
            assert_eq!(len, u32::MAX as usize);
            assert_eq!(max, MAX_FRAME);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn garbage_payload_is_malformed_not_a_panic() {
    let payload = b"]]not json at all{{";
    let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
    bytes.extend_from_slice(payload);
    assert!(matches!(
        read_frame(&mut Cursor::new(bytes)),
        Err(WireError::Malformed(_))
    ));
}

#[test]
fn non_utf8_payload_is_malformed() {
    let payload = [0xFFu8, 0xFE, 0x80, 0x81];
    let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
    bytes.extend_from_slice(&payload);
    assert!(matches!(
        read_frame(&mut Cursor::new(bytes)),
        Err(WireError::Malformed(_))
    ));
}

#[test]
fn valid_json_that_is_not_a_message_is_malformed() {
    let payload = br#"{"Leese": {"sweep": 0}}"#;
    let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
    bytes.extend_from_slice(payload.as_slice());
    assert!(matches!(
        read_frame(&mut Cursor::new(bytes)),
        Err(WireError::Malformed(_))
    ));
}

#[test]
fn garbage_mid_stream_poisons_only_the_stream_tail() {
    // One good frame, then garbage: the good frame parses, the stream
    // then fails typed — no resynchronization, no hang.
    let mut stream = encode(&Message::Heartbeat);
    stream.extend_from_slice(&[0xDE, 0xAD]);
    let mut cursor = Cursor::new(stream);
    assert!(read_frame(&mut cursor).unwrap().is_some());
    assert!(matches!(
        read_frame(&mut cursor),
        Err(WireError::Truncated { .. })
    ));
}

/// A reader that yields its bytes then stalls forever with
/// `WouldBlock` — a socket whose peer died without closing.
struct Stalls {
    data: Vec<u8>,
    pos: usize,
}

impl Read for Stalls {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos < self.data.len() {
            let n = buf.len().min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        } else {
            Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
        }
    }
}

#[test]
fn idle_timeout_between_frames_is_a_tick_not_a_failure() {
    let mut stalled = Stalls {
        data: Vec::new(),
        pos: 0,
    };
    match read_frame(&mut stalled) {
        Err(e) => assert!(e.is_timeout(), "idle tick must be recognizable: {e:?}"),
        other => panic!("expected a timeout tick, got {other:?}"),
    }
}

#[test]
fn stall_mid_frame_exhausts_the_budget_and_reports_truncation() {
    // Prefix promises 64 bytes, peer wedges after 3: the reader must
    // come back with Truncated in bounded time, never spin forever.
    let mut data = 64u32.to_be_bytes().to_vec();
    data.extend_from_slice(&[1, 2, 3]);
    let mut stalled = Stalls { data, pos: 0 };
    match read_frame(&mut stalled) {
        Err(WireError::Truncated {
            expected: 64,
            got: 3,
        }) => {}
        other => panic!("expected Truncated{{64, 3}}, got {other:?}"),
    }
}

#[test]
fn frames_larger_than_the_cap_are_refused_at_write_time_too() {
    let huge = Message::Fault {
        message: "x".repeat(MAX_FRAME + 1),
    };
    let mut sink = Vec::new();
    assert!(matches!(
        write_frame(&mut sink, &huge),
        Err(WireError::Oversized { .. })
    ));
    assert!(sink.is_empty(), "nothing may reach the wire");
}
