//! Fabric byte-identity: merged fabric reports must equal the direct
//! `Runner::sweep` fold **byte for byte** — over seeded workloads,
//! worker counts m ∈ {1, 2, 3, 7}, an injected worker kill, lease
//! expiry with a zombie's duplicate submission, and checkpoint resume.
//!
//! The coordinator is pure (no sockets, no clocks), so these tests
//! drive the exact dispatch logic the server runs, with simulated
//! worker schedules standing in for the network.

use proptest::prelude::*;
use rendezvous_core::{Cheap, Fast, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::OrientedRingExplorer;
use rendezvous_fabric::{CheckpointRecord, Coordinator, CoordinatorConfig, LeaseReply};
use rendezvous_graph::generators;
use rendezvous_runner::{AlgorithmExecutor, Bounded, Grid, Runner, SweepReport, Workload};
use std::sync::Arc;

/// Two sweeps (Cheap then Fast on the same ring) — enough to exercise
/// the sweep-sequence identity, not just a single space. Sampling-capped
/// so the many re-sweeps below stay cheap.
fn sweep_setup(n: usize, l: u64, cap: usize) -> Vec<(Box<dyn RendezvousAlgorithm>, Grid)> {
    let g = Arc::new(generators::oriented_ring(n).unwrap());
    let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let space = LabelSpace::new(l).unwrap();
    let algs: Vec<Box<dyn RendezvousAlgorithm>> = vec![
        Box::new(Cheap::new(g.clone(), ex.clone(), space)),
        Box::new(Fast::new(g, ex, space)),
    ];
    algs.into_iter()
        .map(|alg| {
            let grid = Grid::new(4 * alg.time_bound())
                .label_pairs_both_orders(&[(1, l), (l / 2, l / 2 + 1)])
                .delays(&[0, 3])
                .all_start_pairs(alg.graph())
                .sample_cap(cap);
            (alg, grid)
        })
        .collect()
}

fn direct_reports(sweeps: &[(Box<dyn RendezvousAlgorithm>, Grid)]) -> Vec<SweepReport> {
    sweeps
        .iter()
        .map(|(alg, grid)| {
            let executor = AlgorithmExecutor::new(alg.as_ref());
            Runner::sequential()
                .sweep(grid, &Bounded::new(&executor, None))
                .expect("valid configurations")
        })
        .collect()
}

struct SimWorker {
    id: u64,
    sweep: usize,
    completed: usize,
    dead: bool,
    finished: bool,
}

struct SimOutcome {
    merged: Vec<SweepReport>,
    checkpoint: Vec<CheckpointRecord>,
    executed_units: usize,
    stats: rendezvous_fabric::FabricStats,
}

/// Round-robin worker schedule against the real coordinator. With
/// `kill`, worker 0 "dies" on the first lease granted after it has
/// completed one: for m > 1 the lease is abandoned (requeued, the
/// death-mid-piece path); for m = 1 the worker is declared lost but
/// keeps submitting — the zombie path, where requeued ranges and
/// duplicate results must still fold to the exact bytes.
fn run_sim(
    sweeps: &[(Box<dyn RendezvousAlgorithm>, Grid)],
    m: usize,
    chunk: usize,
    kill: bool,
    resume: Vec<CheckpointRecord>,
) -> SimOutcome {
    let mut coordinator = Coordinator::new(
        CoordinatorConfig {
            workers: m,
            chunk,
            lease_timeout_ms: u64::MAX,
        },
        resume,
    );
    let mut workers: Vec<SimWorker> = (0..m)
        .map(|i| SimWorker {
            id: 1000 + i as u64,
            sweep: 0,
            completed: 0,
            dead: false,
            finished: false,
        })
        .collect();
    // One executor per sweep, shared by every simulated worker: a real
    // worker process reuses its executor (and so its compiled-schedule
    // cache) across all the leases of a sweep.
    let executors: Vec<AlgorithmExecutor> = sweeps
        .iter()
        .map(|(alg, _)| AlgorithmExecutor::new(alg.as_ref()))
        .collect();
    let mut checkpoint = Vec::new();
    let mut executed_units = 0usize;
    let mut killed = false;
    let mut now = 0u64;
    while workers.iter().any(|w| !w.finished && !w.dead) {
        let mut progressed = false;
        for w in &mut workers {
            if w.finished || w.dead {
                continue;
            }
            now += 1;
            let meta = sweeps[w.sweep].1.meta();
            match coordinator
                .request(w.id, w.sweep, meta, now)
                .expect("simulated workers follow the protocol")
            {
                LeaseReply::Range { lo, hi } => {
                    progressed = true;
                    let zombie = kill && !killed && w.id == 1000 && w.completed >= 1;
                    if zombie {
                        killed = true;
                        coordinator.worker_lost(w.id);
                        if m > 1 {
                            // Death mid-piece: the granted lease is
                            // abandoned and must be re-served to a
                            // survivor at the same [lo, hi).
                            w.dead = true;
                            continue;
                        }
                        // m = 1: no survivors to hand the range to, so
                        // the "dead" worker keeps going — submitting
                        // the abandoned lease late, as a zombie would.
                    }
                    let grid = &sweeps[w.sweep].1;
                    let report = Runner::sequential()
                        .sweep_range(grid, lo, hi, &Bounded::new(&executors[w.sweep], None))
                        .expect("valid configurations");
                    executed_units += hi - lo;
                    if let Some(record) = coordinator
                        .result(w.sweep, lo, hi, report)
                        .expect("range is on the partition")
                    {
                        checkpoint.push(record);
                    }
                    w.completed += 1;
                }
                LeaseReply::Complete => {
                    progressed = true;
                    w.sweep += 1;
                    if w.sweep == sweeps.len() {
                        coordinator.worker_finished(w.id);
                        w.finished = true;
                    }
                }
                LeaseReply::Wait => {}
            }
        }
        assert!(
            progressed || workers.iter().any(|w| !w.finished && !w.dead),
            "stalled schedule"
        );
    }
    let merged = coordinator
        .merged()
        .expect("all sweeps complete")
        .into_iter()
        .map(|(_, report)| report)
        .collect();
    SimOutcome {
        merged,
        checkpoint,
        executed_units,
        stats: coordinator.stats(),
    }
}

fn bytes(report: &SweepReport) -> String {
    serde_json::to_string(report).expect("serializable report")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fabric merged bytes == direct sweep bytes for every worker count,
    /// with a kill injected, and for a checkpoint resume of half the run.
    #[test]
    fn fabric_merge_is_byte_identical_to_the_direct_sweep(
        n in 4usize..7,
        l in 2u64..5,
        cap in 20usize..48,
        chunk in 1usize..8,
    ) {
        let sweeps = sweep_setup(n, l, cap);
        let direct = direct_reports(&sweeps);
        let mut kept_checkpoint: Option<Vec<CheckpointRecord>> = None;
        for m in [1usize, 2, 3, 7] {
            let out = run_sim(&sweeps, m, chunk, true, Vec::new());
            prop_assert_eq!(out.merged.len(), direct.len());
            for (got, want) in out.merged.iter().zip(&direct) {
                prop_assert_eq!(bytes(got), bytes(want), "m = {}", m);
            }
            // The kill must actually have exercised reassignment (m > 1)
            // or the zombie-duplicate path (m = 1, whose abandoned lease
            // is requeued and then double-submitted).
            prop_assert!(
                out.stats.reassigned >= 1,
                "m = {}: kill was injected but nothing was requeued", m
            );
            if m == 2 {
                kept_checkpoint = Some(out.checkpoint);
            }
        }

        // Resume from the m = 2 run's full checkpoint: nothing executes.
        let full = kept_checkpoint.expect("m = 2 ran");
        let resumed = run_sim(&sweeps, 2, chunk, false, full.clone());
        prop_assert_eq!(resumed.executed_units, 0, "full resume must re-run zero units");
        for (got, want) in resumed.merged.iter().zip(&direct) {
            prop_assert_eq!(bytes(got), bytes(want));
        }

        // Resume from half the records — and with a *different* worker
        // count and chunk than the run that wrote them: only the gaps
        // execute, and the bytes still match.
        let half: Vec<CheckpointRecord> =
            full.iter().step_by(2).cloned().collect();
        let missing: usize = {
            let done: usize = half.iter().map(|r| r.hi - r.lo).sum();
            sweeps.iter().map(|(_, g)| g.size()).sum::<usize>() - done
        };
        let partial = run_sim(&sweeps, 3, chunk + 1, false, half);
        prop_assert_eq!(partial.executed_units, missing);
        for (got, want) in partial.merged.iter().zip(&direct) {
            prop_assert_eq!(bytes(got), bytes(want));
        }
    }
}

/// Deadline-based lease expiry: a worker that leases a range and goes
/// silent past the timeout has it requeued; its late (zombie) submission
/// is discarded as a duplicate; the merge is still exact.
#[test]
fn silent_workers_expire_and_their_late_results_are_discarded() {
    let sweeps = sweep_setup(6, 4, 32);
    let direct = direct_reports(&sweeps);
    let chunk = sweeps[0].1.size().div_ceil(4).max(1);
    let mut coordinator = Coordinator::new(
        CoordinatorConfig {
            workers: 2,
            chunk,
            lease_timeout_ms: 100,
        },
        Vec::new(),
    );
    let meta0 = sweeps[0].1.meta();

    // Worker 1 takes the first chunk at t = 0 and is never heard again.
    let LeaseReply::Range { lo, hi } = coordinator.request(1, 0, meta0, 0).unwrap() else {
        panic!("first request must lease");
    };

    // Worker 2 sweeps everything else; at some point only worker 1's
    // chunk is missing, so it gets Wait until the deadline passes.
    let executors: Vec<AlgorithmExecutor> = sweeps
        .iter()
        .map(|(alg, _)| AlgorithmExecutor::new(alg.as_ref()))
        .collect();
    let run_range = |sweep: usize, lo: usize, hi: usize| {
        Runner::sequential()
            .sweep_range(
                &sweeps[sweep].1,
                lo,
                hi,
                &Bounded::new(&executors[sweep], None),
            )
            .expect("valid configurations")
    };
    let mut now = 10u64;
    let mut sweep = 0usize;
    let mut saw_wait = false;
    while sweep < sweeps.len() {
        now += 1;
        let meta = sweeps[sweep].1.meta();
        match coordinator.request(2, sweep, meta, now).unwrap() {
            LeaseReply::Range { lo, hi } => {
                let report = run_range(sweep, lo, hi);
                coordinator.result(sweep, lo, hi, report).unwrap();
            }
            LeaseReply::Wait => {
                saw_wait = true;
                // The server's idle tick: nothing leasable, check
                // deadlines. Jump past worker 1's deadline (last seen at
                // t = 0) but not worker 2's (last seen just now) — +90
                // keeps worker 2 inside the 100 ms window while worker 1,
                // silent since t = 0 > 100 ms ago, expires.
                now += 90;
                assert_eq!(coordinator.expire(now), 1, "exactly worker 1's lease");
            }
            LeaseReply::Complete => sweep += 1,
        }
    }
    assert!(saw_wait, "worker 2 must have waited on the stuck lease");

    // Worker 1 wakes up and submits its long-expired range.
    let late = run_range(0, lo, hi);
    assert!(
        coordinator.result(0, lo, hi, late).unwrap().is_none(),
        "the zombie's duplicate is discarded, not folded twice"
    );

    let stats = coordinator.stats();
    assert_eq!(stats.reassigned, 1);
    assert_eq!(stats.duplicates, 1);
    assert_eq!(stats.workers_lost, 1);
    let merged = coordinator.merged().unwrap();
    for ((_, got), want) in merged.iter().zip(&direct) {
        assert_eq!(bytes(got), bytes(want));
    }
}

/// Fingerprint discipline: a worker that disagrees about what a sweep
/// *is* gets a typed refusal, and sweeps must register densely in order.
#[test]
fn meta_mismatch_and_out_of_order_sweeps_are_typed_errors() {
    let sweeps = sweep_setup(5, 3, 24);
    let mut coordinator = Coordinator::new(CoordinatorConfig::default(), Vec::new());
    let meta = sweeps[0].1.meta();
    assert!(matches!(
        coordinator.request(1, 1, meta, 0),
        Err(rendezvous_fabric::FabricError::Protocol(_))
    ));
    coordinator.request(1, 0, meta, 0).unwrap();
    let mut wrong = meta;
    wrong.size += 1;
    assert!(matches!(
        coordinator.request(2, 0, wrong, 1),
        Err(rendezvous_fabric::FabricError::MetaMismatch { sweep: 0, .. })
    ));
}

/// A checkpoint whose fingerprints disagree with the resumed run is
/// refused at sweep registration, not silently merged.
#[test]
fn stale_checkpoints_are_refused() {
    let sweeps = sweep_setup(5, 3, 24);
    let meta = sweeps[0].1.meta();
    let mut wrong = meta;
    wrong.full_size += 7;
    let record = CheckpointRecord {
        sweep: 0,
        lo: 0,
        hi: 1,
        meta: wrong,
        report: SweepReport::default(),
    };
    let mut coordinator = Coordinator::new(CoordinatorConfig::default(), vec![record]);
    assert!(matches!(
        coordinator.request(1, 0, meta, 0),
        Err(rendezvous_fabric::FabricError::Checkpoint(_))
    ));
}
