//! Error type for algorithm construction.

use std::error::Error;
use std::fmt;

/// Errors raised when constructing rendezvous algorithms or agents.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The label space must contain at least two labels (two agents with
    /// distinct labels must fit).
    LabelSpaceTooSmall {
        /// The rejected size.
        size: u64,
    },
    /// A label was outside `{1, …, L}`.
    LabelOutOfRange {
        /// The offending label value.
        label: u64,
        /// The space size `L`.
        space: u64,
    },
    /// A relabeling weight parameter was invalid (`w = 0` or `w > L`).
    InvalidWeight {
        /// The rejected weight.
        weight: u64,
        /// The space size `L`.
        space: u64,
    },
    /// An iterated algorithm was configured with zero levels.
    NoLevels,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::LabelSpaceTooSmall { size } => {
                write!(f, "label space must have size >= 2, got {size}")
            }
            CoreError::LabelOutOfRange { label, space } => {
                write!(f, "label {label} outside the label space {{1, …, {space}}}")
            }
            CoreError::InvalidWeight { weight, space } => {
                write!(
                    f,
                    "relabeling weight {weight} invalid for label space size {space}"
                )
            }
            CoreError::NoLevels => write!(f, "iterated algorithm needs at least one level"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_values() {
        let e = CoreError::LabelOutOfRange { label: 9, space: 4 };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
    }
}
