//! Gathering `k ≥ 2` agents by **merge-and-restart**: an extension of the
//! paper's two-agent algorithms to the gathering problem it cites as the
//! natural generalization (§1.4).
//!
//! Strategy: every agent runs a two-agent rendezvous algorithm with its own
//! label. When agents stand on the same node they have met and exchange
//! labels (the paper's stated purpose of meeting is data exchange); all
//! agents at the node then restart the algorithm **together**, using the
//! minimum label of the merged group. Merged agents are in perfect
//! lockstep from that round on — same schedule, same start node, same
//! restart round — so a cluster behaves exactly like a single agent with
//! the minimum label, and the two-agent guarantee (which tolerates
//! arbitrary start delays) applies to every pair of clusters. Each
//! inter-cluster meeting reduces the cluster count by at least one, so
//! gathering completes after at most `k − 1` merges, i.e. within
//! `(k − 1) · (time bound + max wake-up skew)` rounds.

use crate::{Label, RendezvousAlgorithm, ScheduleBehavior};
use rendezvous_graph::NodeId;
use rendezvous_sim::gathering::GatheringBehavior;
use rendezvous_sim::{Action, AgentBehavior, Observation};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One gathering agent executing the merge-and-restart strategy on top of
/// any [`RendezvousAlgorithm`].
///
/// # Examples
///
/// ```
/// use rendezvous_core::{Fast, GatheringAgent, Label, LabelSpace, RendezvousAlgorithm};
/// use rendezvous_explore::OrientedRingExplorer;
/// use rendezvous_graph::{generators, NodeId};
/// use rendezvous_sim::gathering::run_gathering;
/// use rendezvous_sim::AgentSpec;
/// use std::sync::Arc;
///
/// let g = Arc::new(generators::oriented_ring(9).unwrap());
/// let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
/// let alg: Arc<dyn RendezvousAlgorithm> =
///     Arc::new(Fast::new(g.clone(), ex, LabelSpace::new(8).unwrap()));
/// let agents = [(2u64, 0usize), (5, 3), (7, 6)]
///     .into_iter()
///     .map(|(label, start)| {
///         let a = GatheringAgent::new(
///             alg.clone(),
///             Label::new(label).unwrap(),
///             NodeId::new(start),
///         )
///         .unwrap();
///         (
///             label,
///             Box::new(a) as Box<dyn rendezvous_sim::gathering::GatheringBehavior>,
///             AgentSpec::immediate(NodeId::new(start)),
///         )
///     })
///     .collect();
/// let out = run_gathering(&g, agents, 100_000).unwrap();
/// assert!(out.gathered_all());
/// ```
pub struct GatheringAgent {
    algorithm: Arc<dyn RendezvousAlgorithm>,
    /// Labels known to be travelling together (including our own).
    group: BTreeSet<u64>,
    behavior: ScheduleBehavior,
}

impl std::fmt::Debug for GatheringAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatheringAgent")
            .field("group", &self.group)
            .field("algorithm", &self.algorithm.name())
            .finish_non_exhaustive()
    }
}

impl GatheringAgent {
    /// Creates the agent with its own label and start node.
    ///
    /// # Errors
    ///
    /// Propagates label-space validation from the algorithm.
    pub fn new(
        algorithm: Arc<dyn RendezvousAlgorithm>,
        label: Label,
        start: NodeId,
    ) -> Result<Self, crate::CoreError> {
        let behavior = algorithm.agent(label, start)?;
        Ok(GatheringAgent {
            algorithm,
            group: BTreeSet::from([label.get()]),
            behavior,
        })
    }

    /// The labels this agent currently travels with (including its own).
    #[must_use]
    pub fn group(&self) -> &BTreeSet<u64> {
        &self.group
    }

    /// The label the cluster currently runs the algorithm with.
    #[must_use]
    pub fn effective_label(&self) -> u64 {
        *self.group.iter().min().expect("group contains self")
    }
}

impl GatheringBehavior for GatheringAgent {
    fn next_action(&mut self, observation: Observation, co_located: &[u64]) -> Action {
        let newcomers = co_located.iter().any(|l| !self.group.contains(l));
        if newcomers {
            self.group.extend(co_located.iter().copied());
            // Everyone at this node computes the same group, the same
            // effective label and the same restart round: lockstep holds.
            self.restart();
        } else if self.behavior.exhausted() {
            // The schedule ran out without the whole fleet assembling:
            // re-run it from the current position. A cluster that simply
            // stopped would be permanently inert — and two inert clusters
            // can never meet, livelocking the gathering (observed on
            // small rings once the fleet sweeps widened the
            // configuration space). Cluster members share identical
            // behavior state, so every member exhausts and re-runs in
            // the same round and lockstep is preserved.
            self.restart();
        }
        self.behavior.next_action(observation)
    }
}

impl GatheringAgent {
    /// (Re)starts the two-agent schedule of the cluster's effective label
    /// from the agent's current position.
    fn restart(&mut self) {
        let effective = Label::new(self.effective_label()).expect("labels are positive");
        let position = self.behavior.position();
        self.behavior = ScheduleBehavior::new(
            Arc::clone(self.algorithm.graph()),
            self.algorithm
                .schedule(effective)
                .expect("group labels are in the space"),
            position,
        );
    }
}

/// One fleet member: label, behavior, and placement for
/// [`run_gathering`](rendezvous_sim::gathering::run_gathering).
pub type FleetMember<'a> = (
    u64,
    Box<dyn GatheringBehavior + 'a>,
    rendezvous_sim::AgentSpec,
);

/// Builds a full fleet of [`GatheringAgent`]s from `(label, start)` pairs,
/// ready for [`run_gathering`](rendezvous_sim::gathering::run_gathering).
///
/// # Errors
///
/// Propagates label validation errors.
pub fn gathering_fleet<'a>(
    algorithm: &Arc<dyn RendezvousAlgorithm>,
    placements: &[(u64, NodeId, u64)],
) -> Result<Vec<FleetMember<'a>>, crate::CoreError> {
    placements
        .iter()
        .map(|&(label, start, delay)| {
            let agent = GatheringAgent::new(
                Arc::clone(algorithm),
                Label::new(label).ok_or(crate::CoreError::LabelOutOfRange {
                    label: 0,
                    space: algorithm.label_space().size(),
                })?,
                start,
            )?;
            Ok((
                label,
                Box::new(agent) as Box<dyn GatheringBehavior + 'a>,
                rendezvous_sim::AgentSpec::delayed(start, delay),
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cheap, Fast, LabelSpace};
    use rendezvous_explore::{DfsMapExplorer, OrientedRingExplorer};
    use rendezvous_graph::generators;
    use rendezvous_sim::gathering::run_gathering;

    fn ring_algorithm(n: usize, l: u64) -> Arc<dyn RendezvousAlgorithm> {
        let g = Arc::new(generators::oriented_ring(n).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        Arc::new(Fast::new(g, ex, LabelSpace::new(l).unwrap()))
    }

    fn gather(
        alg: &Arc<dyn RendezvousAlgorithm>,
        placements: &[(u64, usize, u64)],
        horizon: u64,
    ) -> rendezvous_sim::gathering::GatheringOutcome {
        let placements: Vec<(u64, NodeId, u64)> = placements
            .iter()
            .map(|&(l, p, d)| (l, NodeId::new(p), d))
            .collect();
        let fleet = gathering_fleet(alg, &placements).unwrap();
        run_gathering(alg.graph(), fleet, horizon).unwrap()
    }

    #[test]
    fn three_agents_gather_on_a_ring() {
        let alg = ring_algorithm(9, 8);
        let out = gather(&alg, &[(3, 0, 0), (5, 3, 0), (8, 6, 0)], 100_000);
        assert!(out.gathered_all());
        assert_eq!(out.cluster_history.last(), Some(&1));
    }

    #[test]
    fn five_agents_with_delays_gather() {
        let alg = ring_algorithm(12, 16);
        let out = gather(
            &alg,
            &[(1, 0, 5), (4, 2, 0), (9, 5, 17), (12, 8, 3), (16, 10, 0)],
            400_000,
        );
        assert!(
            out.gathered_all(),
            "clusters {:?}",
            out.cluster_history.last()
        );
    }

    #[test]
    fn cluster_count_is_monotone_after_merges() {
        // Lockstep property: once merged, clusters never split, so the
        // minimum cluster count over time is non-increasing.
        let alg = ring_algorithm(9, 8);
        let out = gather(&alg, &[(2, 0, 0), (5, 4, 0), (7, 7, 0)], 100_000);
        let mut min_so_far = usize::MAX;
        for &c in &out.cluster_history {
            // count can fluctuate while separate clusters move, but a
            // merged pair never splits: once 1, always... gathering stops
            // at 1, so check monotonicity of the running minimum at
            // merge-completion points instead: final is 1.
            min_so_far = min_so_far.min(c);
        }
        assert_eq!(min_so_far, 1);
    }

    #[test]
    fn gathering_works_on_trees_with_cheap() {
        let g = Arc::new(generators::balanced_binary_tree(3).unwrap());
        let ex = Arc::new(DfsMapExplorer::new(g.clone()));
        let alg: Arc<dyn RendezvousAlgorithm> =
            Arc::new(Cheap::new(g, ex, LabelSpace::new(8).unwrap()));
        let out = gather(
            &alg,
            &[(1, 0, 0), (3, 7, 2), (6, 14, 0), (8, 3, 9)],
            500_000,
        );
        assert!(out.gathered_all());
    }

    #[test]
    fn two_agents_gathering_reduces_to_rendezvous() {
        let alg = ring_algorithm(8, 4);
        let out = gather(&alg, &[(1, 0, 0), (3, 4, 0)], 50_000);
        assert!(out.gathered_all());
        // Time comparable to the two-agent bound (allow engine round skew).
        assert!(out.rounds_executed <= alg.time_bound() + 2);
    }

    #[test]
    fn effective_label_is_group_minimum() {
        let alg = ring_algorithm(8, 8);
        let mut a = GatheringAgent::new(alg, Label::new(5).unwrap(), NodeId::new(0)).unwrap();
        assert_eq!(a.effective_label(), 5);
        let obs = Observation {
            local_round: 0,
            degree: 2,
            entry_port: None,
        };
        a.next_action(obs, &[7, 3]);
        assert_eq!(a.effective_label(), 3);
        assert_eq!(a.group().len(), 3);
    }
}
