//! Algorithm `Cheap` (§2, Algorithm 1) and its simultaneous-start variant:
//! the cost-optimal end of the tradeoff curve.

use crate::{CoreError, Label, LabelSpace, Phase, RendezvousAlgorithm, Schedule};
use rendezvous_explore::Explorer;
use rendezvous_graph::PortLabeledGraph;
use std::sync::Arc;

/// The simultaneous-start version of `Cheap`: "Agent X waits `(ℓ_X − 1)E`
/// rounds and then explores the graph once."
///
/// Guarantees (paper §2, for **simultaneous start only**):
///
/// * cost exactly at most `E` (a single exploration),
/// * time at most `ℓE ≤ (L − 1)E` where `ℓ` is the smaller label.
///
/// Under arbitrary wake-up delays this algorithm is *incorrect* (both
/// agents can finish their single exploration without meeting); use
/// [`Cheap`] there.
///
/// # Examples
///
/// ```
/// use rendezvous_core::{CheapSimultaneous, Label, LabelSpace, RendezvousAlgorithm};
/// use rendezvous_explore::OrientedRingExplorer;
/// use rendezvous_graph::generators;
/// use std::sync::Arc;
///
/// let g = Arc::new(generators::oriented_ring(8).unwrap());
/// let explore = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
/// let space = LabelSpace::new(4).unwrap();
/// let alg = CheapSimultaneous::new(g, explore, space);
/// assert_eq!(alg.cost_bound(), 7);           // E
/// assert_eq!(alg.time_bound(), 3 * 7);       // (L-1)·E
/// let s = alg.schedule(Label::new(3).unwrap()).unwrap();
/// assert_eq!(s.total_rounds(), 2 * 7 + 7);   // wait (ℓ-1)E, explore E
/// ```
#[derive(Debug, Clone)]
pub struct CheapSimultaneous {
    graph: Arc<PortLabeledGraph>,
    explorer: Arc<dyn Explorer>,
    space: LabelSpace,
}

impl CheapSimultaneous {
    /// Creates the algorithm.
    #[must_use]
    pub fn new(
        graph: Arc<PortLabeledGraph>,
        explorer: Arc<dyn Explorer>,
        space: LabelSpace,
    ) -> Self {
        CheapSimultaneous {
            graph,
            explorer,
            space,
        }
    }
}

impl RendezvousAlgorithm for CheapSimultaneous {
    fn name(&self) -> &'static str {
        "cheap-simultaneous"
    }

    fn label_space(&self) -> LabelSpace {
        self.space
    }

    fn graph(&self) -> &Arc<PortLabeledGraph> {
        &self.graph
    }

    fn exploration_bound(&self) -> u64 {
        self.explorer.bound() as u64
    }

    fn schedule(&self, label: Label) -> Result<Schedule, CoreError> {
        self.space.check(label)?;
        let e = self.exploration_bound();
        Ok(Schedule::new(vec![
            Phase::Wait((label.get() - 1) * e),
            Phase::Explore(Arc::clone(&self.explorer)),
        ]))
    }

    /// `(L − 1) · E`: the smaller of two distinct labels is at most `L − 1`
    /// and the meeting happens by round `ℓE`.
    fn time_bound(&self) -> u64 {
        (self.space.size() - 1) * self.exploration_bound()
    }

    /// Exactly one exploration: `E`.
    fn cost_bound(&self) -> u64 {
        self.exploration_bound()
    }
}

/// Algorithm `Cheap` (Algorithm 1): `EXPLORE; wait 2ℓE rounds; EXPLORE`.
///
/// Guarantees (Proposition 2.1, arbitrary wake-up delays):
///
/// * cost at most `3E`,
/// * time at most `(2ℓ + 3)E ≤ (2L + 1)E` (with `ℓ` the smaller label).
///
/// # Examples
///
/// ```
/// use rendezvous_core::{Cheap, Label, LabelSpace, RendezvousAlgorithm};
/// use rendezvous_explore::OrientedRingExplorer;
/// use rendezvous_graph::generators;
/// use std::sync::Arc;
///
/// let g = Arc::new(generators::oriented_ring(6).unwrap());
/// let explore = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
/// let alg = Cheap::new(g, explore, LabelSpace::new(8).unwrap());
/// assert_eq!(alg.cost_bound(), 3 * 5);
/// assert_eq!(alg.time_bound(), (2 * 8 + 1) * 5);
/// ```
#[derive(Debug, Clone)]
pub struct Cheap {
    graph: Arc<PortLabeledGraph>,
    explorer: Arc<dyn Explorer>,
    space: LabelSpace,
}

impl Cheap {
    /// Creates the algorithm.
    #[must_use]
    pub fn new(
        graph: Arc<PortLabeledGraph>,
        explorer: Arc<dyn Explorer>,
        space: LabelSpace,
    ) -> Self {
        Cheap {
            graph,
            explorer,
            space,
        }
    }
}

impl RendezvousAlgorithm for Cheap {
    fn name(&self) -> &'static str {
        "cheap"
    }

    fn label_space(&self) -> LabelSpace {
        self.space
    }

    fn graph(&self) -> &Arc<PortLabeledGraph> {
        &self.graph
    }

    fn exploration_bound(&self) -> u64 {
        self.explorer.bound() as u64
    }

    fn schedule(&self, label: Label) -> Result<Schedule, CoreError> {
        self.space.check(label)?;
        let e = self.exploration_bound();
        Ok(Schedule::new(vec![
            Phase::Explore(Arc::clone(&self.explorer)),
            Phase::Wait(2 * label.get() * e),
            Phase::Explore(Arc::clone(&self.explorer)),
        ]))
    }

    /// `(2L + 1) · E` (Proposition 2.1).
    fn time_bound(&self) -> u64 {
        (2 * self.space.size() + 1) * self.exploration_bound()
    }

    /// `3E` (Proposition 2.1).
    fn cost_bound(&self) -> u64 {
        3 * self.exploration_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_explore::OrientedRingExplorer;
    use rendezvous_graph::{generators, NodeId};
    use rendezvous_sim::{AgentSpec, Simulation};

    fn ring_setup(n: usize, l: u64) -> (Arc<PortLabeledGraph>, Arc<dyn Explorer>, LabelSpace) {
        let g = Arc::new(generators::oriented_ring(n).unwrap());
        let ex: Arc<dyn Explorer> = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        (g, ex, LabelSpace::new(l).unwrap())
    }

    fn run_pair(
        alg: &dyn RendezvousAlgorithm,
        la: u64,
        lb: u64,
        pa: usize,
        pb: usize,
        delay_b: u64,
    ) -> rendezvous_sim::Outcome {
        let a = alg.agent(Label::new(la).unwrap(), NodeId::new(pa)).unwrap();
        let b = alg.agent(Label::new(lb).unwrap(), NodeId::new(pb)).unwrap();
        Simulation::new(alg.graph())
            .agent(Box::new(a), AgentSpec::immediate(NodeId::new(pa)))
            .agent(Box::new(b), AgentSpec::delayed(NodeId::new(pb), delay_b))
            .max_rounds(10 * alg.time_bound() + 1_000)
            .run()
            .unwrap()
    }

    #[test]
    fn cheap_simultaneous_meets_within_bounds_exhaustively() {
        let (g, ex, space) = ring_setup(7, 4);
        let alg = CheapSimultaneous::new(g.clone(), ex, space);
        for la in 1..=4u64 {
            for lb in 1..=4u64 {
                if la == lb {
                    continue;
                }
                for pa in 0..7 {
                    for pb in 0..7 {
                        if pa == pb {
                            continue;
                        }
                        let out = run_pair(&alg, la, lb, pa, pb, 0);
                        let t = out.time().expect("must meet");
                        assert!(t <= alg.time_bound());
                        assert!(out.cost() <= alg.cost_bound());
                        // the paper's sharper claim: time <= min(la,lb)*E
                        assert!(t <= la.min(lb) * alg.exploration_bound());
                    }
                }
            }
        }
    }

    #[test]
    fn cheap_simultaneous_cost_is_exactly_at_most_e() {
        let (g, ex, space) = ring_setup(9, 5);
        let alg = CheapSimultaneous::new(g.clone(), ex, space);
        let out = run_pair(&alg, 2, 5, 0, 4, 0);
        assert!(out.cost() <= alg.exploration_bound());
    }

    #[test]
    fn cheap_meets_with_arbitrary_delays() {
        let (g, ex, space) = ring_setup(6, 3);
        let alg = Cheap::new(g.clone(), ex, space);
        let e = alg.exploration_bound();
        for (la, lb) in [(1u64, 2u64), (2, 1), (1, 3), (3, 2)] {
            for delay in [0, 1, e / 2, e, e + 1, 2 * e, 4 * e] {
                for pa in 0..6 {
                    for pb in 0..6 {
                        if pa == pb {
                            continue;
                        }
                        let out = run_pair(&alg, la, lb, pa, pb, delay);
                        let t = out.time().expect("must meet");
                        assert!(
                            t <= alg.time_bound(),
                            "time {t} > bound {} for ℓ=({la},{lb}), p=({pa},{pb}), τ={delay}",
                            alg.time_bound()
                        );
                        assert!(out.cost() <= alg.cost_bound());
                        // Prop 2.1's sharper time bound (2ℓ+3)E, ℓ = min:
                        assert!(t <= (2 * la.min(lb) + 3) * e);
                    }
                }
            }
        }
    }

    #[test]
    fn cheap_schedule_shape() {
        let (g, ex, space) = ring_setup(5, 4);
        let alg = Cheap::new(g, ex, space);
        let s = alg.schedule(Label::new(3).unwrap()).unwrap();
        assert_eq!(s.phases().len(), 3);
        assert_eq!(s.explore_phases(), 2);
        assert_eq!(s.total_rounds(), 4 + 2 * 3 * 4 + 4);
    }

    #[test]
    fn label_out_of_space_is_rejected() {
        let (g, ex, space) = ring_setup(5, 2);
        let alg = Cheap::new(g, ex, space);
        assert!(alg.schedule(Label::new(3).unwrap()).is_err());
    }

    #[test]
    fn cheap_simultaneous_time_bound_breaks_under_delays() {
        // The (L-1)·E time bound of the simultaneous-start variant relies
        // on the *smaller*-labelled agent exploring while the larger one
        // still waits. With an adversarial delay, the smaller agent can be
        // asleep, and the larger agent (label L) only explores after
        // waiting (L-1)·E rounds — so the meeting lands at ~L·E, past the
        // bound. This is why Algorithm 1 (Cheap) exists.
        let (g, ex, space) = ring_setup(5, 8);
        let alg = CheapSimultaneous::new(g.clone(), ex, space);
        let e = alg.exploration_bound();
        let a = alg.agent(Label::new(8).unwrap(), NodeId::new(0)).unwrap();
        let b = alg.agent(Label::new(1).unwrap(), NodeId::new(2)).unwrap();
        let out = Simulation::new(&g)
            .agent(Box::new(a), AgentSpec::immediate(NodeId::new(0)))
            .agent(Box::new(b), AgentSpec::delayed(NodeId::new(2), 1_000 * e))
            .max_rounds(2_000 * e)
            .run()
            .unwrap();
        assert!(out.met(), "the sleeping agent is still found");
        assert!(
            out.time().unwrap() > alg.time_bound(),
            "time {} should exceed the simultaneous-start bound {}",
            out.time().unwrap(),
            alg.time_bound()
        );
    }
}
