//! Deterministic rendezvous algorithms from *Time Versus Cost Tradeoffs
//! for Deterministic Rendezvous in Networks* (Miller & Pelc, PODC 2014).
//!
//! Two agents with distinct labels from `{1, …, L}`, dropped on distinct
//! nodes of an anonymous port-labelled network and woken at adversarial
//! times, must meet at a node. Both know an exploration procedure with
//! bound `E`. The paper charts the tradeoff between the **time** and the
//! **cost** of rendezvous:
//!
//! | algorithm | time | cost |
//! |---|---|---|
//! | [`CheapSimultaneous`] (simultaneous start) | `≤ (L−1)E` | `≤ E` |
//! | [`Cheap`] | `≤ (2L+1)E` | `≤ 3E` |
//! | [`Fast`] | `≤ (4⌊log(L−1)⌋+9)E` | `≤ 2×` time |
//! | [`FastWithRelabeling`]`(w)` | `≤ (4t+5)E` | `O(wE)` |
//! | [`Iterated`] (unknown `E`) | telescoped | telescoped |
//!
//! and proves the two ends essentially optimal: cost `E + o(E)` forces time
//! `Ω(EL)`, and time `O(E log L)` forces cost `Ω(E log L)` (see the
//! `rendezvous-lower-bounds` crate for that machinery, executable).
//!
//! # Examples
//!
//! ```
//! use rendezvous_core::{Fast, Label, LabelSpace, RendezvousAlgorithm};
//! use rendezvous_explore::OrientedRingExplorer;
//! use rendezvous_graph::{generators, NodeId};
//! use rendezvous_sim::{AgentSpec, Simulation};
//! use std::sync::Arc;
//!
//! let g = Arc::new(generators::oriented_ring(10).unwrap());
//! let explore = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
//! let alg = Fast::new(g.clone(), explore, LabelSpace::new(32).unwrap());
//!
//! let alice = alg.agent(Label::new(7).unwrap(), NodeId::new(0)).unwrap();
//! let bob = alg.agent(Label::new(21).unwrap(), NodeId::new(5)).unwrap();
//! let out = Simulation::new(&g)
//!     .agent(Box::new(alice), AgentSpec::immediate(NodeId::new(0)))
//!     .agent(Box::new(bob), AgentSpec::immediate(NodeId::new(5)))
//!     .max_rounds(alg.time_bound())
//!     .run()
//!     .unwrap();
//! assert!(out.met());
//! assert!(out.time().unwrap() <= alg.time_bound());
//! assert!(out.cost() <= alg.cost_bound());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod cheap;
mod error;
mod fast;
mod gathering;
mod iterated;
mod label;
mod relabel;
mod schedule;

pub use algorithm::RendezvousAlgorithm;
pub use cheap::{Cheap, CheapSimultaneous};
pub use error::CoreError;
pub use fast::Fast;
pub use gathering::{gathering_fleet, FleetMember, GatheringAgent};
pub use iterated::{BaseAlgorithm, Iterated};
pub use label::{Label, LabelSpace, ModifiedLabel};
pub use relabel::{binomial, corollary_t_prime, lex_subset_bits, smallest_t, FastWithRelabeling};
pub use schedule::{FlatPlan, FlatPlanBehavior, Phase, Schedule, ScheduleBehavior};
