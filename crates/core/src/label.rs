//! Agent labels, the label space `{1, …, L}`, and the prefix-free label
//! transformation `M(ℓ)` of Algorithm `Fast`.

use crate::CoreError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An agent's label: a positive integer from the label space `{1, …, L}`.
///
/// Labels are the **only** source of asymmetry between agents: the paper
/// shows that without distinct labels, deterministic rendezvous is
/// impossible in symmetric networks such as oriented rings.
///
/// # Examples
///
/// ```
/// use rendezvous_core::Label;
///
/// let l = Label::new(5).unwrap();
/// assert_eq!(l.get(), 5);
/// assert!(Label::new(0).is_none()); // labels are 1-based
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Label(u64);

impl Label {
    /// Creates a label; returns `None` for 0 (labels are 1-based).
    #[must_use]
    pub fn new(value: u64) -> Option<Self> {
        (value > 0).then_some(Label(value))
    }

    /// The label value.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The binary representation `c₁ … c_r` (most significant bit first).
    ///
    /// # Examples
    ///
    /// ```
    /// use rendezvous_core::Label;
    ///
    /// let l = Label::new(6).unwrap();
    /// assert_eq!(l.bits(), vec![true, true, false]); // 110
    /// ```
    #[must_use]
    pub fn bits(self) -> Vec<bool> {
        let z = 64 - self.0.leading_zeros();
        (0..z).rev().map(|i| (self.0 >> i) & 1 == 1).collect()
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// The label space `{1, …, L}` both agents draw their labels from. The
/// algorithms' complexity bounds are functions of `L` (and `E`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LabelSpace {
    size: u64,
}

impl LabelSpace {
    /// Creates the space `{1, …, size}`.
    ///
    /// # Errors
    ///
    /// [`CoreError::LabelSpaceTooSmall`] if `size < 2` (two agents with
    /// distinct labels must fit).
    pub fn new(size: u64) -> Result<Self, CoreError> {
        if size < 2 {
            return Err(CoreError::LabelSpaceTooSmall { size });
        }
        Ok(LabelSpace { size })
    }

    /// The size `L`.
    #[must_use]
    pub const fn size(self) -> u64 {
        self.size
    }

    /// Checks that `label` belongs to this space.
    ///
    /// # Errors
    ///
    /// [`CoreError::LabelOutOfRange`] otherwise.
    pub fn check(self, label: Label) -> Result<(), CoreError> {
        if label.get() > self.size {
            return Err(CoreError::LabelOutOfRange {
                label: label.get(),
                space: self.size,
            });
        }
        Ok(())
    }

    /// Iterates over all labels of the space. Handy in exhaustive
    /// experiments; don't call on astronomically large spaces.
    pub fn labels(self) -> impl Iterator<Item = Label> {
        (1..=self.size).map(Label)
    }

    /// `⌊log₂(L − 1)⌋`, the quantity appearing in the paper's `Fast`
    /// bounds (0 when `L = 2`).
    #[must_use]
    pub fn floor_log2_l_minus_1(self) -> u64 {
        let x = self.size - 1;
        u64::from(63 - x.leading_zeros().min(63)).min(63)
    }
}

impl fmt::Display for LabelSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{1, …, {}}}", self.size)
    }
}

/// The transformed label `M(ℓ)` from §2 (originally from the asynchronous
/// rendezvous literature): if `c₁ … c_r` is the binary representation of
/// `ℓ`, then `M(ℓ) = c₁c₁c₂c₂…c_rc_r 01`.
///
/// Key properties (proved by the paper, property-tested here):
///
/// * `M(x)` is never a **prefix** of `M(y)` for `x ≠ y`,
/// * `M(x) ≠ M(y)` for `x ≠ y`,
/// * `|M(ℓ)| = 2z + 2` where `z = 1 + ⌊log₂ ℓ⌋`.
///
/// # Examples
///
/// ```
/// use rendezvous_core::{Label, ModifiedLabel};
///
/// let m = ModifiedLabel::of(Label::new(2).unwrap()); // binary 10
/// assert_eq!(m.bits(), &[true, true, false, false, false, true]); // 110001
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModifiedLabel {
    bits: Vec<bool>,
}

impl ModifiedLabel {
    /// Computes `M(ℓ)`.
    #[must_use]
    pub fn of(label: Label) -> Self {
        let mut bits = Vec::new();
        for b in label.bits() {
            bits.push(b);
            bits.push(b);
        }
        bits.push(false);
        bits.push(true);
        ModifiedLabel { bits }
    }

    /// The bit sequence.
    #[must_use]
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Length `m = 2z + 2`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Never true: every modified label ends in `01`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Returns `true` if `self` is a prefix of `other`.
    #[must_use]
    pub fn is_prefix_of(&self, other: &ModifiedLabel) -> bool {
        other.bits.starts_with(&self.bits)
    }
}

impl fmt::Display for ModifiedLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn label_bits_msb_first() {
        assert_eq!(Label::new(1).unwrap().bits(), vec![true]);
        assert_eq!(Label::new(5).unwrap().bits(), vec![true, false, true]);
        assert_eq!(
            Label::new(12).unwrap().bits(),
            vec![true, true, false, false]
        );
    }

    #[test]
    fn space_validation() {
        assert!(LabelSpace::new(1).is_err());
        let s = LabelSpace::new(4).unwrap();
        assert!(s.check(Label::new(4).unwrap()).is_ok());
        assert!(s.check(Label::new(5).unwrap()).is_err());
        assert_eq!(s.labels().count(), 4);
    }

    #[test]
    fn floor_log_values() {
        assert_eq!(LabelSpace::new(2).unwrap().floor_log2_l_minus_1(), 0);
        assert_eq!(LabelSpace::new(3).unwrap().floor_log2_l_minus_1(), 1);
        assert_eq!(LabelSpace::new(5).unwrap().floor_log2_l_minus_1(), 2);
        assert_eq!(LabelSpace::new(1025).unwrap().floor_log2_l_minus_1(), 10);
    }

    #[test]
    fn modified_label_of_small_values() {
        // ℓ = 1: binary 1 -> 11 01
        assert_eq!(
            ModifiedLabel::of(Label::new(1).unwrap()).to_string(),
            "1101"
        );
        // ℓ = 2: binary 10 -> 1100 01
        assert_eq!(
            ModifiedLabel::of(Label::new(2).unwrap()).to_string(),
            "110001"
        );
        // ℓ = 3: binary 11 -> 1111 01
        assert_eq!(
            ModifiedLabel::of(Label::new(3).unwrap()).to_string(),
            "111101"
        );
    }

    #[test]
    fn modified_label_length_formula() {
        for v in 1..200u64 {
            let l = Label::new(v).unwrap();
            let z = 1 + v.ilog2() as usize;
            assert_eq!(ModifiedLabel::of(l).len(), 2 * z + 2);
        }
    }

    proptest! {
        #[test]
        fn modified_labels_are_distinct(a in 1u64..5_000, b in 1u64..5_000) {
            prop_assume!(a != b);
            let ma = ModifiedLabel::of(Label::new(a).unwrap());
            let mb = ModifiedLabel::of(Label::new(b).unwrap());
            prop_assert_ne!(&ma, &mb);
        }

        #[test]
        fn modified_labels_are_prefix_free(a in 1u64..5_000, b in 1u64..5_000) {
            prop_assume!(a != b);
            let ma = ModifiedLabel::of(Label::new(a).unwrap());
            let mb = ModifiedLabel::of(Label::new(b).unwrap());
            prop_assert!(!ma.is_prefix_of(&mb));
            prop_assert!(!mb.is_prefix_of(&ma));
        }

        #[test]
        fn first_differing_index_exists_within_shorter(a in 1u64..5_000, b in 1u64..5_000) {
            prop_assume!(a != b);
            let ma = ModifiedLabel::of(Label::new(a).unwrap());
            let mb = ModifiedLabel::of(Label::new(b).unwrap());
            let min = ma.len().min(mb.len());
            let j = (0..min).find(|&i| ma.bits()[i] != mb.bits()[i]);
            prop_assert!(j.is_some(), "prefix-freeness forces a difference within the shorter label");
        }
    }
}
