//! Iterated rendezvous for agents with **no** knowledge of the network size
//! (paper, Conclusion).
//!
//! "Each of our algorithms can be modified by iterating the original
//! algorithm using `EXPLORE = EXPLORE_i` and `E = E_i` in the i-th
//! iteration. Iterations proceed until rendezvous, which will occur when
//! `2^i` is at least the actual size of the graph. Due to telescoping, the
//! time and cost complexities will not change."
//!
//! One detail the paper leaves to the reader ("the proofs have to be
//! slightly modified"): the base algorithms' schedule lengths depend on the
//! agent's label, so naive concatenation would desynchronize the agents'
//! iteration boundaries. We therefore **pad** every iteration to the
//! label-independent maximum length (the schedule of label `L`), which
//! keeps both agents inside iteration `i` during the same global rounds
//! (for simultaneous start) and changes neither complexity: the padding is
//! waiting, so cost is unaffected, and it stretches each iteration by at
//! most the length the worst label already had. Experiment X8 validates
//! the construction empirically under delays as well.

use crate::{
    Cheap, CoreError, Fast, FastWithRelabeling, Label, LabelSpace, Phase, RendezvousAlgorithm,
    Schedule,
};
use rendezvous_explore::ExplorationFamily;
use rendezvous_graph::PortLabeledGraph;
use std::sync::Arc;

/// Which base algorithm to iterate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseAlgorithm {
    /// Iterate [`Cheap`].
    Cheap,
    /// Iterate [`Fast`].
    Fast,
    /// Iterate [`FastWithRelabeling`] with the given weight.
    FastWithRelabeling(u64),
}

impl BaseAlgorithm {
    fn instantiate(
        self,
        graph: Arc<PortLabeledGraph>,
        explorer: Arc<dyn rendezvous_explore::Explorer>,
        space: LabelSpace,
    ) -> Result<Box<dyn RendezvousAlgorithm>, CoreError> {
        Ok(match self {
            BaseAlgorithm::Cheap => Box::new(Cheap::new(graph, explorer, space)),
            BaseAlgorithm::Fast => Box::new(Fast::new(graph, explorer, space)),
            BaseAlgorithm::FastWithRelabeling(w) => {
                Box::new(FastWithRelabeling::new(graph, explorer, space, w)?)
            }
        })
    }
}

/// The unknown-`E` wrapper: concatenates padded runs of the base algorithm
/// over the levels of an [`ExplorationFamily`].
///
/// # Examples
///
/// ```
/// use rendezvous_core::{BaseAlgorithm, Iterated, Label, LabelSpace, RendezvousAlgorithm};
/// use rendezvous_explore::RingDoublingFamily;
/// use rendezvous_graph::generators;
/// use std::sync::Arc;
///
/// let g = Arc::new(generators::oriented_ring(6).unwrap());
/// let alg = Iterated::new(
///     g,
///     Arc::new(RingDoublingFamily::new()),
///     LabelSpace::new(4).unwrap(),
///     BaseAlgorithm::Fast,
///     1..=4, // levels: E_i = 1, 3, 7, 15
/// ).unwrap();
/// assert!(alg.schedule(Label::new(2).unwrap()).is_ok());
/// ```
#[derive(Debug)]
pub struct Iterated {
    graph: Arc<PortLabeledGraph>,
    family: Arc<dyn ExplorationFamily>,
    space: LabelSpace,
    base: BaseAlgorithm,
    levels: std::ops::RangeInclusive<u32>,
}

impl Iterated {
    /// Creates the iterated algorithm over the given inclusive level range.
    ///
    /// The simulation needs a finite schedule, so the caller picks the top
    /// level; correctness requires `2^max_level ≥ n`. Semantically the
    /// paper's construction is the limit `max_level → ∞`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoLevels`] for an empty range,
    /// * weight errors propagated from the base algorithm.
    pub fn new(
        graph: Arc<PortLabeledGraph>,
        family: Arc<dyn ExplorationFamily>,
        space: LabelSpace,
        base: BaseAlgorithm,
        levels: std::ops::RangeInclusive<u32>,
    ) -> Result<Self, CoreError> {
        if levels.is_empty() {
            return Err(CoreError::NoLevels);
        }
        // Validate the base configuration eagerly (e.g. bad weights).
        let probe = family.level(*levels.start());
        base.instantiate(Arc::clone(&graph), probe, space)?;
        Ok(Iterated {
            graph,
            family,
            space,
            base,
            levels,
        })
    }

    /// The level whose class first contains `n`-node graphs — the iteration
    /// in which the paper guarantees rendezvous.
    #[must_use]
    pub fn decisive_level(&self, n: usize) -> u32 {
        self.family.level_for(n)
    }

    fn level_algorithm(&self, level: u32) -> Box<dyn RendezvousAlgorithm> {
        let explorer = self.family.level(level);
        self.base
            .instantiate(Arc::clone(&self.graph), explorer, self.space)
            .expect("validated at construction")
    }

    /// Sum of padded iteration lengths up to and including `level` — the
    /// round by which rendezvous is guaranteed if the decisive level is
    /// `level` (simultaneous start).
    #[must_use]
    pub fn guaranteed_round(&self, level: u32) -> u64 {
        let max_label = Label::new(self.space.size()).expect("L >= 2");
        self.levels
            .clone()
            .take_while(|&i| i <= level)
            .map(|i| {
                self.level_algorithm(i)
                    .schedule(max_label)
                    .expect("max label is in space")
                    .total_rounds()
            })
            .sum()
    }
}

impl RendezvousAlgorithm for Iterated {
    fn name(&self) -> &'static str {
        "iterated"
    }

    fn label_space(&self) -> LabelSpace {
        self.space
    }

    fn graph(&self) -> &Arc<PortLabeledGraph> {
        &self.graph
    }

    /// The bound of the **top** level (the only `E` this agent ever fully
    /// trusts; earlier levels are speculative).
    fn exploration_bound(&self) -> u64 {
        self.family.bound(*self.levels.end()) as u64
    }

    fn schedule(&self, label: Label) -> Result<Schedule, CoreError> {
        self.space.check(label)?;
        let max_label = Label::new(self.space.size()).expect("L >= 2");
        let mut out = Schedule::default();
        for level in self.levels.clone() {
            let alg = self.level_algorithm(level);
            let mine = alg.schedule(label)?;
            let longest = alg.schedule(max_label)?.total_rounds();
            let pad = longest - mine.total_rounds();
            out.extend(mine);
            if pad > 0 {
                out.extend(Schedule::new(vec![Phase::Wait(pad)]));
            }
        }
        Ok(out)
    }

    /// Total padded length over all levels: a finite, honest bound. For
    /// doubling families this telescopes to at most twice the top level's
    /// base-algorithm bound (the paper's "complexities do not change").
    fn time_bound(&self) -> u64 {
        self.guaranteed_round(*self.levels.end())
    }

    /// Sum of base cost bounds over the levels; telescopes like the time.
    fn cost_bound(&self) -> u64 {
        self.levels
            .clone()
            .map(|i| self.level_algorithm(i).cost_bound())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_explore::RingDoublingFamily;
    use rendezvous_graph::{generators, NodeId};
    use rendezvous_sim::{AgentSpec, Simulation};

    fn iterated_on_ring(n: usize, l: u64, base: BaseAlgorithm) -> Iterated {
        let g = Arc::new(generators::oriented_ring(n).unwrap());
        let fam = Arc::new(RingDoublingFamily::new());
        let top = fam.level_for(n) + 1; // one spare level for good measure
        Iterated::new(g, fam, LabelSpace::new(l).unwrap(), base, 1..=top).unwrap()
    }

    fn meets(alg: &Iterated, la: u64, lb: u64, pa: usize, pb: usize, delay: u64) -> (u64, u64) {
        let a = alg.agent(Label::new(la).unwrap(), NodeId::new(pa)).unwrap();
        let b = alg.agent(Label::new(lb).unwrap(), NodeId::new(pb)).unwrap();
        let out = Simulation::new(alg.graph())
            .agent(Box::new(a), AgentSpec::immediate(NodeId::new(pa)))
            .agent(Box::new(b), AgentSpec::delayed(NodeId::new(pb), delay))
            .max_rounds(4 * alg.time_bound() + 4 * delay)
            .run()
            .unwrap();
        (
            out.time()
                .unwrap_or_else(|| panic!("no meeting ℓ=({la},{lb}) p=({pa},{pb}) τ={delay}")),
            out.cost(),
        )
    }

    #[test]
    fn iterated_fast_meets_on_rings_without_size_knowledge() {
        let alg = iterated_on_ring(6, 4, BaseAlgorithm::Fast);
        for (la, lb) in [(1u64, 2u64), (2, 3), (1, 4), (3, 4)] {
            for (pa, pb) in [(0usize, 3usize), (1, 5), (4, 2)] {
                for delay in [0u64, 1, 7] {
                    let (t, _c) = meets(&alg, la, lb, pa, pb, delay);
                    assert!(t <= alg.time_bound() + delay);
                }
            }
        }
    }

    #[test]
    fn iterated_cheap_meets_and_stays_cheap() {
        let alg = iterated_on_ring(5, 3, BaseAlgorithm::Cheap);
        let (_t, c) = meets(&alg, 1, 3, 0, 2, 0);
        assert!(c <= alg.cost_bound());
        // telescoping: cost across all levels stays O(E_top)
        let e_top = alg.exploration_bound();
        assert!(alg.cost_bound() <= 6 * e_top + 6); // 3E_i summed over doubling E_i <= 6E_top
    }

    #[test]
    fn iterated_relabeling_works() {
        let alg = iterated_on_ring(5, 6, BaseAlgorithm::FastWithRelabeling(2));
        let (t, c) = meets(&alg, 2, 5, 1, 3, 0);
        assert!(t <= alg.time_bound());
        assert!(c <= alg.cost_bound());
    }

    #[test]
    fn empty_level_range_rejected() {
        let g = Arc::new(generators::oriented_ring(4).unwrap());
        let fam = Arc::new(RingDoublingFamily::new());
        #[allow(clippy::reversed_empty_ranges)]
        let r = Iterated::new(
            g,
            fam,
            LabelSpace::new(2).unwrap(),
            BaseAlgorithm::Fast,
            3..=2,
        );
        assert!(matches!(r, Err(CoreError::NoLevels)));
    }

    #[test]
    fn schedules_of_all_labels_have_equal_length() {
        let alg = iterated_on_ring(6, 5, BaseAlgorithm::Cheap);
        let lens: std::collections::HashSet<u64> = (1..=5)
            .map(|l| alg.schedule(Label::new(l).unwrap()).unwrap().total_rounds())
            .collect();
        assert_eq!(lens.len(), 1, "padding must equalize iteration boundaries");
    }

    #[test]
    fn decisive_level_matches_family() {
        let alg = iterated_on_ring(6, 3, BaseAlgorithm::Fast);
        assert_eq!(alg.decisive_level(6), 3);
        assert!(alg.guaranteed_round(3) <= alg.time_bound());
    }
}
