//! The common interface of the paper's rendezvous algorithms.

use crate::{CoreError, Label, LabelSpace, Schedule, ScheduleBehavior};
use rendezvous_graph::{NodeId, PortLabeledGraph};
use std::fmt;
use std::sync::Arc;

/// A deterministic rendezvous algorithm, parameterized by the exploration
/// procedure (with bound `E`) and the label space `{1, …, L}`.
///
/// An algorithm compiles each label into a [`Schedule`] — the full plan the
/// agent follows from its wake-up round. The paper's worst-case guarantees
/// are exposed as [`RendezvousAlgorithm::time_bound`] and
/// [`RendezvousAlgorithm::cost_bound`] so that experiments can assert
/// *measured ≤ bound* on every execution.
pub trait RendezvousAlgorithm: fmt::Debug + Send + Sync {
    /// Short name used in experiment output (e.g. `"cheap"`, `"fast"`).
    fn name(&self) -> &'static str;

    /// The label space the algorithm was configured for.
    fn label_space(&self) -> LabelSpace;

    /// The graph the agents operate on.
    fn graph(&self) -> &Arc<PortLabeledGraph>;

    /// The exploration bound `E` of the underlying procedure.
    fn exploration_bound(&self) -> u64;

    /// Compiles the schedule for an agent with the given label.
    ///
    /// # Errors
    ///
    /// [`CoreError::LabelOutOfRange`] if the label is outside the space.
    fn schedule(&self, label: Label) -> Result<Schedule, CoreError>;

    /// The paper's worst-case **time** bound (rounds from the earlier
    /// agent's start), over all label pairs, start positions and delays.
    fn time_bound(&self) -> u64;

    /// The paper's worst-case **cost** bound (total edge traversals).
    fn cost_bound(&self) -> u64;

    /// Instantiates the agent behavior for a label and start node.
    ///
    /// Note that the sweep engine's `AlgorithmExecutor` does **not** call
    /// this method: it compiles via [`RendezvousAlgorithm::schedule`]
    /// (memoized per sweep) and builds the [`ScheduleBehavior`] itself —
    /// so `schedule` is the customization point an implementation must
    /// override; overriding `agent` only affects direct callers.
    ///
    /// # Errors
    ///
    /// Propagates [`RendezvousAlgorithm::schedule`] errors.
    fn agent(&self, label: Label, start: NodeId) -> Result<ScheduleBehavior, CoreError> {
        Ok(ScheduleBehavior::new(
            Arc::clone(self.graph()),
            self.schedule(label)?,
            start,
        ))
    }
}
