//! Algorithm `FastWithRelabeling(w)` (§2): interior points of the
//! time/cost tradeoff curve.
//!
//! Agents are re-labelled with fixed-weight bit strings: agent `ℓ` receives
//! the lexicographically `ℓ`-th smallest `w`-subset of `{1, …, t}` (as a
//! characteristic bit string), where `t` is the smallest integer with
//! `C(t, w) ≥ L`. Running `Fast`'s block pattern on these strings caps the
//! number of explorations at `w` per agent (cost `O(wE)`) while keeping
//! time `O(tE)` — for constant `w`, time `O(L^{1/w} E)` (Corollary 2.1),
//! strictly between `Cheap`'s `Θ(LE)` and `Fast`'s `Θ(E log L)`.

use crate::fast::{doubled_pattern, pattern_schedule};
use crate::{CoreError, Label, LabelSpace, RendezvousAlgorithm, Schedule};
use rendezvous_explore::Explorer;
use rendezvous_graph::PortLabeledGraph;
use std::sync::Arc;

/// `C(n, k)` with saturating `u128` arithmetic (monotone overflow-safe:
/// anything that would overflow is clamped to `u128::MAX`, which only ever
/// makes the computed `t` smaller — and such `t` are astronomically far
/// from any usable label space anyway).
#[must_use]
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // acc * (n - i) / (i + 1) is exact at every step
        acc = acc
            .saturating_mul(u128::from(n - i))
            .checked_div(u128::from(i + 1))
            .expect("i + 1 > 0");
    }
    acc
}

/// The smallest `t` such that `C(t, w) ≥ l`.
///
/// # Panics
///
/// Panics if `w == 0` or `l == 0` (validated upstream by
/// [`FastWithRelabeling::new`]).
#[must_use]
pub fn smallest_t(w: u64, l: u64) -> u64 {
    assert!(w > 0 && l > 0, "w and l must be positive");
    (w..)
        .find(|&t| binomial(t, w) >= u128::from(l))
        .expect("binomial(t, w) is unbounded in t for fixed w >= 1")
}

/// `t' = ⌈w · L^{1/w}⌉`, the Corollary 2.1 string length, computed
/// exactly in integers: the smallest `t` with `t^w ≥ w^w · L` (take
/// `w`-th roots of both sides — they are monotone in `t`). The float
/// rendering `(w as f64 * (l as f64).powf(1.0 / w as f64)).ceil()`
/// depends on platform libm rounding at exact-power boundaries; this
/// one never does.
///
/// # Panics
///
/// Panics if `w == 0` or `l == 0` (validated upstream by
/// [`FastWithRelabeling::new`]).
#[must_use]
pub fn corollary_t_prime(w: u64, l: u64) -> u64 {
    assert!(w > 0 && l > 0, "w and l must be positive");
    // Upper bracket: with r the integer ceiling of L^{1/w}, the value
    // w·r satisfies (w·r)^w = w^w · r^w ≥ w^w · L. Binary search on
    // r ∈ [1, L] (L^{1/w} ≤ L always).
    let target = vec![l];
    let (mut rlo, mut rhi) = (1u64, l);
    while rlo < rhi {
        let mid = rlo + (rhi - rlo) / 2;
        if big_cmp(&big_pow(mid, w), &target) != std::cmp::Ordering::Less {
            rhi = mid;
        } else {
            rlo = mid + 1;
        }
    }
    let r = rlo;
    let rhs = big_pow_times(w, w, l);
    let (mut lo, mut hi) = (w, w.saturating_mul(r));
    // Invariant: hi satisfies hi^w ≥ w^w·L, lo-1 does not (t' ≥ w since
    // L ≥ 1). Shrink to the smallest satisfying t.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if big_cmp(&big_pow(mid, w), &rhs) != std::cmp::Ordering::Less {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Little-endian base-2^64 magnitude of `base^exp` — `t^w` overflows
/// `u128` for moderate `w`, so the Corollary 2.1 comparison runs on
/// limb vectors.
fn big_pow(base: u64, exp: u64) -> Vec<u64> {
    let mut acc = vec![1u64];
    for _ in 0..exp {
        big_mul_u64(&mut acc, base);
    }
    acc
}

/// `base^exp · m` as limbs (`big_pow` with a final scalar multiply).
fn big_pow_times(base: u64, exp: u64, m: u64) -> Vec<u64> {
    let mut acc = big_pow(base, exp);
    big_mul_u64(&mut acc, m);
    acc
}

/// In-place `acc *= m` on little-endian limbs.
fn big_mul_u64(acc: &mut Vec<u64>, m: u64) {
    let mut carry: u128 = 0;
    for limb in acc.iter_mut() {
        let prod = u128::from(*limb) * u128::from(m) + carry;
        *limb = prod as u64;
        carry = prod >> 64;
    }
    if carry > 0 {
        acc.push(carry as u64);
    }
}

/// Compares two little-endian limb magnitudes.
fn big_cmp(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    let len = |v: &[u64]| v.iter().rposition(|&l| l != 0).map_or(0, |i| i + 1);
    let (la, lb) = (len(a), len(b));
    la.cmp(&lb)
        .then_with(|| a[..la].iter().rev().cmp(b[..lb].iter().rev()))
}

/// The characteristic bit string (length `t`, weight `w`) of the
/// lexicographically `rank`-th smallest `w`-subset of `{1, …, t}`
/// (0-based rank; order is lexicographic on the bit strings, so rank 0 is
/// `0…01…1`).
///
/// # Panics
///
/// Panics if `rank >= C(t, w)` or `w > t`.
#[must_use]
pub fn lex_subset_bits(t: u64, w: u64, rank: u128) -> Vec<bool> {
    assert!(w <= t, "weight exceeds length");
    assert!(rank < binomial(t, w), "rank out of range");
    let mut bits = Vec::with_capacity(t as usize);
    let mut remaining_rank = rank;
    let mut ones_left = w;
    for pos in 0..t {
        let rest = t - pos - 1;
        let with_zero = binomial(rest, ones_left);
        if remaining_rank < with_zero {
            bits.push(false);
        } else {
            remaining_rank -= with_zero;
            bits.push(true);
            ones_left -= 1;
        }
    }
    debug_assert_eq!(ones_left, 0);
    bits
}

/// Algorithm `FastWithRelabeling(w)`.
///
/// Guarantees (Proposition 2.3):
///
/// * time at most `(4t + 5)E` where `t = min{t : C(t, w) ≥ L}`,
/// * cost: the paper states `2wE` (counting only the relabelled bits); the
///   schedule itself proves the slightly larger `(4w + 2)E` — each agent
///   has exactly `2w + 1` explore phases (including the leading `1` block
///   and bit doubling). Both are `O(wE)`; [`RendezvousAlgorithm::cost_bound`]
///   returns the provable `(4w + 2)E` and
///   [`FastWithRelabeling::paper_cost_bound`] the paper's figure.
///
/// # Examples
///
/// ```
/// use rendezvous_core::{FastWithRelabeling, Label, LabelSpace, RendezvousAlgorithm};
/// use rendezvous_explore::OrientedRingExplorer;
/// use rendezvous_graph::generators;
/// use std::sync::Arc;
///
/// let g = Arc::new(generators::oriented_ring(8).unwrap());
/// let explore = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
/// // L = 10, w = 2: t = 5 since C(5,2) = 10.
/// let alg = FastWithRelabeling::new(g, explore, LabelSpace::new(10).unwrap(), 2).unwrap();
/// assert_eq!(alg.t(), 5);
/// assert_eq!(alg.time_bound(), (4 * 5 + 5) * 7);
/// ```
#[derive(Debug, Clone)]
pub struct FastWithRelabeling {
    graph: Arc<PortLabeledGraph>,
    explorer: Arc<dyn Explorer>,
    space: LabelSpace,
    weight: u64,
    t: u64,
}

impl FastWithRelabeling {
    /// Creates the algorithm with relabeling weight `w`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidWeight`] if `w == 0` or `w > L` (the paper
    /// requires `w(L) ≤ L`).
    pub fn new(
        graph: Arc<PortLabeledGraph>,
        explorer: Arc<dyn Explorer>,
        space: LabelSpace,
        weight: u64,
    ) -> Result<Self, CoreError> {
        if weight == 0 || weight > space.size() {
            return Err(CoreError::InvalidWeight {
                weight,
                space: space.size(),
            });
        }
        let t = smallest_t(weight, space.size());
        Ok(FastWithRelabeling {
            graph,
            explorer,
            space,
            weight,
            t,
        })
    }

    /// The relabeling weight `w`.
    #[must_use]
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// The string length `t = min{t : C(t, w) ≥ L}`.
    #[must_use]
    pub fn t(&self) -> u64 {
        self.t
    }

    /// The new label of agent `ℓ`: a `t`-bit string of weight `w`.
    ///
    /// # Errors
    ///
    /// [`CoreError::LabelOutOfRange`] for labels outside the space.
    pub fn relabel(&self, label: Label) -> Result<Vec<bool>, CoreError> {
        self.space.check(label)?;
        Ok(lex_subset_bits(
            self.t,
            self.weight,
            u128::from(label.get() - 1),
        ))
    }

    /// The paper's stated cost bound `2wE` (Proposition 2.3).
    #[must_use]
    pub fn paper_cost_bound(&self) -> u64 {
        2 * self.weight * self.exploration_bound()
    }

    /// Corollary 2.1's asymptotic time for constant `w = c`:
    /// `(4c·L^{1/c} + 5)E`, an upper bound on [`Self::time_bound`].
    #[must_use]
    pub fn corollary_time_bound(&self) -> u64 {
        let t_prime = corollary_t_prime(self.weight, self.space.size());
        (4 * t_prime + 5) * self.exploration_bound()
    }
}

impl RendezvousAlgorithm for FastWithRelabeling {
    fn name(&self) -> &'static str {
        "fast-with-relabeling"
    }

    fn label_space(&self) -> LabelSpace {
        self.space
    }

    fn graph(&self) -> &Arc<PortLabeledGraph> {
        &self.graph
    }

    fn exploration_bound(&self) -> u64 {
        self.explorer.bound() as u64
    }

    fn schedule(&self, label: Label) -> Result<Schedule, CoreError> {
        let bits = self.relabel(label)?;
        let pattern = doubled_pattern(&bits);
        let mut schedule = pattern_schedule(&pattern, &self.explorer);
        // All schedules have identical length (2t+1 blocks); no padding
        // needed — noted here because Cheap/Fast schedules differ by label.
        debug_assert_eq!(schedule.phases().len() as u64, 2 * self.t + 1);
        // Normalize zero-length wait phases away is unnecessary; keep as-is.
        let _ = &mut schedule;
        Ok(schedule)
    }

    /// `(4t + 5) · E` (Proposition 2.3).
    fn time_bound(&self) -> u64 {
        (4 * self.t + 5) * self.exploration_bound()
    }

    /// The provable `(4w + 2) · E`: each agent explores in exactly
    /// `2w + 1` blocks.
    fn cost_bound(&self) -> u64 {
        (4 * self.weight + 2) * self.exploration_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rendezvous_explore::OrientedRingExplorer;
    use rendezvous_graph::{generators, NodeId};
    use rendezvous_sim::{AgentSpec, Simulation};
    use std::collections::HashSet;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(4, 7), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }

    #[test]
    fn smallest_t_matches_definition() {
        assert_eq!(smallest_t(2, 10), 5); // C(5,2)=10
        assert_eq!(smallest_t(2, 11), 6); // C(5,2)=10 < 11 <= C(6,2)=15
        assert_eq!(smallest_t(1, 7), 7); // C(7,1)=7
        assert_eq!(smallest_t(3, 2), 4); // C(3,3)=1 < 2 <= C(4,3)=4
    }

    #[test]
    fn lex_unranking_is_ordered_and_complete() {
        let (t, w) = (6u64, 3u64);
        let total = binomial(t, w);
        let mut all: Vec<Vec<bool>> = (0..total).map(|r| lex_subset_bits(t, w, r)).collect();
        // each has weight w
        for bits in &all {
            assert_eq!(bits.iter().filter(|&&b| b).count() as u64, w);
            assert_eq!(bits.len(), t as usize);
        }
        // strictly increasing lexicographically
        for win in all.windows(2) {
            assert!(win[0] < win[1], "{:?} !< {:?}", win[0], win[1]);
        }
        // all distinct
        let set: HashSet<_> = all.drain(..).collect();
        assert_eq!(set.len() as u128, total);
    }

    #[test]
    fn rank_zero_is_trailing_ones() {
        assert_eq!(
            lex_subset_bits(5, 2, 0),
            vec![false, false, false, true, true]
        );
    }

    proptest! {
        #[test]
        fn relabeling_is_injective(l in 2u64..200, w in 1u64..5) {
            let w = w.min(l);
            let t = smallest_t(w, l);
            let mut seen = HashSet::new();
            for rank in 0..l {
                let bits = lex_subset_bits(t, w, u128::from(rank));
                prop_assert!(seen.insert(bits), "collision at rank {rank}");
            }
        }

        #[test]
        fn smallest_t_is_minimal(l in 2u64..10_000, w in 1u64..6) {
            let t = smallest_t(w, l);
            prop_assert!(binomial(t, w) >= u128::from(l));
            if t > w {
                prop_assert!(binomial(t - 1, w) < u128::from(l));
            }
        }
    }

    fn ring_alg(n: usize, l: u64, w: u64) -> FastWithRelabeling {
        let g = Arc::new(generators::oriented_ring(n).unwrap());
        let ex: Arc<dyn Explorer> = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        FastWithRelabeling::new(g, ex, LabelSpace::new(l).unwrap(), w).unwrap()
    }

    #[test]
    fn fwr_meets_exhaustively() {
        let alg = ring_alg(5, 10, 2);
        let e = alg.exploration_bound();
        for la in 1..=10u64 {
            for lb in (la + 1)..=10u64 {
                for pa in 0..5 {
                    for pb in 0..5 {
                        if pa == pb {
                            continue;
                        }
                        for delay in [0u64, e] {
                            let a = alg.agent(Label::new(la).unwrap(), NodeId::new(pa)).unwrap();
                            let b = alg.agent(Label::new(lb).unwrap(), NodeId::new(pb)).unwrap();
                            let out = Simulation::new(alg.graph())
                                .agent(Box::new(a), AgentSpec::immediate(NodeId::new(pa)))
                                .agent(Box::new(b), AgentSpec::delayed(NodeId::new(pb), delay))
                                .max_rounds(4 * alg.time_bound())
                                .run()
                                .unwrap();
                            let t = out.time().unwrap_or_else(|| {
                                panic!("no meeting: ℓ=({la},{lb}), p=({pa},{pb}), τ={delay}")
                            });
                            assert!(t <= alg.time_bound());
                            assert!(out.cost() <= alg.cost_bound());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fwr_rejects_bad_weights() {
        let g = Arc::new(generators::oriented_ring(5).unwrap());
        let ex: Arc<dyn Explorer> = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let space = LabelSpace::new(4).unwrap();
        assert!(FastWithRelabeling::new(g.clone(), ex.clone(), space, 0).is_err());
        assert!(FastWithRelabeling::new(g, ex, space, 5).is_err());
    }

    #[test]
    fn fwr_schedule_has_fixed_length_and_weight() {
        let alg = ring_alg(5, 20, 3);
        let lens: HashSet<u64> = (1..=20)
            .map(|l| {
                let s = alg.schedule(Label::new(l).unwrap()).unwrap();
                assert_eq!(s.explore_phases(), 2 * 3 + 1);
                s.total_rounds()
            })
            .collect();
        assert_eq!(lens.len(), 1, "all schedules equally long");
    }

    #[test]
    fn corollary_t_prime_is_exact_ceil() {
        // Exact powers: w · L^{1/w} is an integer, no rounding slack.
        assert_eq!(corollary_t_prime(2, 16), 8); // 2·4
        assert_eq!(corollary_t_prime(2, 100), 20); // 2·10
        assert_eq!(corollary_t_prime(3, 1000), 30); // 3·10
        assert_eq!(corollary_t_prime(4, 4096), 32); // 4·8
        assert_eq!(corollary_t_prime(1, 7), 7); // w=1 degenerates to L
        assert_eq!(corollary_t_prime(5, 1), 5); // L=1 degenerates to w
                                                // Non-exact: 2·sqrt(10) = 6.32…, so t' = 7 (and 7² = 49 ≥ 40 > 36 = 6²).
        assert_eq!(corollary_t_prime(2, 10), 7);
        // Agrees with the float rendering away from libm edge cases.
        for w in 1u64..6 {
            for l in 1u64..500 {
                let float = (w as f64 * (l as f64).powf(1.0 / w as f64)).ceil() as u64;
                let exact = corollary_t_prime(w, l);
                assert!(
                    exact.abs_diff(float) <= 1,
                    "w={w} l={l}: exact {exact} vs float {float}"
                );
                // Definitionally minimal: t'^w ≥ w^w·L and (t'-1)^w < w^w·L.
                let pow = |b: u64, e: u64| (0..e).fold(1u128, |a, _| a * u128::from(b));
                assert!(pow(exact, w) >= pow(w, w) * u128::from(l));
                assert!(exact == 1 || pow(exact - 1, w) < pow(w, w) * u128::from(l));
            }
        }
        // Wide inputs where both sides of the comparison overflow u128.
        assert_eq!(corollary_t_prime(30, 1 << 60), 120); // 30·2^2 = 120; 2^60 = (2^2)^30
        assert_eq!(corollary_t_prime(64, u64::MAX), 128); // 64·2, since 2^64 > u64::MAX
    }

    #[test]
    fn corollary_bound_dominates_exact_bound() {
        for (l, w) in [(16u64, 2u64), (100, 2), (1000, 3), (4096, 4)] {
            let alg = ring_alg(6, l, w);
            assert!(alg.time_bound() <= alg.corollary_time_bound());
        }
    }

    #[test]
    fn tradeoff_position_between_cheap_and_fast() {
        // For large L and w = 2: cheaper than Fast, faster than Cheap.
        let g = Arc::new(generators::oriented_ring(8).unwrap());
        let ex: Arc<dyn Explorer> = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let space = LabelSpace::new(10_000).unwrap();
        let fwr = FastWithRelabeling::new(g.clone(), ex.clone(), space, 2).unwrap();
        let cheap = crate::Cheap::new(g.clone(), ex.clone(), space);
        let fast = crate::Fast::new(g, ex, space);
        assert!(fwr.time_bound() < cheap.time_bound());
        assert!(fwr.cost_bound() < fast.cost_bound());
    }
}
