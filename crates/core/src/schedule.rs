//! Schedules: the common compiled form of all three algorithms.
//!
//! Every algorithm in the paper is a sequence of *phases*, each either an
//! execution of `EXPLORE` (taking exactly `E` rounds, idling after an early
//! finish) or a waiting period. `Cheap` is `[Explore, Wait(2ℓE), Explore]`;
//! `Fast` maps the bits of a transformed label to explore/wait phases. A
//! [`Schedule`] captures this shape, and [`ScheduleBehavior`] executes it
//! as a simulator agent.

use rendezvous_explore::{ExploreRun, Explorer};
use rendezvous_graph::{NodeId, Port, PortLabeledGraph};
use rendezvous_sim::{Action, AgentBehavior, Observation, Trajectory};
use std::fmt;
use std::sync::Arc;

/// One phase of a schedule.
#[derive(Clone)]
pub enum Phase {
    /// Execute the exploration procedure once (exactly `bound()` rounds,
    /// idling if the walk finishes early).
    Explore(Arc<dyn Explorer>),
    /// Stay idle for the given number of rounds.
    Wait(u64),
}

impl Phase {
    /// Duration of the phase in rounds.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        match self {
            Phase::Explore(e) => e.bound() as u64,
            Phase::Wait(r) => *r,
        }
    }

    /// Returns `true` for exploration phases.
    #[must_use]
    pub fn is_explore(&self) -> bool {
        matches!(self, Phase::Explore(_))
    }
}

impl fmt::Debug for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Explore(e) => write!(f, "Explore[{} x{}]", e.name(), e.bound()),
            Phase::Wait(r) => write!(f, "Wait[{r}]"),
        }
    }
}

/// A finite sequence of phases — the deterministic plan an agent follows
/// from its wake-up round.
///
/// # Examples
///
/// ```
/// use rendezvous_core::{Phase, Schedule};
/// use rendezvous_explore::BoundedWalkExplorer;
/// use std::sync::Arc;
///
/// let explore = Arc::new(BoundedWalkExplorer::new(4));
/// let s = Schedule::new(vec![
///     Phase::Explore(explore.clone()),
///     Phase::Wait(8),
///     Phase::Explore(explore),
/// ]);
/// assert_eq!(s.total_rounds(), 4 + 8 + 4);
/// assert_eq!(s.explore_phases(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    phases: Vec<Phase>,
}

impl Schedule {
    /// Creates a schedule from phases.
    #[must_use]
    pub fn new(phases: Vec<Phase>) -> Self {
        Schedule { phases }
    }

    /// The phases.
    #[must_use]
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total duration in rounds.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.phases.iter().map(Phase::rounds).sum()
    }

    /// Number of exploration phases — this times `E` upper-bounds the
    /// agent's individual cost.
    #[must_use]
    pub fn explore_phases(&self) -> u64 {
        self.phases.iter().filter(|p| p.is_explore()).count() as u64
    }

    /// Appends another schedule (used by the iterated, unknown-`E`
    /// algorithms of the Conclusion).
    pub fn extend(&mut self, other: Schedule) {
        self.phases.extend(other.phases);
    }

    /// One-character-per-phase summary: `E` for an exploration, `w` for a
    /// wait of at most one exploration bound, `W` for a longer wait.
    /// Mirrors the `T = (1, S₁, S₁, …)` pictures in the paper.
    ///
    /// # Examples
    ///
    /// ```
    /// use rendezvous_core::{Phase, Schedule};
    /// use rendezvous_explore::BoundedWalkExplorer;
    /// use std::sync::Arc;
    ///
    /// let e = Arc::new(BoundedWalkExplorer::new(4));
    /// let s = Schedule::new(vec![
    ///     Phase::Explore(e.clone()),
    ///     Phase::Wait(16),
    ///     Phase::Explore(e),
    /// ]);
    /// assert_eq!(s.describe(), "EWE");
    /// ```
    #[must_use]
    pub fn describe(&self) -> String {
        let e = self
            .phases
            .iter()
            .filter_map(|p| match p {
                Phase::Explore(ex) => Some(ex.bound() as u64),
                Phase::Wait(_) => None,
            })
            .max()
            .unwrap_or(0);
        self.phases
            .iter()
            .map(|p| match p {
                Phase::Explore(_) => 'E',
                Phase::Wait(r) if *r <= e => 'w',
                Phase::Wait(_) => 'W',
            })
            .collect()
    }
}

/// Executes a [`Schedule`] as a simulator agent.
///
/// The behavior is constructed with the agent's start node and tracks its
/// own position on the map as it moves — the "port-labelled map with marked
/// start" scenario of §1.2. (Explorers that ignore position, like trial-DFS
/// or UXS, simply never use the tracked value.) After the schedule is
/// exhausted the agent stays idle forever; the algorithms guarantee that
/// rendezvous happens before that.
pub struct ScheduleBehavior {
    graph: Arc<PortLabeledGraph>,
    /// Shared, not owned: sweep executors compile a label's schedule once
    /// and hand the same `Arc` to thousands of behaviors.
    schedule: Arc<Schedule>,
    position: NodeId,
    phase_idx: usize,
    round_in_phase: u64,
    run: Option<Box<dyn ExploreRun>>,
    /// Entry port of the move made on the previous round *within the
    /// current run* (None on a run's first round, after a stay, or across
    /// phase boundaries).
    last_entry: Option<Port>,
}

impl fmt::Debug for ScheduleBehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScheduleBehavior")
            .field("phases", &self.schedule.phases())
            .field("position", &self.position)
            .field("phase_idx", &self.phase_idx)
            .field("round_in_phase", &self.round_in_phase)
            .finish_non_exhaustive()
    }
}

impl ScheduleBehavior {
    /// Creates the behavior for an agent starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a node of `graph`.
    #[must_use]
    pub fn new(graph: Arc<PortLabeledGraph>, schedule: Schedule, start: NodeId) -> Self {
        Self::with_shared(graph, Arc::new(schedule), start)
    }

    /// Like [`ScheduleBehavior::new`] but reusing an already-compiled,
    /// shared schedule — the constructor sweep executors use so that one
    /// compilation serves every scenario with the same label.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a node of `graph`.
    #[must_use]
    pub fn with_shared(
        graph: Arc<PortLabeledGraph>,
        schedule: Arc<Schedule>,
        start: NodeId,
    ) -> Self {
        assert!(graph.contains(start), "start node out of range");
        ScheduleBehavior {
            graph,
            schedule,
            position: start,
            phase_idx: 0,
            round_in_phase: 0,
            run: None,
            last_entry: None,
        }
    }

    /// The node the behavior believes it occupies (its map position).
    #[must_use]
    pub fn position(&self) -> NodeId {
        self.position
    }

    /// Returns `true` once every phase has been executed — from then on
    /// [`next_action`](AgentBehavior::next_action) answers [`Action::Stay`]
    /// forever. Two-agent runs never observe this (the paper's algorithms
    /// meet within their schedules), but gathering fleets must: a cluster
    /// whose schedule ran out without the fleet assembling has to re-run
    /// it, or it goes permanently inert (see
    /// [`GatheringAgent`](crate::GatheringAgent)).
    #[must_use]
    pub fn exhausted(&mut self) -> bool {
        self.settle();
        self.phase_idx >= self.schedule.phases().len()
    }

    /// Skips zero-length phases and starts runs lazily.
    fn settle(&mut self) {
        while let Some(phase) = self.schedule.phases().get(self.phase_idx) {
            if self.round_in_phase >= phase.rounds() {
                self.phase_idx += 1;
                self.round_in_phase = 0;
                self.run = None;
                self.last_entry = None;
                continue;
            }
            if let Phase::Explore(explorer) = phase {
                if self.run.is_none() {
                    self.run = Some(explorer.begin(self.position));
                    self.last_entry = None;
                }
            }
            break;
        }
    }
}

/// A schedule fully unrolled from a fixed start node: every round's
/// action precomputed into one flat array, so an agent's per-round
/// decision phase is an **indexed load** instead of phase bookkeeping
/// plus an explorer-run step.
///
/// Everything a [`ScheduleBehavior`] does is a deterministic function of
/// `(schedule, start)` — the observation stream never influences its
/// moves — so the whole action sequence can be compiled once and replayed
/// by [`FlatPlan::behavior`]. Sweep workloads revisit each `(label,
/// start)` pair across every delay and partner choice of the grid, which
/// is exactly the reuse the
/// [`AlgorithmExecutor`](../../rendezvous_runner/struct.AlgorithmExecutor.html)
/// cache exploits.
///
/// The compiler *is* a [`ScheduleBehavior`] driven round by round, so the
/// flat plan is equal to the stepped execution by construction — the
/// equivalence test below and the byte-identical experiment outputs both
/// rest on that.
#[derive(Debug, Clone)]
pub struct FlatPlan {
    actions: Vec<Action>,
    end_position: NodeId,
    trajectory: Trajectory,
}

impl FlatPlan {
    /// Compiles the flat action array of `schedule` from `start` by
    /// stepping a [`ScheduleBehavior`] through every round.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a node of `graph`.
    #[must_use]
    pub fn compile(
        graph: Arc<PortLabeledGraph>,
        schedule: Arc<Schedule>,
        start: NodeId,
    ) -> FlatPlan {
        let total = schedule.total_rounds();
        let mut behavior = ScheduleBehavior::with_shared(Arc::clone(&graph), schedule, start);
        let mut actions = Vec::with_capacity(usize::try_from(total).unwrap_or(0));
        let node_index =
            |node: NodeId| u32::try_from(node.index()).expect("node index fits in u32");
        let mut trajectory = Trajectory::new(node_index(start));
        for round in 0..total {
            // The behavior reads only the degree from its observation
            // (it tracks position and entry ports internally), so the
            // synthesized observation needs nothing else.
            let action = behavior.next_action(Observation {
                local_round: round,
                degree: graph.degree(behavior.position()),
                entry_port: None,
            });
            trajectory.push(node_index(behavior.position()), action.is_move());
            actions.push(action);
        }
        FlatPlan {
            actions,
            end_position: behavior.position(),
            trajectory,
        }
    }

    /// The compiled per-round actions, in schedule order.
    #[must_use]
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Total rounds the plan covers (= the schedule's total rounds).
    #[must_use]
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Returns `true` for a zero-round plan.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Where the agent stands after the full plan has executed.
    #[must_use]
    pub fn end_position(&self) -> NodeId {
        self.end_position
    }

    /// The position-and-moves trace recorded during compilation, the
    /// input of the delay-batched
    /// [`BatchSolver`](rendezvous_sim::BatchSolver): `positions()[r]` is
    /// the node index after round `r` of the plan.
    #[must_use]
    pub fn trajectory(&self) -> &Trajectory {
        &self.trajectory
    }

    /// A behavior replaying this plan from its first round.
    #[must_use]
    pub fn behavior(self: &Arc<Self>) -> FlatPlanBehavior {
        FlatPlanBehavior {
            plan: Arc::clone(self),
            cursor: 0,
        }
    }
}

/// Replays a compiled [`FlatPlan`]: each round is one array load and a
/// cursor increment. After the plan is exhausted the agent stays idle
/// forever, exactly like an exhausted [`ScheduleBehavior`].
pub struct FlatPlanBehavior {
    /// Shared, not owned: sweep executors compile a `(label, start)`
    /// plan once and hand the same `Arc` to thousands of behaviors.
    plan: Arc<FlatPlan>,
    cursor: usize,
}

impl fmt::Debug for FlatPlanBehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlatPlanBehavior")
            .field("rounds", &self.plan.len())
            .field("cursor", &self.cursor)
            .finish()
    }
}

impl AgentBehavior for FlatPlanBehavior {
    fn next_action(&mut self, _observation: Observation) -> Action {
        let action = self
            .plan
            .actions
            .get(self.cursor)
            .copied()
            .unwrap_or(Action::Stay);
        self.cursor += 1;
        action
    }
}

impl AgentBehavior for ScheduleBehavior {
    fn next_action(&mut self, observation: Observation) -> Action {
        self.settle();
        let Some(phase) = self.schedule.phases().get(self.phase_idx) else {
            return Action::Stay; // schedule exhausted
        };
        debug_assert_eq!(
            observation.degree,
            self.graph.degree(self.position),
            "map position diverged from the simulator's ground truth"
        );
        let action = match phase {
            Phase::Wait(_) => Action::Stay,
            Phase::Explore(_) => {
                let run = self.run.as_mut().expect("settle() started the run");
                match run.next_move(observation.degree, self.last_entry) {
                    Some(p) => Action::Move(p),
                    None => Action::Stay,
                }
            }
        };
        self.round_in_phase += 1;
        match action {
            Action::Move(p) => {
                let t = self
                    .graph
                    .traverse(self.position, p)
                    .expect("explorers emit valid ports");
                self.position = t.target;
                self.last_entry = Some(t.entry_port);
            }
            Action::Stay => self.last_entry = None,
        }
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_explore::{BoundedWalkExplorer, DfsMapExplorer};
    use rendezvous_graph::generators;
    use rendezvous_sim::run_solo;

    #[test]
    fn schedule_accounting() {
        let e = Arc::new(BoundedWalkExplorer::new(3));
        let s = Schedule::new(vec![
            Phase::Wait(5),
            Phase::Explore(e.clone()),
            Phase::Wait(0),
            Phase::Explore(e),
        ]);
        assert_eq!(s.total_rounds(), 11);
        assert_eq!(s.explore_phases(), 2);
        assert_eq!(s.phases().len(), 4);
    }

    #[test]
    fn behavior_waits_then_explores() {
        let g = Arc::new(generators::oriented_ring(5).unwrap());
        let e = Arc::new(BoundedWalkExplorer::new(4));
        let s = Schedule::new(vec![Phase::Wait(2), Phase::Explore(e)]);
        let mut b = ScheduleBehavior::new(g.clone(), s, NodeId::new(0));
        let trace = run_solo(&g, &mut b, NodeId::new(0), 8).unwrap();
        // rounds 1-2: stay; rounds 3-6: clockwise; rounds 7-8: exhausted.
        let moved: Vec<bool> = trace.actions.iter().map(|a| a.is_move()).collect();
        assert_eq!(
            moved,
            vec![false, false, true, true, true, true, false, false]
        );
        assert_eq!(trace.positions.last(), Some(&NodeId::new(4)));
    }

    #[test]
    fn zero_length_wait_phases_are_skipped() {
        let g = Arc::new(generators::oriented_ring(4).unwrap());
        let e = Arc::new(BoundedWalkExplorer::new(2));
        let s = Schedule::new(vec![Phase::Wait(0), Phase::Explore(e)]);
        let mut b = ScheduleBehavior::new(g.clone(), s, NodeId::new(1));
        let trace = run_solo(&g, &mut b, NodeId::new(1), 3).unwrap();
        assert!(
            trace.actions[0].is_move(),
            "first round must already explore"
        );
        assert_eq!(trace.cost(), 2);
    }

    #[test]
    fn consecutive_explorations_restart_from_current_node() {
        // Cheap's second exploration starts wherever the first ended; the
        // DFS explorer must be re-begun from the new position.
        let g = Arc::new(generators::path(4).unwrap());
        let dfs = Arc::new(DfsMapExplorer::new(g.clone()));
        let e = dfs.bound() as u64;
        let s = Schedule::new(vec![
            Phase::Explore(dfs.clone()),
            Phase::Explore(dfs.clone()),
        ]);
        let mut b = ScheduleBehavior::new(g.clone(), s, NodeId::new(0));
        let trace = run_solo(&g, &mut b, NodeId::new(0), 2 * e).unwrap();
        // Each exploration visits all nodes; positions stay in range and
        // the second phase's walk is valid from its own start.
        let mid = trace.positions[e as usize];
        assert!(g.contains(mid));
        // coverage in both halves:
        let firsthalf: std::collections::HashSet<_> =
            trace.positions[..=e as usize].iter().copied().collect();
        assert_eq!(firsthalf.len(), 4);
        let secondhalf: std::collections::HashSet<_> =
            trace.positions[e as usize..].iter().copied().collect();
        assert_eq!(secondhalf.len(), 4);
    }

    #[test]
    fn position_tracking_matches_ground_truth() {
        let g = Arc::new(generators::grid(3, 3).unwrap());
        let dfs = Arc::new(DfsMapExplorer::new(g.clone()));
        let s = Schedule::new(vec![Phase::Explore(dfs)]);
        let mut b = ScheduleBehavior::new(g.clone(), s, NodeId::new(4));
        let rounds = b.schedule.phases()[0].rounds();
        let trace = run_solo(&g, &mut b, NodeId::new(4), rounds).unwrap();
        assert_eq!(b.position(), *trace.positions.last().unwrap());
    }

    #[test]
    fn exhausted_schedule_idles_forever() {
        let g = Arc::new(generators::oriented_ring(4).unwrap());
        let s = Schedule::new(vec![Phase::Wait(1)]);
        let mut b = ScheduleBehavior::new(g.clone(), s, NodeId::new(0));
        let trace = run_solo(&g, &mut b, NodeId::new(0), 10).unwrap();
        assert_eq!(trace.cost(), 0);
    }

    #[test]
    fn describe_matches_the_papers_pictures() {
        use crate::{Fast, Label, LabelSpace, RendezvousAlgorithm};
        use rendezvous_explore::OrientedRingExplorer;
        let g = Arc::new(generators::oriented_ring(5).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let alg = Fast::new(g, ex, LabelSpace::new(4).unwrap());
        // ℓ = 1: M(1) = 1101 -> T = 1 11 11 00 11 -> E EE EE ww EE
        let s = alg.schedule(Label::new(1).unwrap()).unwrap();
        assert_eq!(s.describe(), "EEEEEwwEE");
    }

    /// The flat plan is defined as the stepped execution: for every
    /// (algorithm, label, start) triple here, replaying the compiled
    /// array move for move matches driving the `ScheduleBehavior`, and
    /// both agree on the final position. The sweep executors' byte-identical
    /// outputs rest on this equivalence.
    #[test]
    fn flat_plan_replays_the_stepped_schedule_exactly() {
        use crate::{Cheap, Fast, Label, LabelSpace, RendezvousAlgorithm};
        use rendezvous_explore::DfsMapExplorer;
        let g = Arc::new(generators::grid(3, 3).unwrap());
        let ex = Arc::new(DfsMapExplorer::new(g.clone()));
        let space = LabelSpace::new(8).unwrap();
        let algs: Vec<Box<dyn RendezvousAlgorithm>> = vec![
            Box::new(Cheap::new(g.clone(), ex.clone(), space)),
            Box::new(Fast::new(g.clone(), ex.clone(), space)),
        ];
        for alg in &algs {
            for label in [1u64, 5, 8] {
                let schedule = Arc::new(alg.schedule(Label::new(label).unwrap()).unwrap());
                for start in 0..g.node_count() {
                    let start = NodeId::new(start);
                    let plan = Arc::new(FlatPlan::compile(g.clone(), Arc::clone(&schedule), start));
                    let rounds = schedule.total_rounds();
                    let mut stepped =
                        ScheduleBehavior::with_shared(g.clone(), Arc::clone(&schedule), start);
                    let step_trace = run_solo(&g, &mut stepped, start, rounds).unwrap();
                    let mut flat = plan.behavior();
                    let flat_trace = run_solo(&g, &mut flat, start, rounds).unwrap();
                    assert_eq!(flat_trace.actions, step_trace.actions);
                    assert_eq!(flat_trace.positions, step_trace.positions);
                    assert_eq!(plan.len() as u64, rounds);
                    assert_eq!(plan.end_position(), *step_trace.positions.last().unwrap());
                    // The recorded trajectory is the same walk as SoA:
                    // per-round positions and cumulative traversals.
                    let trajectory = plan.trajectory();
                    assert_eq!(trajectory.steps(), rounds);
                    let step_positions: Vec<u32> = step_trace
                        .positions
                        .iter()
                        .map(|n| n.index() as u32)
                        .collect();
                    assert_eq!(trajectory.positions(), &step_positions[..]);
                    assert_eq!(trajectory.moves_through(rounds), step_trace.cost());
                    for (r, action) in step_trace.actions.iter().enumerate() {
                        assert_eq!(trajectory.moved_in(r as u64 + 1), action.is_move());
                    }
                    // Past the end, the plan idles forever like an
                    // exhausted schedule.
                    let mut tail = plan.behavior();
                    let long = run_solo(&g, &mut tail, start, rounds + 7).unwrap();
                    assert!(long.actions[rounds as usize..].iter().all(|a| !a.is_move()));
                }
            }
        }
    }

    #[test]
    fn schedule_extend_concatenates() {
        let e = Arc::new(BoundedWalkExplorer::new(1));
        let mut a = Schedule::new(vec![Phase::Explore(e.clone())]);
        let b = Schedule::new(vec![Phase::Wait(3), Phase::Explore(e)]);
        a.extend(b);
        assert_eq!(a.total_rounds(), 5);
        assert_eq!(a.explore_phases(), 2);
    }
}
