//! Algorithm `Fast` (§2, Algorithm 2): the time-optimal end of the
//! tradeoff curve — both time and cost `O(E log L)`.

use crate::{CoreError, Label, LabelSpace, ModifiedLabel, Phase, RendezvousAlgorithm, Schedule};
use rendezvous_explore::Explorer;
use rendezvous_graph::PortLabeledGraph;
use std::sync::Arc;

/// Builds the doubled schedule pattern `T = (1, b₁, b₁, b₂, b₂, …, b_m, b_m)`
/// from a bit string `b`, shared by `Fast` and `FastWithRelabeling`.
pub(crate) fn doubled_pattern(bits: &[bool]) -> Vec<bool> {
    let mut t = Vec::with_capacity(2 * bits.len() + 1);
    t.push(true);
    for &b in bits {
        t.push(b);
        t.push(b);
    }
    t
}

/// Compiles a `T`-pattern into a schedule: explore on 1, wait `E` on 0.
pub(crate) fn pattern_schedule(pattern: &[bool], explorer: &Arc<dyn Explorer>) -> Schedule {
    let e = explorer.bound() as u64;
    Schedule::new(
        pattern
            .iter()
            .map(|&b| {
                if b {
                    Phase::Explore(Arc::clone(explorer))
                } else {
                    Phase::Wait(e)
                }
            })
            .collect(),
    )
}

/// Algorithm `Fast`: transform the label to the prefix-free `M(ℓ)`, then
/// execute `T = (1, S₁, S₁, …, S_m, S_m)` — exploring in 1-blocks, waiting
/// in 0-blocks, each block lasting `E` rounds.
///
/// Guarantees (Proposition 2.2, arbitrary wake-up delays):
///
/// * time at most `(4⌊log(L−1)⌋ + 9)E`,
/// * cost at most `(8⌊log(L−1)⌋ + 18)E` (twice the time).
///
/// # Examples
///
/// ```
/// use rendezvous_core::{Fast, Label, LabelSpace, RendezvousAlgorithm};
/// use rendezvous_explore::OrientedRingExplorer;
/// use rendezvous_graph::generators;
/// use std::sync::Arc;
///
/// let g = Arc::new(generators::oriented_ring(8).unwrap());
/// let explore = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
/// let alg = Fast::new(g, explore, LabelSpace::new(16).unwrap());
/// assert_eq!(alg.time_bound(), (4 * 3 + 9) * 7);
/// // M(1) = 1101 -> T = 1 11 11 00 11, 9 phases:
/// let s = alg.schedule(Label::new(1).unwrap()).unwrap();
/// assert_eq!(s.phases().len(), 9);
/// assert_eq!(s.explore_phases(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct Fast {
    graph: Arc<PortLabeledGraph>,
    explorer: Arc<dyn Explorer>,
    space: LabelSpace,
}

impl Fast {
    /// Creates the algorithm.
    #[must_use]
    pub fn new(
        graph: Arc<PortLabeledGraph>,
        explorer: Arc<dyn Explorer>,
        space: LabelSpace,
    ) -> Self {
        Fast {
            graph,
            explorer,
            space,
        }
    }
}

impl RendezvousAlgorithm for Fast {
    fn name(&self) -> &'static str {
        "fast"
    }

    fn label_space(&self) -> LabelSpace {
        self.space
    }

    fn graph(&self) -> &Arc<PortLabeledGraph> {
        &self.graph
    }

    fn exploration_bound(&self) -> u64 {
        self.explorer.bound() as u64
    }

    fn schedule(&self, label: Label) -> Result<Schedule, CoreError> {
        self.space.check(label)?;
        let pattern = doubled_pattern(ModifiedLabel::of(label).bits());
        Ok(pattern_schedule(&pattern, &self.explorer))
    }

    /// `(4⌊log(L−1)⌋ + 9) · E` (Proposition 2.2).
    fn time_bound(&self) -> u64 {
        (4 * self.space.floor_log2_l_minus_1() + 9) * self.exploration_bound()
    }

    /// `(8⌊log(L−1)⌋ + 18) · E` (Proposition 2.2; twice the time since
    /// both agents traverse at most one edge per round).
    fn cost_bound(&self) -> u64 {
        2 * self.time_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_explore::OrientedRingExplorer;
    use rendezvous_graph::{generators, NodeId};
    use rendezvous_sim::{AgentSpec, Simulation};

    fn ring_alg(n: usize, l: u64) -> Fast {
        let g = Arc::new(generators::oriented_ring(n).unwrap());
        let ex: Arc<dyn Explorer> = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        Fast::new(g, ex, LabelSpace::new(l).unwrap())
    }

    #[test]
    fn doubled_pattern_shape() {
        assert_eq!(
            doubled_pattern(&[true, false]),
            vec![true, true, true, false, false]
        );
        assert_eq!(doubled_pattern(&[]), vec![true]);
    }

    #[test]
    fn fast_meets_exhaustively_with_delays() {
        let alg = ring_alg(6, 6);
        let e = alg.exploration_bound();
        for la in 1..=6u64 {
            for lb in 1..=6u64 {
                if la == lb {
                    continue;
                }
                for pa in 0..6 {
                    for pb in 0..6 {
                        if pa == pb {
                            continue;
                        }
                        for delay in [0, 1, e, e + 1] {
                            let a = alg.agent(Label::new(la).unwrap(), NodeId::new(pa)).unwrap();
                            let b = alg.agent(Label::new(lb).unwrap(), NodeId::new(pb)).unwrap();
                            let out = Simulation::new(alg.graph())
                                .agent(Box::new(a), AgentSpec::immediate(NodeId::new(pa)))
                                .agent(Box::new(b), AgentSpec::delayed(NodeId::new(pb), delay))
                                .max_rounds(4 * alg.time_bound())
                                .run()
                                .unwrap();
                            let t = out.time().unwrap_or_else(|| {
                                panic!("no meeting: ℓ=({la},{lb}), p=({pa},{pb}), τ={delay}")
                            });
                            assert!(t <= alg.time_bound());
                            assert!(out.cost() <= alg.cost_bound());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fast_meeting_by_first_difference_block() {
        // The proof's sharper claim: meeting by round (2j+1)E where j is
        // the first index at which the modified labels differ.
        let alg = ring_alg(8, 8);
        let e = alg.exploration_bound();
        for (la, lb) in [(1u64, 2u64), (3, 5), (2, 6), (7, 8)] {
            let ma = crate::ModifiedLabel::of(Label::new(la).unwrap());
            let mb = crate::ModifiedLabel::of(Label::new(lb).unwrap());
            let j = (0..ma.len().min(mb.len()))
                .find(|&i| ma.bits()[i] != mb.bits()[i])
                .expect("prefix-free")
                + 1; // paper indexes from 1
            let a = alg.agent(Label::new(la).unwrap(), NodeId::new(0)).unwrap();
            let b = alg.agent(Label::new(lb).unwrap(), NodeId::new(3)).unwrap();
            let out = Simulation::new(alg.graph())
                .agent(Box::new(a), AgentSpec::immediate(NodeId::new(0)))
                .agent(Box::new(b), AgentSpec::immediate(NodeId::new(3)))
                .max_rounds(4 * alg.time_bound())
                .run()
                .unwrap();
            assert!(out.time().unwrap() <= (2 * j as u64 + 1) * e);
        }
    }

    #[test]
    fn fast_schedule_explore_count_tracks_label_weight() {
        let alg = ring_alg(5, 8);
        // ℓ=7 (111): M = 11111101, T has 1 + 2*weight(M) ones = 1 + 2*7.
        let s = alg.schedule(Label::new(7).unwrap()).unwrap();
        assert_eq!(s.explore_phases(), 15);
        // ℓ=4 (100): M = 11000001, ones in M = 3 -> 7 explore phases.
        let s = alg.schedule(Label::new(4).unwrap()).unwrap();
        assert_eq!(s.explore_phases(), 7);
    }

    #[test]
    fn fast_is_faster_than_cheap_for_large_l() {
        let g = Arc::new(generators::oriented_ring(12).unwrap());
        let ex: Arc<dyn Explorer> = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let space = LabelSpace::new(1024).unwrap();
        let fast = Fast::new(g.clone(), ex.clone(), space);
        let cheap = crate::Cheap::new(g, ex, space);
        assert!(fast.time_bound() < cheap.time_bound());
        assert!(fast.cost_bound() > cheap.cost_bound());
    }
}
