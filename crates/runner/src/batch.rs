//! The delay-batched piece executor: one trajectory solve per (labels,
//! starts) group instead of one simulation per scenario.
//!
//! A pair grid revisits each (label pair, start pair) once per delay
//! value, and post-PR-5 both agents' walks are precomputed [`FlatPlan`]
//! position arrays — so the whole delay axis of a group collapses into
//! one [`BatchSolver`] pass over two fixed arrays (O(T + D) instead of
//! the stepped engine's O(D·T)). [`BatchExecutor`] performs exactly that
//! regrouping **inside** a work piece: scenarios are bucketed by
//! `(labels, starts, horizon)`, each bucket is solved batched, and every
//! outcome is written back at its original in-piece index, so the fold —
//! and with it `SweepReport`s, witnesses and the shard ledger — is
//! byte-identical to the stepped engine's.
//!
//! Scenarios the solver's preconditions don't cover (fleets, equal or
//! out-of-range starts, a delayed *first* agent, a disconnected graph)
//! fall back to the wrapped [`AlgorithmExecutor`] one by one, which keeps
//! error behavior — `StartsNotDistinct`, `NotConnected`, bad labels —
//! identical too. The stepped engine thus stays in the loop as the
//! equivalence oracle; see `tests/batch_equivalence.rs`.

use crate::executor::{AlgorithmExecutor, Executor, RunnerError};
use crate::scenario::{Scenario, ScenarioOutcome};
use crate::workload::{PieceExecutor, WorkPiece};
use crate::{Bounds, Runner};
use rendezvous_core::RendezvousAlgorithm;
use rendezvous_graph::{analysis, NodeId};
use rendezvous_sim::BatchSolver;
use rendezvous_telemetry::{Counter, Metrics, Scope};
use std::collections::BTreeMap;

/// A work unit of one piece: either a delay-batched group (in-piece
/// scenario indices sharing labels, starts and horizon) or a single
/// stepped-fallback scenario.
enum Job {
    Batched(Vec<usize>),
    Stepped(usize),
}

/// Piece executor that solves the delay axis of a pair sweep in batch.
///
/// Wraps an [`AlgorithmExecutor`] (sharing its schedule/plan caches with
/// the fallback path) and carries the sweep's [`Bounds`] itself, playing
/// the role [`Bounded`](crate::Bounded) plays for stepped executors.
pub struct BatchExecutor<'a> {
    algorithm: &'a dyn RendezvousAlgorithm,
    inner: AlgorithmExecutor<'a>,
    bounds: Option<Bounds>,
    connected: bool,
    counters: Option<BatchCounters>,
}

/// Batched-vs-fallback classification counters (attached via
/// [`BatchExecutor::with_metrics`]). The scenario-scoped pair is
/// sharding-invariant because [`BatchExecutor::batchable`] is a pure
/// per-scenario predicate: any partition of a sweep classifies every
/// scenario identically.
struct BatchCounters {
    batched: Counter,
    stepped: Counter,
    groups: Counter,
}

impl<'a> BatchExecutor<'a> {
    /// Wraps `algorithm` with no sweep bounds attached.
    #[must_use]
    pub fn new(algorithm: &'a dyn RendezvousAlgorithm) -> Self {
        BatchExecutor {
            algorithm,
            inner: AlgorithmExecutor::new(algorithm),
            bounds: None,
            // The stepped engine re-checks connectivity every run; check
            // once here and route everything stepped if it fails, so the
            // error surfaces identically.
            connected: analysis::is_connected(algorithm.graph()),
            counters: None,
        }
    }

    /// Attaches the bounds every outcome of this executor's pieces is
    /// judged against.
    #[must_use]
    pub fn with_bounds(mut self, bounds: Option<Bounds>) -> Self {
        self.bounds = bounds;
        self
    }

    /// Attaches classification counters (and the inner executor's
    /// plan-cache counters) from `metrics`.
    #[must_use]
    pub fn with_metrics(mut self, metrics: &Metrics) -> Self {
        self.inner = self.inner.with_metrics(metrics);
        self.counters = Some(BatchCounters {
            batched: metrics.counter(Scope::Scenario, "scenarios_batched"),
            stepped: metrics.counter(Scope::Scenario, "scenarios_stepped"),
            groups: metrics.counter(Scope::Process, "batch_groups"),
        });
        self
    }

    /// Returns `true` if `scenario` satisfies the batched solver's
    /// preconditions; anything else goes through the stepped fallback so
    /// outcomes *and errors* match the stepped engine exactly.
    fn batchable(&self, scenario: &Scenario) -> bool {
        let graph = self.algorithm.graph();
        self.connected
            && scenario.is_pair()
            && scenario.first().delay == 0
            && scenario.start_a() != scenario.start_b()
            && graph.contains(scenario.start_a())
            && graph.contains(scenario.start_b())
    }

    /// Solves one batched group: both plans are compiled (or fetched from
    /// the shared cache) once, then every delay is one solver call.
    /// Returns `(in-piece index, outcome)` pairs, or the group's error
    /// tagged with its lowest index.
    fn solve_group(
        &self,
        scenarios: &[Scenario],
        indices: &[usize],
    ) -> Result<Vec<(usize, ScenarioOutcome)>, (usize, RunnerError)> {
        let lead = &scenarios[indices[0]];
        let plan_a = self
            .inner
            .plan(lead.first_label(), lead.start_a())
            .map_err(|e| (indices[0], e))?;
        let plan_b = self
            .inner
            .plan(lead.second_label(), lead.start_b())
            .map_err(|e| (indices[0], e))?;
        let solver = BatchSolver::new(plan_a.trajectory(), plan_b.trajectory(), lead.horizon);
        Ok(indices
            .iter()
            .map(|&i| {
                let scenario = &scenarios[i];
                let out = solver.solve(scenario.delay());
                // With an undelayed first agent the meeting round *is*
                // the paper's time (counted from the earlier wake-up).
                let outcome =
                    ScenarioOutcome::pairwise(scenario.clone(), out.round, out.cost, out.crossings);
                (i, outcome)
            })
            .collect())
    }
}

impl PieceExecutor for BatchExecutor<'_> {
    fn run_piece(
        &self,
        runner: &Runner,
        piece: &WorkPiece<'_>,
    ) -> Result<(Vec<ScenarioOutcome>, Option<Bounds>), RunnerError> {
        let scenarios = &piece.scenarios;
        // Bucket batchable scenarios by (labels, starts, horizon) in
        // first-appearance order; everything else runs stepped.
        let mut slots: BTreeMap<(u64, u64, NodeId, NodeId, u64), usize> = BTreeMap::new();
        let mut jobs: Vec<Job> = Vec::new();
        for (i, scenario) in scenarios.iter().enumerate() {
            if self.batchable(scenario) {
                let key = (
                    scenario.first_label(),
                    scenario.second_label(),
                    scenario.start_a(),
                    scenario.start_b(),
                    scenario.horizon,
                );
                match slots.get(&key) {
                    Some(&slot) => match &mut jobs[slot] {
                        Job::Batched(group) => group.push(i),
                        Job::Stepped(_) => unreachable!("slots point at batched jobs"),
                    },
                    None => {
                        slots.insert(key, jobs.len());
                        jobs.push(Job::Batched(vec![i]));
                    }
                }
            } else {
                jobs.push(Job::Stepped(i));
            }
        }
        if let Some(counters) = &self.counters {
            for job in &jobs {
                match job {
                    Job::Batched(group) => {
                        counters.batched.add_count(group.len());
                        counters.groups.inc();
                    }
                    Job::Stepped(_) => counters.stepped.inc(),
                }
            }
        }
        // One group (or one fallback scenario) per parallel task: the
        // runner spreads the piece's groups across its threads.
        let results = runner.map(jobs, |_, job| match job {
            Job::Batched(indices) => self.solve_group(scenarios, &indices),
            Job::Stepped(i) => self
                .inner
                .run(&scenarios[i])
                .map(|o| vec![(i, o)])
                .map_err(|e| (i, e)),
        });
        // Scatter outcomes back to their original indices; on failure
        // surface the lowest-index error, like the sequential fold would.
        let mut outcomes: Vec<Option<ScenarioOutcome>> = vec![None; scenarios.len()];
        let mut first_error: Option<(usize, RunnerError)> = None;
        for result in results {
            match result {
                Ok(solved) => {
                    for (i, outcome) in solved {
                        outcomes[i] = Some(outcome);
                    }
                }
                Err((i, e)) => {
                    if first_error.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_error = Some((i, e));
                    }
                }
            }
        }
        if let Some((i, e)) = first_error {
            return Err(e.at_index(i));
        }
        let outcomes = outcomes
            .into_iter()
            .map(|o| o.expect("every scenario belongs to exactly one job"))
            .collect();
        Ok((outcomes, self.bounds))
    }
}
