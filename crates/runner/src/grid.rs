//! Declarative enumeration of adversarial sweeps.

use crate::workload::{WorkPiece, Workload, WorkloadKind, WorkloadMeta};
use crate::{Placement, Scenario};
use rendezvous_graph::{NodeId, PortLabeledGraph};

/// The deterministic placement-spreading rule of a fleet sweep: given a
/// fleet size `k`, a start rotation and a delay phase, it lays `k` agents
/// out over the graph — labels spread evenly across `{1, …, L}`, starts
/// spread evenly over the `n` nodes (rotated by the rotation axis), and
/// wake-up delays staggered by a linear congruence
/// `(stride · i + phase) mod modulus`.
///
/// The rule is what turns the [`Grid`]'s scalar fleet axes (sizes ×
/// rotations × delay phases) into full k-agent [`Scenario`]s while
/// keeping enumeration index-stable: the same `(k, rotation, phase)`
/// always produces the same placements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetRule {
    /// Node count of the graph the placements spread over.
    nodes: usize,
    /// Size of the label space placements draw from (labels `1..=L`).
    label_space: u64,
    /// Delay stagger stride (`delay_i = (stride·i + phase) % modulus`).
    delay_stride: u64,
    /// Delay stagger modulus (`> 0`).
    delay_modulus: u64,
}

impl FleetRule {
    /// The standard spreading rule over `graph` with label space `L` and
    /// the X9 stagger `(7·i) mod 13`.
    ///
    /// # Panics
    ///
    /// Panics if `label_space < 2` — a fleet needs two distinct labels.
    #[must_use]
    pub fn spread(graph: &PortLabeledGraph, label_space: u64) -> Self {
        assert!(
            label_space >= 2,
            "label space of size {label_space} cannot hold two distinct labels"
        );
        FleetRule {
            nodes: graph.node_count(),
            label_space,
            delay_stride: 7,
            delay_modulus: 13,
        }
    }

    /// Overrides the delay stagger: agent `i` sleeps
    /// `(stride·i + phase) mod modulus` rounds, where `phase` comes from
    /// the grid's delay axis.
    ///
    /// # Panics
    ///
    /// Panics if `modulus == 0`.
    #[must_use]
    pub fn stagger(mut self, stride: u64, modulus: u64) -> Self {
        assert!(modulus > 0, "delay stagger modulus must be positive");
        self.delay_stride = stride;
        self.delay_modulus = modulus;
        self
    }

    /// Folds the rule's parameters into a workload digest — fleet grids
    /// with different spreads enumerate different placement lists even
    /// at equal sizes, so the rule is part of the space's identity.
    pub(crate) fn digest_into(&self, h: &mut crate::workload::Fnv1a) {
        h.write_usize(self.nodes);
        h.write_u64(self.label_space);
        h.write_u64(self.delay_stride);
        h.write_u64(self.delay_modulus);
    }

    /// The largest fleet this rule can place: every agent needs its own
    /// start node and its own label.
    #[must_use]
    pub fn max_fleet(&self) -> usize {
        let by_labels = usize::try_from(self.label_space).unwrap_or(usize::MAX);
        self.nodes.min(by_labels)
    }

    /// The largest wake-up delay this rule's stagger can ever produce
    /// (`modulus − 1`) — what horizon and loosest-bound calculations
    /// should be sized against instead of hardcoding the default
    /// stagger's 12.
    #[must_use]
    pub fn max_delay(&self) -> u64 {
        self.delay_modulus - 1
    }

    /// Lays out a `k`-agent fleet: distinct labels spread over
    /// `{1, …, L}`, distinct starts spread over the nodes (shifted by
    /// `rotation`), staggered delays shifted by `phase`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > self.max_fleet()` (the spread cannot
    /// keep labels and starts distinct beyond that).
    #[must_use]
    pub fn placements(&self, k: usize, rotation: usize, phase: u64) -> Vec<Placement> {
        assert!(
            k >= 2 && k <= self.max_fleet(),
            "fleet of {k} does not fit {} nodes / {} labels",
            self.nodes,
            self.label_space
        );
        let l = self.label_space;
        (0..k)
            .map(|i| Placement {
                // Evenly spread over {1, …, L}: agent 0 gets 1, the last
                // agent gets L, intermediate agents interpolate. Strictly
                // increasing because k ≤ L.
                label: 1 + (i as u64 * (l - 1)) / (k as u64 - 1).max(1),
                // Evenly spread over the n nodes, rotated; ⌊i·n/k⌋ takes k
                // distinct values in 0..n because k ≤ n, and the rotation
                // is a bijection mod n, so starts stay pairwise distinct.
                start: NodeId::new((i * self.nodes / k + rotation) % self.nodes),
                delay: (self.delay_stride * i as u64 + phase) % self.delay_modulus,
            })
            .collect()
    }
}

/// Builder for an adversarial configuration sweep, in one of two modes:
///
/// * **pair mode** (the default): ordered label pairs × ordered distinct
///   start pairs × wake-up delays, each combination becoming one
///   two-agent [`Scenario`];
/// * **fleet mode** ([`Grid::fleet_sizes`]): fleet sizes × start
///   rotations × delay phases, each combination expanded into a k-agent
///   [`Scenario`] by the grid's [`FleetRule`].
///
/// The two modes are mutually exclusive; pair-mode enumeration, the
/// sampling cap and [`Grid::shard`] are bit-for-bit unchanged by the
/// existence of fleet mode (regression-tested below), so pair sweeps
/// produce byte-identical outputs either way.
///
/// For spaces too large to exhaust, [`Grid::sample_cap`] keeps a
/// deterministic evenly-strided subsample — the same cap always selects
/// the same scenarios, so capped sweeps stay reproducible.
#[derive(Debug, Clone)]
pub struct Grid {
    horizon: u64,
    /// Ordered (first, second) label pairs.
    label_pairs: Vec<(u64, u64)>,
    /// Ordered (start_a, start_b) pairs, `a != b`.
    start_pairs: Vec<(NodeId, NodeId)>,
    delays: Vec<u64>,
    cap: Option<usize>,
    /// Fleet mode: the `k` axis (empty = pair mode).
    fleet_sizes: Vec<usize>,
    /// Fleet mode: how placements spread for a given `(k, rotation, phase)`.
    fleet_rule: Option<FleetRule>,
    /// Fleet mode: the start-rotation axis (default `[0]`).
    rotations: Vec<usize>,
}

impl Grid {
    /// Creates an empty grid whose scenarios get round budget `horizon`.
    #[must_use]
    pub fn new(horizon: u64) -> Self {
        Grid {
            horizon,
            label_pairs: Vec::new(),
            start_pairs: Vec::new(),
            delays: vec![0],
            cap: None,
            fleet_sizes: Vec::new(),
            fleet_rule: None,
            rotations: vec![0],
        }
    }

    /// Adds ordered label pairs exactly as given (first agent gets `.0`).
    #[must_use]
    pub fn label_pairs_ordered(mut self, pairs: &[(u64, u64)]) -> Self {
        assert!(
            self.fleet_sizes.is_empty(),
            "label pairs are a pair-mode axis; this grid sweeps fleets"
        );
        self.label_pairs.extend_from_slice(pairs);
        self
    }

    /// Adds each unordered label pair in both role orders — the adversary
    /// also chooses *which* agent is woken first.
    #[must_use]
    pub fn label_pairs_both_orders(mut self, pairs: &[(u64, u64)]) -> Self {
        assert!(
            self.fleet_sizes.is_empty(),
            "label pairs are a pair-mode axis; this grid sweeps fleets"
        );
        for &(a, b) in pairs {
            self.label_pairs.push((a, b));
            self.label_pairs.push((b, a));
        }
        self
    }

    /// Sweeps all ordered pairs of distinct start nodes of `graph`.
    #[must_use]
    pub fn all_start_pairs(mut self, graph: &PortLabeledGraph) -> Self {
        assert!(
            self.fleet_sizes.is_empty(),
            "start pairs are a pair-mode axis; this grid sweeps fleets"
        );
        let n = graph.node_count();
        self.start_pairs.reserve(n * n.saturating_sub(1));
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    self.start_pairs.push((NodeId::new(a), NodeId::new(b)));
                }
            }
        }
        self
    }

    /// Sweeps the given ordered start pairs, **skipping** any pair whose
    /// two nodes coincide: a [`Scenario`] places two distinct agents, and
    /// `start_a == start_b` would be an immediate zero-time "meeting" that
    /// silently deflates worst-case sweeps. Rejecting at this boundary
    /// keeps the invariant out of every caller's hands (regression-tested
    /// below).
    #[must_use]
    pub fn start_pairs(mut self, pairs: &[(NodeId, NodeId)]) -> Self {
        assert!(
            self.fleet_sizes.is_empty(),
            "start pairs are a pair-mode axis; this grid sweeps fleets"
        );
        self.start_pairs
            .extend(pairs.iter().copied().filter(|(a, b)| a != b));
        self
    }

    /// Sets the wake-up delays applied to the second agent (default
    /// `[0]`). In fleet mode the same axis supplies the delay *phases*
    /// fed to the [`FleetRule`]'s stagger.
    ///
    /// The axis is sorted and deduplicated: a repeated delay is the same
    /// adversary choice, and enumeration order (hence witness tie-breaks)
    /// should not depend on how the caller happened to list the values.
    #[must_use]
    pub fn delays(mut self, delays: &[u64]) -> Self {
        self.delays = delays.to_vec();
        self.delays.sort_unstable();
        self.delays.dedup();
        self
    }

    /// Switches the grid into **fleet mode**, sweeping the given fleet
    /// sizes `k`. Requires a [`Grid::fleet_rule`] before enumeration and
    /// excludes the pair-mode axes.
    ///
    /// # Panics
    ///
    /// Panics if pair-mode axes were already configured, or any `k < 2`.
    #[must_use]
    pub fn fleet_sizes(mut self, sizes: &[usize]) -> Self {
        assert!(
            self.label_pairs.is_empty() && self.start_pairs.is_empty(),
            "fleet sizes are a fleet-mode axis; this grid sweeps label/start pairs"
        );
        assert!(
            sizes.iter().all(|&k| k >= 2),
            "fleets place at least two agents: {sizes:?}"
        );
        self.fleet_sizes.extend_from_slice(sizes);
        self
    }

    /// Sets the fleet placement-spreading rule (fleet mode only).
    #[must_use]
    pub fn fleet_rule(mut self, rule: FleetRule) -> Self {
        self.fleet_rule = Some(rule);
        self
    }

    /// Sets the start-rotation axis of fleet mode (default `[0]`): each
    /// rotation shifts every spread start by that many nodes, so
    /// asymmetric graphs contribute genuinely different placements.
    ///
    /// # Panics
    ///
    /// Panics if `rotations` is empty.
    #[must_use]
    pub fn fleet_rotations(mut self, rotations: &[usize]) -> Self {
        assert!(!rotations.is_empty(), "rotation axis cannot be empty");
        self.rotations = rotations.to_vec();
        self
    }

    /// Caps the sweep at `max` scenarios via deterministic even striding.
    #[must_use]
    pub fn sample_cap(mut self, max: usize) -> Self {
        assert!(max > 0, "sample cap must be positive");
        self.cap = Some(max);
        self
    }

    /// Content digest of everything that defines this grid's scenario
    /// list — sizes alone are not a sound identity (two grids with
    /// different horizons or label values can enumerate equally many
    /// units), so the [`WorkloadMeta`] fingerprint folds the actual
    /// axes. Each axis is prefixed with its length so adjacent
    /// variable-length axes cannot alias.
    pub(crate) fn digest(&self) -> u64 {
        let mut h = crate::workload::Fnv1a::new();
        h.write_u64(self.horizon);
        h.write_usize(self.label_pairs.len());
        for &(a, b) in &self.label_pairs {
            h.write_u64(a);
            h.write_u64(b);
        }
        h.write_usize(self.start_pairs.len());
        for &(a, b) in &self.start_pairs {
            h.write_usize(a.index());
            h.write_usize(b.index());
        }
        h.write_usize(self.delays.len());
        for &d in &self.delays {
            h.write_u64(d);
        }
        match self.cap {
            Some(cap) => {
                h.write_u64(1);
                h.write_usize(cap);
            }
            None => h.write_u64(0),
        }
        h.write_usize(self.fleet_sizes.len());
        for &k in &self.fleet_sizes {
            h.write_usize(k);
        }
        h.write_usize(self.rotations.len());
        for &r in &self.rotations {
            h.write_usize(r);
        }
        match &self.fleet_rule {
            Some(rule) => {
                h.write_u64(1);
                rule.digest_into(&mut h);
            }
            None => h.write_u64(0),
        }
        h.finish()
    }

    /// Number of scenarios before any sampling cap, saturating at
    /// `usize::MAX` for product spaces too large to index (a grid that big
    /// can only ever be swept through [`Grid::sample_cap`] anyway, and the
    /// capped stride stays exact below the saturation point).
    #[must_use]
    pub fn full_size(&self) -> usize {
        if self.fleet_sizes.is_empty() {
            product_size(
                self.label_pairs.len(),
                self.start_pairs.len(),
                self.delays.len(),
            )
        } else {
            product_size(
                self.fleet_sizes.len(),
                self.rotations.len(),
                self.delays.len(),
            )
        }
    }

    /// Number of scenarios [`Grid::scenarios`] will actually yield: the
    /// full product space clipped to the sampling cap.
    #[must_use]
    pub fn size(&self) -> usize {
        match self.cap {
            Some(cap) => self.full_size().min(cap),
            None => self.full_size(),
        }
    }

    /// The scenario at flat index `index` of the **full** (pre-cap) space.
    ///
    /// Pair mode decomposes exactly as it always has (label pair outer →
    /// start pair → delay inner), so the fleet generalization cannot
    /// perturb existing sweeps; fleet mode decomposes fleet size outer →
    /// rotation → delay phase inner, through the same arithmetic.
    fn nth(&self, index: usize) -> Scenario {
        let delay_i = index % self.delays.len();
        let rest = index / self.delays.len();
        if let Some(rule) = &self.fleet_rule {
            if !self.fleet_sizes.is_empty() {
                let rot_i = rest % self.rotations.len();
                let fleet_i = rest / self.rotations.len();
                let placements = rule.placements(
                    self.fleet_sizes[fleet_i],
                    self.rotations[rot_i],
                    self.delays[delay_i],
                );
                return Scenario::fleet(placements, self.horizon);
            }
        }
        assert!(
            self.fleet_sizes.is_empty(),
            "fleet sizes configured without a fleet rule"
        );
        let start_i = rest % self.start_pairs.len();
        let label_i = rest / self.start_pairs.len();
        let (first_label, second_label) = self.label_pairs[label_i];
        let (start_a, start_b) = self.start_pairs[start_i];
        Scenario::pair(
            first_label,
            second_label,
            start_a,
            start_b,
            self.delays[delay_i],
            self.horizon,
        )
    }

    /// The scenario at post-cap index `i` — identical to
    /// `self.scenarios()[i]` without materializing the list. The single
    /// definition of the capped-index → scenario mapping, shared by
    /// [`Grid::scenarios`] and [`Grid::shard`] so the two can never drift.
    fn capped_nth(&self, i: usize) -> Scenario {
        let total = self.full_size();
        match self.cap {
            Some(cap) if total > cap => self.nth(strided(i, total, cap)),
            _ => self.nth(i),
        }
    }

    /// Enumerates the scenarios of this grid, applying the sampling cap.
    ///
    /// Enumeration order is label pair (outer) → start pair → delay
    /// (inner); the order is part of the contract, since
    /// [`SweepReport`](crate::SweepReport) tie-breaks worst-case witnesses
    /// by scenario index.
    #[must_use]
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.scenarios_in(0, self.size())
    }

    /// Materializes the half-open capped-index range `[lo, hi)` of
    /// [`Grid::scenarios`] without building the whole list — the slice a
    /// topology sweep executes when a shard boundary falls inside this
    /// grid (see [`TopoGrid`](crate::TopoGrid)).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > self.size()`.
    #[must_use]
    pub fn scenarios_in(&self, lo: usize, hi: usize) -> Vec<Scenario> {
        assert!(
            lo <= hi && hi <= self.size(),
            "scenario range {lo}..{hi} out of bounds for a grid of {}",
            self.size()
        );
        (lo..hi).map(|i| self.capped_nth(i)).collect()
    }
}

/// A [`Grid`] is the elementary [`Workload`]: one graph, an index-stable
/// capped scenario list, and a single piece per range (every scenario
/// shares the grid's one context, so the fold key is empty and the
/// report has one group).
///
/// The sampling cap is applied *before* sharding — so merging the shard
/// sweeps of a capped grid reproduces the capped single-process sweep
/// bit for bit, and shards stay balanced to within one scenario (when
/// the grid holds fewer scenarios than shards, trailing shards are empty
/// but still valid).
impl Workload for Grid {
    fn size(&self) -> usize {
        Grid::size(self)
    }

    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            kind: WorkloadKind::Grid,
            digest: self.digest(),
            full_size: self.full_size(),
            size: self.size(),
        }
    }

    fn pieces(&self, lo: usize, hi: usize) -> Vec<WorkPiece<'_>> {
        // Validate even the empty range, like scenarios_in (and the
        // TopoGrid impl) would — a silent empty sweep from an
        // out-of-bounds range is exactly the bug the contract forbids.
        assert!(
            lo <= hi && hi <= self.size(),
            "scenario range {lo}..{hi} out of bounds for a grid of {}",
            self.size()
        );
        if lo == hi {
            return Vec::new();
        }
        vec![WorkPiece {
            offset: lo,
            key: "",
            entry: None,
            scenarios: self.scenarios_in(lo, hi),
        }]
    }
}

/// The saturating three-way product backing [`Grid::full_size`]: grids
/// whose dimensions multiply past `usize::MAX` clamp instead of wrapping
/// (the old unchecked product wrapped to a small number, making capped
/// sampling enumerate a tiny, wrong slice of the space).
fn product_size(a: usize, b: usize, c: usize) -> usize {
    a.saturating_mul(b).saturating_mul(c)
}

/// Balanced-partition stride: the start of slice `i` when `total` items
/// are divided into `cap` contiguous near-equal slices (also the sampling
/// stride of [`Grid::sample_cap`]). This is the default
/// [`Workload::shard`] rule, so every workload kind cuts its index space
/// identically.
pub(crate) fn strided(i: usize, total: usize, cap: usize) -> usize {
    usize::try_from(i as u128 * total as u128 / cap as u128)
        .expect("stride result is below `total`, which fits usize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_graph::generators;

    fn small_grid() -> Grid {
        let g = generators::oriented_ring(4).unwrap();
        Grid::new(100)
            .label_pairs_both_orders(&[(1, 2)])
            .delays(&[0, 3])
            .all_start_pairs(&g)
    }

    #[test]
    fn full_enumeration_covers_the_product_space() {
        let grid = small_grid();
        let scenarios = grid.scenarios();
        // 2 label orders × 12 ordered start pairs × 2 delays.
        assert_eq!(scenarios.len(), 48);
        assert_eq!(grid.full_size(), 48);
        // All distinct.
        let mut seen = std::collections::HashSet::new();
        for s in &scenarios {
            assert!(s.start_a() != s.start_b());
            assert_eq!(s.horizon, 100);
            assert!(seen.insert(s.clone()));
        }
        // Both label orders present.
        assert!(scenarios.iter().any(|s| s.first_label() == 1));
        assert!(scenarios.iter().any(|s| s.first_label() == 2));
    }

    #[test]
    fn sampling_cap_is_deterministic_and_within_space() {
        let grid = small_grid().sample_cap(10);
        let a = grid.scenarios();
        let b = grid.scenarios();
        assert_eq!(a.len(), 10);
        assert_eq!(a, b, "capped enumeration must be reproducible");
        let full: std::collections::HashSet<_> = small_grid().scenarios().into_iter().collect();
        for s in &a {
            assert!(full.contains(s), "sampled scenario outside the space");
        }
        // No duplicates in the sample.
        let dedup: std::collections::HashSet<_> = a.iter().cloned().collect();
        assert_eq!(dedup.len(), a.len());
    }

    #[test]
    fn cap_larger_than_space_is_a_no_op() {
        let grid = small_grid().sample_cap(1_000);
        assert_eq!(grid.scenarios().len(), 48);
    }

    #[test]
    fn delays_are_sorted_and_deduplicated() {
        let g = generators::oriented_ring(4).unwrap();
        let messy = Grid::new(100)
            .label_pairs_both_orders(&[(1, 2)])
            .delays(&[3, 0, 3, 7, 0, 7, 7])
            .all_start_pairs(&g);
        let clean = Grid::new(100)
            .label_pairs_both_orders(&[(1, 2)])
            .delays(&[0, 3, 7])
            .all_start_pairs(&g);
        // Same index space, same enumeration order — a repeated delay is
        // the same adversary choice, not extra scenarios.
        assert_eq!(messy.full_size(), clean.full_size());
        assert_eq!(messy.scenarios(), clean.scenarios());
    }

    #[test]
    fn shards_partition_the_scenario_list_exactly() {
        for grid in [small_grid(), small_grid().sample_cap(17)] {
            let whole = grid.scenarios();
            for of in [1usize, 2, 3, 5, 48, 100] {
                let mut rebuilt: Vec<Scenario> = Vec::new();
                let mut next_offset = 0;
                for i in 0..of {
                    let (lo, hi) = grid.shard(i, of);
                    assert_eq!(
                        lo, next_offset,
                        "shard {i}/{of} must start where the previous ended"
                    );
                    next_offset = hi;
                    rebuilt.extend(grid.scenarios_in(lo, hi));
                }
                assert_eq!(rebuilt, whole, "concatenated shards ({of}) != full list");
                // Balanced to within one scenario.
                let lens: Vec<usize> = (0..of)
                    .map(|i| {
                        let (lo, hi) = grid.shard(i, of);
                        hi - lo
                    })
                    .collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced shards: {lens:?}");
            }
        }
    }

    #[test]
    fn more_shards_than_scenarios_yields_empty_tails() {
        let grid = small_grid().sample_cap(3);
        let lens: Vec<usize> = (0..7)
            .map(|i| {
                let (lo, hi) = grid.shard(i, 7);
                hi - lo
            })
            .collect();
        assert_eq!(lens.iter().sum::<usize>(), 3);
        assert!(lens.iter().all(|&l| l <= 1));
    }

    /// The Workload view of a grid: one piece per range, empty fold key,
    /// no topology context, scenarios identical to `scenarios_in`.
    #[test]
    fn grid_workload_yields_one_piece_per_range() {
        let grid = small_grid().sample_cap(17);
        let meta = grid.meta();
        assert_eq!(meta.kind, WorkloadKind::Grid);
        assert_eq!((meta.full_size, meta.size), (48, 17));
        let pieces = grid.pieces(3, 11);
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].offset, 3);
        assert_eq!(pieces[0].key, "");
        assert!(pieces[0].entry.is_none());
        assert_eq!(pieces[0].scenarios, grid.scenarios_in(3, 11));
        assert!(grid.pieces(5, 5).is_empty());
    }

    /// Regression: `start_pairs` used to append whatever it was given, so
    /// a caller-supplied `start_a == start_b` pair produced a degenerate
    /// "two agents on one node" scenario that met at time 0 and silently
    /// deflated worst-case sweeps. The boundary now skips such pairs.
    #[test]
    fn coincident_start_pairs_are_skipped_at_the_boundary() {
        let grid = Grid::new(10).label_pairs_ordered(&[(1, 2)]).start_pairs(&[
            (NodeId::new(0), NodeId::new(0)),
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(2), NodeId::new(2)),
            (NodeId::new(1), NodeId::new(0)),
        ]);
        let scenarios = grid.scenarios();
        assert_eq!(scenarios.len(), 2, "both degenerate pairs dropped");
        assert!(scenarios.iter().all(|s| s.start_a() != s.start_b()));
        // The all-degenerate case leaves an empty (zero-scenario) grid.
        let empty = Grid::new(10)
            .label_pairs_ordered(&[(1, 2)])
            .start_pairs(&[(NodeId::new(3), NodeId::new(3))]);
        assert_eq!(empty.size(), 0);
    }

    #[test]
    fn scenarios_in_matches_the_full_enumeration() {
        for grid in [small_grid(), small_grid().sample_cap(17)] {
            let whole = grid.scenarios();
            let n = grid.size();
            assert_eq!(grid.scenarios_in(0, n), whole);
            assert_eq!(grid.scenarios_in(3, 11), whole[3..11].to_vec());
            assert!(grid.scenarios_in(5, 5).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn scenarios_in_rejects_ranges_past_the_end() {
        let _ = small_grid().scenarios_in(0, 49);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_must_be_in_range() {
        let _ = small_grid().shard(3, 3);
    }

    #[test]
    #[should_panic(expected = "zero shards")]
    fn shard_count_must_be_positive() {
        let _ = small_grid().shard(0, 0);
    }

    /// Regression: the sampling stride used to compute `i * total / cap`
    /// in `usize`, which wraps once `i * total` exceeds `2^64` — silently
    /// sampling wrong (and duplicate) scenarios on billion-scenario grids
    /// with large caps. This grid has `2^17 × 2^17 × 2^15 = 2^49`
    /// scenarios and a `2^16` cap, so the old product reached `2^65`.
    #[test]
    fn capped_sampling_survives_huge_index_spaces() {
        let labels: Vec<(u64, u64)> = (0..1u64 << 17).map(|i| (i + 1, i + 2)).collect();
        let starts: Vec<(NodeId, NodeId)> = (0..1usize << 17)
            .map(|i| (NodeId::new(i), NodeId::new(i + 1)))
            .collect();
        let delays: Vec<u64> = (0..1u64 << 15).collect();
        let cap = 1usize << 16;
        let grid = Grid::new(10)
            .label_pairs_ordered(&labels)
            .start_pairs(&starts)
            .delays(&delays)
            .sample_cap(cap);
        assert_eq!(grid.full_size(), 1usize << 49);
        assert_eq!(grid.size(), cap);
        let sampled = grid.scenarios();
        assert_eq!(sampled.len(), cap);
        // The stride must stay strictly increasing (the wrap broke this),
        // which also proves every sampled index is distinct and in space.
        let mut last_label = 0;
        for s in &sampled {
            assert!(s.first_label() >= last_label, "stride went backwards");
            last_label = s.first_label();
        }
        assert_eq!(sampled[0].first_label(), 1, "index 0 must be included");
        // Strides spread over the whole space, not just a wrapped prefix.
        assert!(sampled.last().unwrap().first_label() > (1 << 17) - 2);
    }

    fn fleet_grid(ks: &[usize]) -> Grid {
        let g = generators::oriented_ring(12).unwrap();
        Grid::new(400)
            .fleet_sizes(ks)
            .fleet_rule(FleetRule::spread(&g, 32))
            .fleet_rotations(&[0, 3])
            .delays(&[0, 5])
    }

    #[test]
    fn fleet_mode_enumerates_sizes_by_rotations_by_phases() {
        let grid = fleet_grid(&[2, 3, 5]);
        let scenarios = grid.scenarios();
        assert_eq!(grid.full_size(), 3 * 2 * 2);
        assert_eq!(scenarios.len(), 12);
        // Fleet size is the outer axis, phases the inner one.
        assert_eq!(scenarios[0].k(), 2);
        assert_eq!(scenarios[4].k(), 3);
        assert_eq!(scenarios[8].k(), 5);
        // All placements valid: distinct starts, distinct labels, k >= 2.
        for s in &scenarios {
            let mut starts: Vec<_> = s.placements.iter().map(|p| p.start).collect();
            starts.sort_unstable();
            starts.dedup();
            assert_eq!(starts.len(), s.k(), "starts must be pairwise distinct");
            let mut labels: Vec<_> = s.placements.iter().map(|p| p.label).collect();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), s.k(), "labels must be pairwise distinct");
            assert_eq!(s.horizon, 400);
        }
        // The zero-rotation, zero-phase placements reproduce the classic
        // X9 spread exactly: label 1 + i(L-1)/(k-1), start ⌊i·n/k⌋,
        // delay (7i) mod 13.
        let s = &scenarios[0];
        assert_eq!(s.placements[0].label, 1);
        assert_eq!(s.placements[1].label, 32);
        assert_eq!(s.placements[1].start.index(), 6);
        assert_eq!(s.placements[1].delay, 7);
        // Rotation shifts every start by the same offset, mod n.
        let rotated = &scenarios[2];
        assert_eq!(rotated.placements[0].start.index(), 3);
        assert_eq!(rotated.placements[1].start.index(), 9);
        // Phase shifts every delay through the stagger modulus.
        let phased = &scenarios[1];
        assert_eq!(phased.placements[0].delay, 5);
        assert_eq!(phased.placements[1].delay, 12);
    }

    #[test]
    fn fleet_shards_partition_exactly_like_pair_shards() {
        let grid = fleet_grid(&[2, 3, 4, 5, 6]).sample_cap(13);
        let whole = grid.scenarios();
        assert_eq!(whole.len(), 13);
        for of in [1usize, 2, 3, 7] {
            let mut rebuilt: Vec<Scenario> = Vec::new();
            for i in 0..of {
                let (lo, hi) = grid.shard(i, of);
                assert_eq!(lo, rebuilt.len());
                rebuilt.extend(grid.scenarios_in(lo, hi));
            }
            assert_eq!(rebuilt, whole, "fleet shards ({of}) != full list");
        }
    }

    /// A custom stagger rewires the delay congruence: agent `i` of any
    /// fleet sleeps `(stride·i + phase) mod modulus` rounds.
    #[test]
    fn stagger_overrides_the_delay_congruence() {
        let g = generators::oriented_ring(10).unwrap();
        let rule = FleetRule::spread(&g, 16).stagger(5, 9);
        let placements = rule.placements(4, 0, 2);
        let delays: Vec<u64> = placements.iter().map(|p| p.delay).collect();
        assert_eq!(delays, vec![2, 7, 3, 8], "(5·i + 2) mod 9");
        // And through a grid: the phase axis feeds the custom congruence.
        let grid = Grid::new(100)
            .fleet_sizes(&[3])
            .fleet_rule(FleetRule::spread(&g, 16).stagger(5, 9))
            .delays(&[4]);
        let s = &grid.scenarios()[0];
        assert_eq!(
            s.placements.iter().map(|p| p.delay).collect::<Vec<_>>(),
            vec![4, 0, 5],
            "(5·i + 4) mod 9"
        );
    }

    #[test]
    #[should_panic(expected = "modulus must be positive")]
    fn stagger_rejects_a_zero_modulus() {
        let g = generators::oriented_ring(4).unwrap();
        let _ = FleetRule::spread(&g, 4).stagger(3, 0);
    }

    #[test]
    #[should_panic(expected = "pair-mode axis")]
    fn fleet_and_pair_axes_are_mutually_exclusive() {
        let g = generators::oriented_ring(6).unwrap();
        let _ = Grid::new(10).fleet_sizes(&[2]).all_start_pairs(&g);
    }

    #[test]
    #[should_panic(expected = "fleet-mode axis")]
    fn pair_axes_reject_fleet_grids_symmetrically() {
        let _ = Grid::new(10)
            .label_pairs_ordered(&[(1, 2)])
            .fleet_sizes(&[2]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn fleet_rule_rejects_fleets_larger_than_the_graph() {
        let g = generators::oriented_ring(4).unwrap();
        let _ = FleetRule::spread(&g, 32).placements(5, 0, 0);
    }

    /// Regression: the product space size saturates instead of wrapping
    /// when the dimensions multiply past `usize::MAX` — the old unchecked
    /// `a * b * c` wrapped (e.g. `2^22 × 2^21 × 2^21` wrapped to 0),
    /// collapsing capped sweeps of such grids to garbage.
    #[test]
    fn full_size_saturates_instead_of_wrapping() {
        assert_eq!(product_size(1 << 22, 1 << 21, 1 << 21), usize::MAX);
        assert_eq!(product_size(usize::MAX, usize::MAX, 2), usize::MAX);
        assert_eq!(product_size(usize::MAX, 1, 1), usize::MAX);
        // Non-overflowing products stay exact.
        assert_eq!(product_size(3, 5, 7), 105);
        assert_eq!(product_size(1 << 20, 1 << 20, 1 << 20), 1 << 60);
        assert_eq!(product_size(0, usize::MAX, usize::MAX), 0);
    }
}
