//! Declarative enumeration of adversarial sweeps.

use crate::Scenario;
use rendezvous_graph::{NodeId, PortLabeledGraph};

/// Builder for an adversarial configuration sweep: ordered label pairs ×
/// ordered distinct start pairs × wake-up delays, each combination becoming
/// one [`Scenario`].
///
/// For spaces too large to exhaust, [`Grid::sample_cap`] keeps a
/// deterministic evenly-strided subsample — the same cap always selects
/// the same scenarios, so capped sweeps stay reproducible.
#[derive(Debug, Clone)]
pub struct Grid {
    horizon: u64,
    /// Ordered (first, second) label pairs.
    label_pairs: Vec<(u64, u64)>,
    /// Ordered (start_a, start_b) pairs, `a != b`.
    start_pairs: Vec<(NodeId, NodeId)>,
    delays: Vec<u64>,
    cap: Option<usize>,
}

impl Grid {
    /// Creates an empty grid whose scenarios get round budget `horizon`.
    #[must_use]
    pub fn new(horizon: u64) -> Self {
        Grid {
            horizon,
            label_pairs: Vec::new(),
            start_pairs: Vec::new(),
            delays: vec![0],
            cap: None,
        }
    }

    /// Adds ordered label pairs exactly as given (first agent gets `.0`).
    #[must_use]
    pub fn label_pairs_ordered(mut self, pairs: &[(u64, u64)]) -> Self {
        self.label_pairs.extend_from_slice(pairs);
        self
    }

    /// Adds each unordered label pair in both role orders — the adversary
    /// also chooses *which* agent is woken first.
    #[must_use]
    pub fn label_pairs_both_orders(mut self, pairs: &[(u64, u64)]) -> Self {
        for &(a, b) in pairs {
            self.label_pairs.push((a, b));
            self.label_pairs.push((b, a));
        }
        self
    }

    /// Sweeps all ordered pairs of distinct start nodes of `graph`.
    #[must_use]
    pub fn all_start_pairs(mut self, graph: &PortLabeledGraph) -> Self {
        let n = graph.node_count();
        self.start_pairs.reserve(n * n.saturating_sub(1));
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    self.start_pairs.push((NodeId::new(a), NodeId::new(b)));
                }
            }
        }
        self
    }

    /// Sweeps exactly the given ordered start pairs.
    #[must_use]
    pub fn start_pairs(mut self, pairs: &[(NodeId, NodeId)]) -> Self {
        self.start_pairs.extend_from_slice(pairs);
        self
    }

    /// Sets the wake-up delays applied to the second agent (default `[0]`).
    #[must_use]
    pub fn delays(mut self, delays: &[u64]) -> Self {
        self.delays = delays.to_vec();
        self
    }

    /// Caps the sweep at `max` scenarios via deterministic even striding.
    #[must_use]
    pub fn sample_cap(mut self, max: usize) -> Self {
        assert!(max > 0, "sample cap must be positive");
        self.cap = Some(max);
        self
    }

    /// Number of scenarios before any sampling cap.
    #[must_use]
    pub fn full_size(&self) -> usize {
        self.label_pairs.len() * self.start_pairs.len() * self.delays.len()
    }

    /// Enumerates the scenarios of this grid, applying the sampling cap.
    ///
    /// Enumeration order is label pair (outer) → start pair → delay
    /// (inner); the order is part of the contract, since
    /// [`SweepStats`](crate::SweepStats) tie-breaks worst-case witnesses
    /// by scenario index.
    #[must_use]
    pub fn scenarios(&self) -> Vec<Scenario> {
        let total = self.full_size();
        let nth = |index: usize| -> Scenario {
            let delay_i = index % self.delays.len();
            let rest = index / self.delays.len();
            let start_i = rest % self.start_pairs.len();
            let label_i = rest / self.start_pairs.len();
            let (first_label, second_label) = self.label_pairs[label_i];
            let (start_a, start_b) = self.start_pairs[start_i];
            Scenario {
                first_label,
                second_label,
                start_a,
                start_b,
                delay: self.delays[delay_i],
                horizon: self.horizon,
            }
        };
        match self.cap {
            Some(cap) if total > cap => {
                // Even stride over the flattened index space; always
                // includes index 0 and never repeats an index.
                (0..cap).map(|i| nth(i * total / cap)).collect()
            }
            _ => (0..total).map(nth).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_graph::generators;

    fn small_grid() -> Grid {
        let g = generators::oriented_ring(4).unwrap();
        Grid::new(100)
            .label_pairs_both_orders(&[(1, 2)])
            .delays(&[0, 3])
            .all_start_pairs(&g)
    }

    #[test]
    fn full_enumeration_covers_the_product_space() {
        let grid = small_grid();
        let scenarios = grid.scenarios();
        // 2 label orders × 12 ordered start pairs × 2 delays.
        assert_eq!(scenarios.len(), 48);
        assert_eq!(grid.full_size(), 48);
        // All distinct.
        let mut seen = std::collections::HashSet::new();
        for s in &scenarios {
            assert!(s.start_a != s.start_b);
            assert_eq!(s.horizon, 100);
            assert!(seen.insert(*s));
        }
        // Both label orders present.
        assert!(scenarios.iter().any(|s| s.first_label == 1));
        assert!(scenarios.iter().any(|s| s.first_label == 2));
    }

    #[test]
    fn sampling_cap_is_deterministic_and_within_space() {
        let grid = small_grid().sample_cap(10);
        let a = grid.scenarios();
        let b = grid.scenarios();
        assert_eq!(a.len(), 10);
        assert_eq!(a, b, "capped enumeration must be reproducible");
        let full: std::collections::HashSet<_> = small_grid().scenarios().into_iter().collect();
        for s in &a {
            assert!(full.contains(s), "sampled scenario outside the space");
        }
        // No duplicates in the sample.
        let dedup: std::collections::HashSet<_> = a.iter().copied().collect();
        assert_eq!(dedup.len(), a.len());
    }

    #[test]
    fn cap_larger_than_space_is_a_no_op() {
        let grid = small_grid().sample_cap(1_000);
        assert_eq!(grid.scenarios().len(), 48);
    }
}
