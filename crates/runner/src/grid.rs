//! Declarative enumeration of adversarial sweeps.

use crate::Scenario;
use rendezvous_graph::{NodeId, PortLabeledGraph};

/// Builder for an adversarial configuration sweep: ordered label pairs ×
/// ordered distinct start pairs × wake-up delays, each combination becoming
/// one [`Scenario`].
///
/// For spaces too large to exhaust, [`Grid::sample_cap`] keeps a
/// deterministic evenly-strided subsample — the same cap always selects
/// the same scenarios, so capped sweeps stay reproducible.
#[derive(Debug, Clone)]
pub struct Grid {
    horizon: u64,
    /// Ordered (first, second) label pairs.
    label_pairs: Vec<(u64, u64)>,
    /// Ordered (start_a, start_b) pairs, `a != b`.
    start_pairs: Vec<(NodeId, NodeId)>,
    delays: Vec<u64>,
    cap: Option<usize>,
}

impl Grid {
    /// Creates an empty grid whose scenarios get round budget `horizon`.
    #[must_use]
    pub fn new(horizon: u64) -> Self {
        Grid {
            horizon,
            label_pairs: Vec::new(),
            start_pairs: Vec::new(),
            delays: vec![0],
            cap: None,
        }
    }

    /// Adds ordered label pairs exactly as given (first agent gets `.0`).
    #[must_use]
    pub fn label_pairs_ordered(mut self, pairs: &[(u64, u64)]) -> Self {
        self.label_pairs.extend_from_slice(pairs);
        self
    }

    /// Adds each unordered label pair in both role orders — the adversary
    /// also chooses *which* agent is woken first.
    #[must_use]
    pub fn label_pairs_both_orders(mut self, pairs: &[(u64, u64)]) -> Self {
        for &(a, b) in pairs {
            self.label_pairs.push((a, b));
            self.label_pairs.push((b, a));
        }
        self
    }

    /// Sweeps all ordered pairs of distinct start nodes of `graph`.
    #[must_use]
    pub fn all_start_pairs(mut self, graph: &PortLabeledGraph) -> Self {
        let n = graph.node_count();
        self.start_pairs.reserve(n * n.saturating_sub(1));
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    self.start_pairs.push((NodeId::new(a), NodeId::new(b)));
                }
            }
        }
        self
    }

    /// Sweeps the given ordered start pairs, **skipping** any pair whose
    /// two nodes coincide: a [`Scenario`] places two distinct agents, and
    /// `start_a == start_b` would be an immediate zero-time "meeting" that
    /// silently deflates worst-case sweeps. Rejecting at this boundary
    /// keeps the invariant out of every caller's hands (regression-tested
    /// below).
    #[must_use]
    pub fn start_pairs(mut self, pairs: &[(NodeId, NodeId)]) -> Self {
        self.start_pairs
            .extend(pairs.iter().copied().filter(|(a, b)| a != b));
        self
    }

    /// Sets the wake-up delays applied to the second agent (default `[0]`).
    #[must_use]
    pub fn delays(mut self, delays: &[u64]) -> Self {
        self.delays = delays.to_vec();
        self
    }

    /// Caps the sweep at `max` scenarios via deterministic even striding.
    #[must_use]
    pub fn sample_cap(mut self, max: usize) -> Self {
        assert!(max > 0, "sample cap must be positive");
        self.cap = Some(max);
        self
    }

    /// Number of scenarios before any sampling cap, saturating at
    /// `usize::MAX` for product spaces too large to index (a grid that big
    /// can only ever be swept through [`Grid::sample_cap`] anyway, and the
    /// capped stride stays exact below the saturation point).
    #[must_use]
    pub fn full_size(&self) -> usize {
        product_size(
            self.label_pairs.len(),
            self.start_pairs.len(),
            self.delays.len(),
        )
    }

    /// Number of scenarios [`Grid::scenarios`] will actually yield: the
    /// full product space clipped to the sampling cap.
    #[must_use]
    pub fn size(&self) -> usize {
        match self.cap {
            Some(cap) => self.full_size().min(cap),
            None => self.full_size(),
        }
    }

    /// The scenario at flat index `index` of the **full** (pre-cap) space.
    fn nth(&self, index: usize) -> Scenario {
        let delay_i = index % self.delays.len();
        let rest = index / self.delays.len();
        let start_i = rest % self.start_pairs.len();
        let label_i = rest / self.start_pairs.len();
        let (first_label, second_label) = self.label_pairs[label_i];
        let (start_a, start_b) = self.start_pairs[start_i];
        Scenario {
            first_label,
            second_label,
            start_a,
            start_b,
            delay: self.delays[delay_i],
            horizon: self.horizon,
        }
    }

    /// The scenario at post-cap index `i` — identical to
    /// `self.scenarios()[i]` without materializing the list. The single
    /// definition of the capped-index → scenario mapping, shared by
    /// [`Grid::scenarios`] and [`Grid::shard`] so the two can never drift.
    fn capped_nth(&self, i: usize) -> Scenario {
        let total = self.full_size();
        match self.cap {
            Some(cap) if total > cap => self.nth(strided(i, total, cap)),
            _ => self.nth(i),
        }
    }

    /// Enumerates the scenarios of this grid, applying the sampling cap.
    ///
    /// Enumeration order is label pair (outer) → start pair → delay
    /// (inner); the order is part of the contract, since
    /// [`SweepStats`](crate::SweepStats) tie-breaks worst-case witnesses
    /// by scenario index.
    #[must_use]
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.scenarios_in(0, self.size())
    }

    /// Materializes the half-open capped-index range `[lo, hi)` of
    /// [`Grid::scenarios`] without building the whole list — the slice a
    /// topology sweep executes when a shard boundary falls inside this
    /// grid (see [`TopoGrid`](crate::TopoGrid)).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > self.size()`.
    #[must_use]
    pub fn scenarios_in(&self, lo: usize, hi: usize) -> Vec<Scenario> {
        assert!(
            lo <= hi && hi <= self.size(),
            "scenario range {lo}..{hi} out of bounds for a grid of {}",
            self.size()
        );
        (lo..hi).map(|i| self.capped_nth(i)).collect()
    }

    /// Materializes shard `shard` of `of` — a contiguous slice of the
    /// (capped) scenario list, tagged with the global index of its first
    /// scenario so shard sweeps can fold witnesses at their true indices.
    ///
    /// The `of` shards partition [`Grid::scenarios`] exactly: same order,
    /// no overlap, nothing dropped, and the sampling cap is applied
    /// *before* sharding — so merging the shard sweeps of a capped grid
    /// reproduces the capped single-process sweep bit for bit. Shards are
    /// balanced to within one scenario; when the grid holds fewer
    /// scenarios than `of`, trailing shards are empty (still valid).
    ///
    /// # Panics
    ///
    /// Panics if `of == 0` or `shard >= of`.
    #[must_use]
    pub fn shard(&self, shard: usize, of: usize) -> ScenarioShard {
        assert!(of > 0, "cannot split a grid into zero shards");
        assert!(
            shard < of,
            "shard index {shard} out of range for {of} shards"
        );
        let len = self.size();
        let lo = strided(shard, len, of);
        let hi = strided(shard + 1, len, of);
        ScenarioShard {
            offset: lo,
            scenarios: (lo..hi).map(|i| self.capped_nth(i)).collect(),
        }
    }
}

/// The saturating three-way product backing [`Grid::full_size`]: grids
/// whose dimensions multiply past `usize::MAX` clamp instead of wrapping
/// (the old unchecked product wrapped to a small number, making capped
/// sampling enumerate a tiny, wrong slice of the space).
fn product_size(a: usize, b: usize, c: usize) -> usize {
    a.saturating_mul(b).saturating_mul(c)
}

/// Balanced-partition stride: the start of slice `i` when `total` items
/// are divided into `cap` contiguous near-equal slices (also the sampling
/// stride of [`Grid::sample_cap`]). Shared by [`Grid::shard`] and
/// [`TopoGrid::shard`](crate::TopoGrid::shard) so the two subsystems cut
/// their index spaces identically.
pub(crate) fn strided(i: usize, total: usize, cap: usize) -> usize {
    usize::try_from(i as u128 * total as u128 / cap as u128)
        .expect("stride result is below `total`, which fits usize")
}

/// One shard of a grid's scenario list: the scenarios plus the global
/// index of the first one, produced by [`Grid::shard`].
///
/// The offset is what keeps multi-process sweeps byte-deterministic:
/// [`Runner::sweep_shard`](crate::Runner::sweep_shard) folds each outcome
/// at index `offset + position`, so worst-case witnesses carry the same
/// indices they would in the unsharded sweep and
/// [`SweepStats::merge`](crate::SweepStats::merge) can apply the
/// lowest-index tie-break globally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioShard {
    /// Global (capped-list) index of `scenarios[0]`.
    pub offset: usize,
    /// The shard's contiguous slice of the capped scenario list.
    pub scenarios: Vec<Scenario>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_graph::generators;

    fn small_grid() -> Grid {
        let g = generators::oriented_ring(4).unwrap();
        Grid::new(100)
            .label_pairs_both_orders(&[(1, 2)])
            .delays(&[0, 3])
            .all_start_pairs(&g)
    }

    #[test]
    fn full_enumeration_covers_the_product_space() {
        let grid = small_grid();
        let scenarios = grid.scenarios();
        // 2 label orders × 12 ordered start pairs × 2 delays.
        assert_eq!(scenarios.len(), 48);
        assert_eq!(grid.full_size(), 48);
        // All distinct.
        let mut seen = std::collections::HashSet::new();
        for s in &scenarios {
            assert!(s.start_a != s.start_b);
            assert_eq!(s.horizon, 100);
            assert!(seen.insert(*s));
        }
        // Both label orders present.
        assert!(scenarios.iter().any(|s| s.first_label == 1));
        assert!(scenarios.iter().any(|s| s.first_label == 2));
    }

    #[test]
    fn sampling_cap_is_deterministic_and_within_space() {
        let grid = small_grid().sample_cap(10);
        let a = grid.scenarios();
        let b = grid.scenarios();
        assert_eq!(a.len(), 10);
        assert_eq!(a, b, "capped enumeration must be reproducible");
        let full: std::collections::HashSet<_> = small_grid().scenarios().into_iter().collect();
        for s in &a {
            assert!(full.contains(s), "sampled scenario outside the space");
        }
        // No duplicates in the sample.
        let dedup: std::collections::HashSet<_> = a.iter().copied().collect();
        assert_eq!(dedup.len(), a.len());
    }

    #[test]
    fn cap_larger_than_space_is_a_no_op() {
        let grid = small_grid().sample_cap(1_000);
        assert_eq!(grid.scenarios().len(), 48);
    }

    #[test]
    fn shards_partition_the_scenario_list_exactly() {
        for grid in [small_grid(), small_grid().sample_cap(17)] {
            let whole = grid.scenarios();
            for of in [1usize, 2, 3, 5, 48, 100] {
                let mut rebuilt: Vec<Scenario> = Vec::new();
                let mut next_offset = 0;
                for i in 0..of {
                    let shard = grid.shard(i, of);
                    assert_eq!(
                        shard.offset, next_offset,
                        "shard {i}/{of} must start where the previous ended"
                    );
                    next_offset += shard.scenarios.len();
                    rebuilt.extend(shard.scenarios);
                }
                assert_eq!(rebuilt, whole, "concatenated shards ({of}) != full list");
                // Balanced to within one scenario.
                let lens: Vec<usize> = (0..of).map(|i| grid.shard(i, of).scenarios.len()).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced shards: {lens:?}");
            }
        }
    }

    #[test]
    fn more_shards_than_scenarios_yields_empty_tails() {
        let grid = small_grid().sample_cap(3);
        let lens: Vec<usize> = (0..7).map(|i| grid.shard(i, 7).scenarios.len()).collect();
        assert_eq!(lens.iter().sum::<usize>(), 3);
        assert!(lens.iter().all(|&l| l <= 1));
    }

    /// Regression: `start_pairs` used to append whatever it was given, so
    /// a caller-supplied `start_a == start_b` pair produced a degenerate
    /// "two agents on one node" scenario that met at time 0 and silently
    /// deflated worst-case sweeps. The boundary now skips such pairs.
    #[test]
    fn coincident_start_pairs_are_skipped_at_the_boundary() {
        let grid = Grid::new(10).label_pairs_ordered(&[(1, 2)]).start_pairs(&[
            (NodeId::new(0), NodeId::new(0)),
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(2), NodeId::new(2)),
            (NodeId::new(1), NodeId::new(0)),
        ]);
        let scenarios = grid.scenarios();
        assert_eq!(scenarios.len(), 2, "both degenerate pairs dropped");
        assert!(scenarios.iter().all(|s| s.start_a != s.start_b));
        // The all-degenerate case leaves an empty (zero-scenario) grid.
        let empty = Grid::new(10)
            .label_pairs_ordered(&[(1, 2)])
            .start_pairs(&[(NodeId::new(3), NodeId::new(3))]);
        assert_eq!(empty.size(), 0);
    }

    #[test]
    fn scenarios_in_matches_the_full_enumeration() {
        for grid in [small_grid(), small_grid().sample_cap(17)] {
            let whole = grid.scenarios();
            let n = grid.size();
            assert_eq!(grid.scenarios_in(0, n), whole);
            assert_eq!(grid.scenarios_in(3, 11), whole[3..11].to_vec());
            assert!(grid.scenarios_in(5, 5).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn scenarios_in_rejects_ranges_past_the_end() {
        let _ = small_grid().scenarios_in(0, 49);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_must_be_in_range() {
        let _ = small_grid().shard(3, 3);
    }

    #[test]
    #[should_panic(expected = "zero shards")]
    fn shard_count_must_be_positive() {
        let _ = small_grid().shard(0, 0);
    }

    /// Regression: the sampling stride used to compute `i * total / cap`
    /// in `usize`, which wraps once `i * total` exceeds `2^64` — silently
    /// sampling wrong (and duplicate) scenarios on billion-scenario grids
    /// with large caps. This grid has `2^17 × 2^17 × 2^15 = 2^49`
    /// scenarios and a `2^16` cap, so the old product reached `2^65`.
    #[test]
    fn capped_sampling_survives_huge_index_spaces() {
        let labels: Vec<(u64, u64)> = (0..1u64 << 17).map(|i| (i + 1, i + 2)).collect();
        let starts: Vec<(NodeId, NodeId)> = (0..1usize << 17)
            .map(|i| (NodeId::new(i), NodeId::new(i + 1)))
            .collect();
        let delays: Vec<u64> = (0..1u64 << 15).collect();
        let cap = 1usize << 16;
        let grid = Grid::new(10)
            .label_pairs_ordered(&labels)
            .start_pairs(&starts)
            .delays(&delays)
            .sample_cap(cap);
        assert_eq!(grid.full_size(), 1usize << 49);
        assert_eq!(grid.size(), cap);
        let sampled = grid.scenarios();
        assert_eq!(sampled.len(), cap);
        // The stride must stay strictly increasing (the wrap broke this),
        // which also proves every sampled index is distinct and in space.
        let mut last_label = 0;
        for s in &sampled {
            assert!(s.first_label >= last_label, "stride went backwards");
            last_label = s.first_label;
        }
        assert_eq!(sampled[0].first_label, 1, "index 0 must be included");
        // Strides spread over the whole space, not just a wrapped prefix.
        assert!(sampled.last().unwrap().first_label > (1 << 17) - 2);
    }

    /// Regression: the product space size saturates instead of wrapping
    /// when the dimensions multiply past `usize::MAX` — the old unchecked
    /// `a * b * c` wrapped (e.g. `2^22 × 2^21 × 2^21` wrapped to 0),
    /// collapsing capped sweeps of such grids to garbage.
    #[test]
    fn full_size_saturates_instead_of_wrapping() {
        assert_eq!(product_size(1 << 22, 1 << 21, 1 << 21), usize::MAX);
        assert_eq!(product_size(usize::MAX, usize::MAX, 2), usize::MAX);
        assert_eq!(product_size(usize::MAX, 1, 1), usize::MAX);
        // Non-overflowing products stay exact.
        assert_eq!(product_size(3, 5, 7), 105);
        assert_eq!(product_size(1 << 20, 1 << 20, 1 << 20), 1 << 60);
        assert_eq!(product_size(0, usize::MAX, usize::MAX), 0);
    }
}
