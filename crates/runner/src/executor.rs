//! How a [`Scenario`] becomes an execution: pluggable executors.

use crate::{Scenario, ScenarioOutcome};
use rendezvous_core::{CoreError, FlatPlan, Label, RendezvousAlgorithm, Schedule};
use rendezvous_graph::NodeId;
use rendezvous_sim::{AgentBehavior, AgentSpec, MeetingCondition, SimError, Simulation};
use rendezvous_telemetry::{Counter, Metrics, Scope};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, RwLock};

/// An executor error: configuration or simulation failure. Both indicate a
/// harness bug (the adversary only enumerates valid configurations), so the
/// sweep fails fast instead of folding poisoned values.
///
/// Errors carry locating context when the sweep machinery can attach
/// it: the failing scenario's **global** workload index and its piece's
/// fold key — at 10⁹-scenario scale "which scenario" must be in the
/// message, not reconstructed from logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunnerError {
    msg: String,
    index: Option<usize>,
    key: Option<String>,
}

impl RunnerError {
    /// Wraps any error message (no location attached yet).
    pub fn new(msg: impl Into<String>) -> Self {
        RunnerError {
            msg: msg.into(),
            index: None,
            key: None,
        }
    }

    /// Attaches the failing scenario's index if none is attached yet —
    /// piece executors call this with the **in-piece** index, which
    /// [`RunnerError::in_piece`] later lifts to a global one.
    #[must_use]
    pub fn at_index(mut self, index: usize) -> Self {
        if self.index.is_none() {
            self.index = Some(index);
        }
        self
    }

    /// Lifts an attached in-piece index to the global one (adding the
    /// piece's offset) and records the piece's fold key — what the
    /// sweep fold applies to every piece error.
    #[must_use]
    pub fn in_piece(mut self, offset: usize, key: &str) -> Self {
        if let Some(i) = self.index {
            self.index = Some(offset + i);
        }
        if self.key.is_none() && !key.is_empty() {
            self.key = Some(key.to_string());
        }
        self
    }

    /// The failing scenario's global workload index, when attached.
    #[must_use]
    pub fn index(&self) -> Option<usize> {
        self.index
    }
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario execution failed")?;
        if let Some(index) = self.index {
            write!(f, " at global index {index}")?;
            if let Some(key) = &self.key {
                write!(f, " [{key}]")?;
            }
        }
        write!(f, ": {}", self.msg)
    }
}

impl std::error::Error for RunnerError {}

impl From<SimError> for RunnerError {
    fn from(e: SimError) -> Self {
        RunnerError::new(e.to_string())
    }
}

impl From<CoreError> for RunnerError {
    fn from(e: CoreError) -> Self {
        RunnerError::new(e.to_string())
    }
}

/// Turns one scenario into one measured outcome. Implementations must be
/// [`Sync`]: the [`Runner`](crate::Runner) shares them across threads.
pub trait Executor: Sync {
    /// Executes `scenario` and reports what happened.
    ///
    /// # Errors
    ///
    /// Any configuration or simulation error, which aborts the sweep.
    fn run(&self, scenario: &Scenario) -> Result<ScenarioOutcome, RunnerError>;
}

/// Executes scenarios against a [`RendezvousAlgorithm`]: each agent runs
/// the schedule the algorithm compiles for its label.
///
/// Compilation is **memoized per executor**, at two levels. A sweep
/// revisits each label across thousands of start pairs and delays, so
/// the executor compiles `label → Arc<Schedule>` once; and because a
/// schedule's whole execution is a deterministic function of its start
/// node, it further unrolls `(label, start) → Arc<FlatPlan>` — the flat
/// action array that turns every agent's per-round decision phase into
/// an indexed load (see [`FlatPlan`]). Both caches are write-once per
/// key and safe to hit from the [`Runner`](crate::Runner)'s worker
/// threads; since compilation is deterministic, concurrent first hits
/// race benignly.
pub struct AlgorithmExecutor<'a> {
    algorithm: &'a dyn RendezvousAlgorithm,
    schedules: RwLock<BTreeMap<u64, Arc<Schedule>>>,
    plans: RwLock<BTreeMap<(u64, NodeId), Arc<FlatPlan>>>,
    plan_stats: Option<PlanCacheStats>,
}

/// Plan-cache hit/miss counters (attached via
/// [`AlgorithmExecutor::with_metrics`]).
struct PlanCacheStats {
    hits: Counter,
    misses: Counter,
}

impl<'a> AlgorithmExecutor<'a> {
    /// Wraps an algorithm.
    #[must_use]
    pub fn new(algorithm: &'a dyn RendezvousAlgorithm) -> Self {
        AlgorithmExecutor {
            algorithm,
            schedules: RwLock::new(BTreeMap::new()),
            plans: RwLock::new(BTreeMap::new()),
            plan_stats: None,
        }
    }

    /// Attaches plan-cache hit/miss counters from `metrics`.
    ///
    /// Counting is race-proof: a **miss** is counted exactly where the
    /// entry is inserted (once per key, no matter how many threads
    /// compiled concurrently), a **hit** everywhere a compiled plan is
    /// reused — including the write-lock race loser — so
    /// `hits + misses` equals accesses and a parallel sweep reports the
    /// same counters as a sequential one.
    #[must_use]
    pub fn with_metrics(mut self, metrics: &Metrics) -> Self {
        self.plan_stats = Some(PlanCacheStats {
            hits: metrics.counter(Scope::Process, "plan_cache_hits"),
            misses: metrics.counter(Scope::Process, "plan_cache_misses"),
        });
        self
    }

    /// The compiled schedule for `label_value`, memoized across scenarios.
    ///
    /// # Errors
    ///
    /// Rejects non-positive labels and propagates compilation errors
    /// (e.g. a label outside the algorithm's label space).
    pub fn schedule(&self, label_value: u64) -> Result<Arc<Schedule>, RunnerError> {
        if let Some(s) = self
            .schedules
            .read()
            .expect("schedule cache poisoned")
            .get(&label_value)
        {
            return Ok(Arc::clone(s));
        }
        let label = Label::new(label_value)
            .ok_or_else(|| RunnerError::new(format!("label {label_value} is not positive")))?;
        let compiled = Arc::new(self.algorithm.schedule(label)?);
        let mut cache = self.schedules.write().expect("schedule cache poisoned");
        Ok(Arc::clone(cache.entry(label_value).or_insert(compiled)))
    }

    /// The flat action plan for `(label_value, start)` — the label's
    /// compiled schedule unrolled from that start node — memoized across
    /// scenarios. A pair grid revisits each `(label, start)` across every
    /// delay and every partner configuration, so the unroll amortizes the
    /// same way the schedule compile does one level up.
    ///
    /// # Errors
    ///
    /// See [`AlgorithmExecutor::schedule`].
    pub fn plan(&self, label_value: u64, start: NodeId) -> Result<Arc<FlatPlan>, RunnerError> {
        let key = (label_value, start);
        if let Some(p) = self.plans.read().expect("plan cache poisoned").get(&key) {
            if let Some(stats) = &self.plan_stats {
                stats.hits.inc();
            }
            return Ok(Arc::clone(p));
        }
        let schedule = self.schedule(label_value)?;
        let compiled = Arc::new(FlatPlan::compile(
            Arc::clone(self.algorithm.graph()),
            schedule,
            start,
        ));
        let mut cache = self.plans.write().expect("plan cache poisoned");
        match cache.entry(key) {
            Entry::Occupied(entry) => {
                // Another thread compiled first: this access still
                // reuses a cached plan, so it counts as a hit.
                if let Some(stats) = &self.plan_stats {
                    stats.hits.inc();
                }
                Ok(Arc::clone(entry.get()))
            }
            Entry::Vacant(slot) => {
                if let Some(stats) = &self.plan_stats {
                    stats.misses.inc();
                }
                Ok(Arc::clone(slot.insert(compiled)))
            }
        }
    }

    /// Number of distinct labels compiled so far (cache size).
    #[must_use]
    pub fn compiled_labels(&self) -> usize {
        self.schedules
            .read()
            .expect("schedule cache poisoned")
            .len()
    }

    /// Number of distinct `(label, start)` flat plans unrolled so far.
    #[must_use]
    pub fn compiled_plans(&self) -> usize {
        self.plans.read().expect("plan cache poisoned").len()
    }
}

impl Executor for AlgorithmExecutor<'_> {
    fn run(&self, scenario: &Scenario) -> Result<ScenarioOutcome, RunnerError> {
        require_pair(scenario, "AlgorithmExecutor")?;
        let graph = self.algorithm.graph();
        let a = self
            .plan(scenario.first_label(), scenario.start_a())?
            .behavior();
        let b = self
            .plan(scenario.second_label(), scenario.start_b())?
            .behavior();
        let outcome = Simulation::new(graph)
            .agent(
                Box::new(a),
                AgentSpec::delayed(scenario.start_a(), scenario.first().delay),
            )
            .agent(
                Box::new(b),
                AgentSpec::delayed(scenario.start_b(), scenario.delay()),
            )
            .max_rounds(scenario.horizon)
            .meeting_condition(MeetingCondition::FirstPair)
            .run()?;
        Ok(ScenarioOutcome::pairwise(
            scenario.clone(),
            outcome.time(),
            outcome.cost(),
            outcome.crossings(),
        ))
    }
}

/// Rejects non-pair scenarios on inherently pairwise executors with an
/// error naming the executor, instead of silently ignoring placements
/// beyond the first two.
fn require_pair(scenario: &Scenario, who: &str) -> Result<(), RunnerError> {
    if scenario.is_pair() {
        Ok(())
    } else {
        Err(RunnerError::new(format!(
            "{who} runs two-agent rendezvous but the scenario places {} agents; \
             use GatheringExecutor for fleets",
            scenario.k()
        )))
    }
}

/// The two behaviors of one execution, built per scenario so that
/// position-aware behaviors can be constructed correctly.
pub type BehaviorPair<'a> = (Box<dyn AgentBehavior + 'a>, Box<dyn AgentBehavior + 'a>);

/// Executes scenarios with arbitrary behaviors from a factory — the
/// escape hatch for scripted agents, baselines, and tests.
pub struct FactoryExecutor<'a, F>
where
    F: Fn(&Scenario) -> BehaviorPair<'a> + Sync,
{
    graph: &'a rendezvous_graph::PortLabeledGraph,
    factory: F,
}

impl<'a, F> FactoryExecutor<'a, F>
where
    F: Fn(&Scenario) -> BehaviorPair<'a> + Sync,
{
    /// Wraps a behavior factory operating on `graph`.
    #[must_use]
    pub fn new(graph: &'a rendezvous_graph::PortLabeledGraph, factory: F) -> Self {
        FactoryExecutor { graph, factory }
    }
}

impl<'a, F> Executor for FactoryExecutor<'a, F>
where
    F: Fn(&Scenario) -> BehaviorPair<'a> + Sync,
{
    fn run(&self, scenario: &Scenario) -> Result<ScenarioOutcome, RunnerError> {
        require_pair(scenario, "FactoryExecutor")?;
        let (a, b) = (self.factory)(scenario);
        let outcome = Simulation::new(self.graph)
            .agent(
                a,
                AgentSpec::delayed(scenario.start_a(), scenario.first().delay),
            )
            .agent(b, AgentSpec::delayed(scenario.start_b(), scenario.delay()))
            .max_rounds(scenario.horizon)
            .run()?;
        Ok(ScenarioOutcome::pairwise(
            scenario.clone(),
            outcome.time(),
            outcome.cost(),
            outcome.crossings(),
        ))
    }
}

/// Executes **fleet** scenarios (`k ≥ 2`) as gatherings: every placement
/// becomes a merge-and-restart [`GatheringAgent`](rendezvous_core::GatheringAgent)
/// running `algorithm`, driven by
/// [`run_gathering`](rendezvous_sim::gathering::run_gathering) until all
/// `k` agents share a node or the horizon elapses.
///
/// Each outcome carries the merge-and-restart analytic bound
/// `(k−1) · (time bound + max delay)` as its per-scenario
/// [`time_bound`](crate::ScenarioOutcome::time_bound), so
/// [`SweepReport`](crate::SweepReport) folds judge violations and the
/// worst rounds/bound ratio against the bound that actually applies to
/// that fleet — a sweep-level [`Bounds`](crate::Bounds) pair cannot
/// express it.
pub struct GatheringExecutor {
    algorithm: Arc<dyn RendezvousAlgorithm>,
}

impl GatheringExecutor {
    /// Wraps the two-agent algorithm the fleet members run pairwise.
    #[must_use]
    pub fn new(algorithm: Arc<dyn RendezvousAlgorithm>) -> Self {
        GatheringExecutor { algorithm }
    }

    /// The merge-and-restart bound `(k−1) · (time bound + max delay)` of
    /// one fleet scenario under this executor's algorithm.
    #[must_use]
    pub fn merge_restart_bound(&self, scenario: &Scenario) -> u64 {
        (scenario.k() as u64 - 1) * (self.algorithm.time_bound() + scenario.max_delay())
    }
}

impl Executor for GatheringExecutor {
    fn run(&self, scenario: &Scenario) -> Result<ScenarioOutcome, RunnerError> {
        let placements: Vec<(u64, rendezvous_graph::NodeId, u64)> = scenario
            .placements
            .iter()
            .map(|p| (p.label, p.start, p.delay))
            .collect();
        let fleet = rendezvous_core::gathering_fleet(&self.algorithm, &placements)?;
        let out = rendezvous_sim::gathering::run_gathering(
            self.algorithm.graph(),
            fleet,
            scenario.horizon,
        )?;
        Ok(ScenarioOutcome {
            scenario: scenario.clone(),
            time: out.gathered.as_ref().map(|m| m.round),
            cost: out.cost(),
            // The gathering engine does not track edge crossings — they
            // are a two-agent-meeting diagnostic.
            crossings: 0,
            time_bound: Some(self.merge_restart_bound(scenario)),
            merges: out.merge_events() as u64,
        })
    }
}
